//! SwitchFS: asynchronous metadata updates for distributed filesystems with
//! in-network coordination — a full reproduction of the EuroSys '26 paper.
//!
//! This umbrella crate re-exports the public API of every component crate:
//!
//! * [`simnet`] — the deterministic virtual-time simulation substrate;
//! * [`kvstore`] — the ordered key-value store + WAL (RocksDB substitute);
//! * [`proto`] — identifiers, metadata schema, wire formats, messages;
//! * [`switch`] — the programmable-switch data plane and in-network dirty
//!   set;
//! * [`server`] — the SwitchFS metadata server (asynchronous updates,
//!   change-log compaction, aggregation, recovery);
//! * [`client`] — LibFS, the client library;
//! * [`baselines`] — the emulated baseline systems (E-InfiniFS, E-CFS,
//!   CephFS-like, IndexFS-like);
//! * [`core`] — cluster orchestration and the workload driver;
//! * [`workloads`] — generators for every evaluation workload.
//!
//! # Quickstart
//!
//! ```
//! use switchfs::core::{Cluster, ClusterConfig, SystemKind};
//!
//! // A small SwitchFS deployment: 4 metadata servers, 2 clients.
//! let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
//! cfg.servers = 4;
//! cfg.clients = 2;
//! let cluster = Cluster::new(cfg);
//!
//! let client = cluster.client(0);
//! cluster.block_on(async move {
//!     client.mkdir("/data").await.unwrap();
//!     client.create("/data/model.bin").await.unwrap();
//!     let dir = client.statdir("/data").await.unwrap();
//!     assert_eq!(dir.size, 1);
//! });
//! ```

pub use switchfs_baselines as baselines;
pub use switchfs_chaos as chaos;
pub use switchfs_client as client;
pub use switchfs_core as core;
pub use switchfs_kvstore as kvstore;
pub use switchfs_obs as obs;
pub use switchfs_proto as proto;
pub use switchfs_server as server;
pub use switchfs_simnet as simnet;
pub use switchfs_switch as switch;
pub use switchfs_workloads as workloads;

/// The crate version, matching the workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
