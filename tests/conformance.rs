//! Cross-system conformance and determinism harness.
//!
//! Two properties anchor every experiment in the paper:
//!
//! 1. **Conformance** (§4, §A.2): all evaluated systems implement the same
//!    POSIX metadata semantics. A scenario — a fixed sequence of metadata
//!    operations, including deliberate error cases — must produce the same
//!    per-operation outcomes and leave the same visible namespace behind on
//!    SwitchFS and on every emulated baseline. Only performance may differ.
//!
//! 2. **Determinism** (§7 methodology): the simulation substrate replays
//!    bit-identically from a seed. Two runs of the same configuration must
//!    produce identical virtual-time schedules and identical cluster
//!    statistics, which is what makes the figures reproducible.
//!
//! The scenario DSL below is intentionally tiny: a `Step` list is executed
//! sequentially (each operation awaited before the next), so the durable-
//! visibility property guarantees that all systems expose identical state
//! to every read.

use switchfs::core::{Cluster, ClusterConfig, SystemKind, TrackingChoice};
use switchfs::proto::{FileType, FsError};
use switchfs::workloads::{NamespaceSpec, OpKind, WorkloadBuilder};

// ---------------------------------------------------------------------------
// Scenario DSL
// ---------------------------------------------------------------------------

/// One step of a conformance scenario.
#[derive(Debug, Clone, Copy)]
enum Step {
    Mkdir(&'static str),
    Create(&'static str),
    Delete(&'static str),
    Rmdir(&'static str),
    Rename(&'static str, &'static str),
    Chmod(&'static str, u16),
    Stat(&'static str),
    Statdir(&'static str),
    Readdir(&'static str),
}

/// The comparable outcome of one step: a canonical description of what the
/// operation observed on success, or the POSIX error it failed with.
/// Timestamps and ids are deliberately excluded — they differ across
/// systems; visible structure must not.
type Outcome = Result<String, FsError>;

async fn run_step(client: &switchfs::client::LibFs, step: Step) -> Outcome {
    match step {
        Step::Mkdir(p) => client
            .mkdir(p)
            .await
            .map(|a| format!("dir mode={:o}", a.perm.mode)),
        Step::Create(p) => client
            .create(p)
            .await
            .map(|a| format!("file mode={:o}", a.perm.mode)),
        Step::Delete(p) => client.delete(p).await.map(|_| "deleted".to_string()),
        Step::Rmdir(p) => client.rmdir(p).await.map(|_| "removed".to_string()),
        Step::Rename(a, b) => client.rename(a, b).await.map(|_| "renamed".to_string()),
        Step::Chmod(p, mode) => client.chmod(p, mode).await.map(|_| "chmod".to_string()),
        Step::Stat(p) => client
            .stat(p)
            .await
            .map(|a| format!("file size={} mode={:o}", a.size, a.perm.mode)),
        Step::Statdir(p) => client
            .statdir(p)
            .await
            .map(|a| format!("dir size={} mode={:o}", a.size, a.perm.mode)),
        Step::Readdir(p) => client.readdir(p).await.map(|(a, entries)| {
            let mut names: Vec<String> = entries
                .iter()
                .map(|e| {
                    let kind = match e.file_type {
                        FileType::Directory => "d",
                        FileType::File => "f",
                    };
                    format!("{}:{}", kind, e.name)
                })
                .collect();
            names.sort();
            format!("dir size={} [{}]", a.size, names.join(" "))
        }),
    }
}

/// The reference scenario: lifecycle, nesting, renames, chmod, deliberate
/// error cases, and interleaved reads. Every system must agree on every
/// single outcome.
fn reference_scenario() -> Vec<Step> {
    use Step::*;
    vec![
        // Build a small tree.
        Mkdir("/proj"),
        Mkdir("/proj/src"),
        Mkdir("/proj/doc"),
        Create("/proj/src/main.rs"),
        Create("/proj/src/lib.rs"),
        Create("/proj/doc/guide.md"),
        Create("/proj/README.md"),
        // Reads observe all prior (possibly asynchronous) updates.
        Statdir("/proj"),
        Statdir("/proj/src"),
        Readdir("/proj"),
        Readdir("/proj/src"),
        Stat("/proj/src/main.rs"),
        // Error cases must agree across systems.
        Create("/proj/src/main.rs"),  // AlreadyExists
        Mkdir("/proj/src"),           // AlreadyExists
        Stat("/proj/src/missing.rs"), // NotFound
        Statdir("/nope"),             // NotFound
        Rmdir("/proj/src"),           // NotEmpty
        // `delete` (unlink) of a directory must fail with IsADirectory on
        // every placement. The grouping placements see the co-located
        // directory inode directly; the per-file-hash placements (whose
        // file-owner server never stores directory inodes) resolve it with
        // a cross-server type probe to the fingerprint-group owner. This
        // used to be a documented divergence (NotFound on per-file hash);
        // the probe closed it.
        Delete("/proj/doc"), // IsADirectory, on every placement
        // Rename destination conflicts must agree across placements too:
        // the coordinator (not the client) detects them at prepare time and
        // rejects with the destination's type, wherever the conflicting
        // inode happens to live.
        Rename("/proj/src/main.rs", "/proj/doc"), // IsADirectory: file onto dir
        Rename("/proj/doc", "/proj/README.md"),   // NotADirectory: dir onto file
        // Mutations: rename within and across directories.
        Rename("/proj/src/lib.rs", "/proj/src/lib2.rs"),
        Rename("/proj/README.md", "/proj/doc/README.md"),
        Readdir("/proj/src"),
        Readdir("/proj/doc"),
        Statdir("/proj"),
        // chmod is visible to later stats.
        Chmod("/proj/src/main.rs", 0o600),
        Stat("/proj/src/main.rs"),
        // Deletes shrink directories.
        Delete("/proj/src/lib2.rs"),
        Statdir("/proj/src"),
        Delete("/proj/src/main.rs"),
        Rmdir("/proj/src"),
        Statdir("/proj/src"), // NotFound after rmdir
        Readdir("/proj"),
        // A second subtree exercises deep nesting.
        Mkdir("/a"),
        Mkdir("/a/b"),
        Mkdir("/a/b/c"),
        Create("/a/b/c/leaf"),
        Readdir("/a/b/c"),
        Rmdir("/a/b/c"), // NotEmpty
        Delete("/a/b/c/leaf"),
        Rmdir("/a/b/c"),
        Readdir("/a/b"),
        // Directory rename: the moved directory keeps its children, the
        // rename is immediately visible (§5.2: rename is fully
        // synchronous), and old paths die.
        Mkdir("/a/b/kit"),
        Create("/a/b/kit/one"),
        Create("/a/b/kit/two"),
        Rename("/a/b/kit", "/a/kit2"),
        Statdir("/a/b/kit"), // NotFound
        Statdir("/a/kit2"),
        Readdir("/a/kit2"),
        Stat("/a/kit2/one"),
        Statdir("/a/b"),
        Statdir("/a"),
    ]
}

// ---------------------------------------------------------------------------
// Execution + namespace harvesting
// ---------------------------------------------------------------------------

fn build_cluster(system: SystemKind, seed: u64) -> Cluster {
    let mut cfg = ClusterConfig::paper_default(system);
    cfg.servers = 4;
    cfg.clients = 2;
    cfg.seed = seed;
    Cluster::new(cfg)
}

/// Runs a scenario sequentially on client 0, returning each step's outcome
/// and the virtual time (ns) at which it completed.
fn run_scenario(cluster: &Cluster, steps: &[Step]) -> (Vec<Outcome>, Vec<u64>) {
    let client = cluster.client(0);
    let handle = cluster.sim.handle();
    let steps = steps.to_vec();
    cluster.block_on(async move {
        let mut outcomes = Vec::with_capacity(steps.len());
        let mut times = Vec::with_capacity(steps.len());
        for step in steps {
            outcomes.push(run_step(&client, step).await);
            times.push(handle.now().as_nanos());
        }
        (outcomes, times)
    })
}

/// Harvests the visible namespace under the given top-level directories by
/// walking it through the client: a sorted list of canonical
/// `path kind size mode` lines. This is the state a user of the filesystem
/// can observe; all systems must agree on it. (The walk starts from named
/// roots because listing `/` itself is not part of the client API surface.)
fn namespace_snapshot(cluster: &Cluster, roots: &[&str]) -> Vec<String> {
    let client = cluster.client(1);
    let roots: Vec<String> = roots.iter().map(|r| r.to_string()).collect();
    cluster.block_on(async move {
        let mut out = Vec::new();
        let mut stack = roots;
        while let Some(dir) = stack.pop() {
            let (attrs, entries) = match client.readdir(&dir).await {
                Ok(v) => v,
                Err(FsError::NotFound) => {
                    out.push(format!("{dir} absent"));
                    continue;
                }
                Err(e) => panic!("readdir {dir}: {e:?}"),
            };
            // The shared listing is immutable; sort a private copy (the
            // harvest must not depend on server-side ordering).
            let mut entries = (*entries).clone();
            entries.sort_by(|a, b| a.name.cmp(&b.name));
            out.push(format!("{dir} dir size={}", attrs.size));
            for e in entries {
                let child = if dir == "/" {
                    format!("/{}", e.name)
                } else {
                    format!("{dir}/{}", e.name)
                };
                match e.file_type {
                    FileType::Directory => stack.push(child),
                    FileType::File => {
                        let a = client
                            .stat(&child)
                            .await
                            .unwrap_or_else(|e| panic!("stat {child}: {e:?}"));
                        out.push(format!(
                            "{child} file size={} mode={:o}",
                            a.size, a.perm.mode
                        ));
                    }
                }
            }
        }
        out.sort();
        out
    })
}

// ---------------------------------------------------------------------------
// Conformance: every system, same scenario, same visible behavior
// ---------------------------------------------------------------------------

#[test]
fn all_systems_agree_on_the_reference_scenario() {
    let steps = reference_scenario();
    let mut reference: Option<(SystemKind, Vec<Outcome>, Vec<String>)> = None;
    for system in SystemKind::all() {
        let cluster = build_cluster(system, 42);
        let (outcomes, _times) = run_scenario(&cluster, &steps);
        let snapshot = namespace_snapshot(&cluster, &["/proj", "/a"]);
        match &reference {
            None => reference = Some((system, outcomes, snapshot)),
            Some((ref_system, ref_outcomes, ref_snapshot)) => {
                for (i, (got, want)) in outcomes.iter().zip(ref_outcomes).enumerate() {
                    assert_eq!(
                        got, want,
                        "step {i} ({:?}) diverges: {system} vs {ref_system}",
                        steps[i]
                    );
                }
                assert_eq!(
                    &snapshot, ref_snapshot,
                    "final namespace diverges: {system} vs {ref_system}"
                );
            }
        }
    }
    // The scenario must actually exercise both success and error paths.
    let (_, outcomes, snapshot) = reference.unwrap();
    assert!(outcomes.iter().any(|o| o.is_ok()));
    assert!(outcomes.iter().any(|o| o.is_err()));
    assert!(snapshot.len() > 5, "snapshot too small: {snapshot:?}");
}

#[test]
fn switchfs_tracking_variants_agree_with_in_network_mode() {
    // §7.3.3: the dirty set can live in the switch, on a dedicated server,
    // or on the owner servers. Tracking placement changes performance, not
    // semantics.
    let steps = reference_scenario();
    let mut reference: Option<(Vec<Outcome>, Vec<String>)> = None;
    for tracking in [
        TrackingChoice::InNetwork,
        TrackingChoice::DedicatedServer,
        TrackingChoice::OwnerServer,
    ] {
        let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
        cfg.servers = 4;
        cfg.clients = 2;
        cfg.seed = 42;
        cfg.tracking = tracking;
        let cluster = Cluster::new(cfg);
        let (outcomes, _times) = run_scenario(&cluster, &steps);
        let snapshot = namespace_snapshot(&cluster, &["/proj", "/a"]);
        match &reference {
            None => reference = Some((outcomes, snapshot)),
            Some((ref_outcomes, ref_snapshot)) => {
                assert_eq!(&outcomes, ref_outcomes, "{tracking:?} outcomes diverge");
                assert_eq!(&snapshot, ref_snapshot, "{tracking:?} namespace diverges");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism: same seed, bit-identical run
// ---------------------------------------------------------------------------

/// Everything a run exposes that must be reproducible. All fields are
/// integers or integer-derived strings, so equality is bit-exactness.
#[derive(Debug, PartialEq, Eq)]
struct RunFingerprint {
    step_times_ns: Vec<u64>,
    outcomes: Vec<Outcome>,
    final_now_ns: u64,
    server_stats: String,
    switch_stats: String,
    client_stats: Vec<String>,
    namespace: Vec<String>,
    workload_ops: u64,
    workload_elapsed_ns: u64,
    workload_kops_bits: u64,
    workload_mean_latency_bits: u64,
}

fn fingerprint_run(system: SystemKind, seed: u64) -> RunFingerprint {
    let mut cluster = build_cluster(system, seed);
    let (outcomes, step_times_ns) = run_scenario(&cluster, &reference_scenario());

    // Add concurrent load: a seeded mdtest-like burst through the driver,
    // with many requests in flight, so scheduling order matters.
    let ns = NamespaceSpec::single_large_dir(0);
    cluster.preload_dir(&ns.dir_path(0));
    let mut builder = WorkloadBuilder::new(ns, seed ^ 0x5eed);
    let items = builder.uniform(OpKind::Create, 400);
    let report = cluster.run_workload(items, 32, None);

    let namespace = namespace_snapshot(&cluster, &["/proj", "/a"]);
    RunFingerprint {
        step_times_ns,
        outcomes,
        final_now_ns: cluster.sim.now().as_nanos(),
        server_stats: format!("{:?}", cluster.total_server_stats()),
        switch_stats: format!("{:?}", cluster.switch_stats()),
        client_stats: cluster
            .clients()
            .iter()
            .map(|c| format!("{:?}", c.stats()))
            .collect(),
        namespace,
        workload_ops: report.ops,
        workload_elapsed_ns: report.elapsed.as_nanos(),
        workload_kops_bits: report.kops.to_bits(),
        workload_mean_latency_bits: report.mean_latency_us().to_bits(),
    }
}

#[test]
fn same_seed_runs_are_bit_identical_switchfs() {
    let a = fingerprint_run(SystemKind::SwitchFs, 7);
    let b = fingerprint_run(SystemKind::SwitchFs, 7);
    assert_eq!(a, b);
    // Sanity: the schedule is non-trivial and time moves forward.
    assert_eq!(a.step_times_ns.len(), reference_scenario().len());
    assert!(a.step_times_ns.windows(2).all(|w| w[0] <= w[1]));
    assert!(*a.step_times_ns.last().unwrap() > 0);
    assert!(a.workload_ops > 0);
}

#[test]
fn same_seed_runs_are_bit_identical_baseline() {
    // The no-switch code path (synchronous baseline) must replay too.
    let a = fingerprint_run(SystemKind::EmulatedInfiniFs, 9);
    let b = fingerprint_run(SystemKind::EmulatedInfiniFs, 9);
    assert_eq!(a, b);
    assert!(a.switch_stats.contains("None"), "baseline has no switch");
}

/// FNV-1a over the run fingerprint's canonical rendering: integer-exact, no
/// std `RandomState` anywhere near the digest.
fn fingerprint_digest(system: SystemKind, seed: u64) -> u64 {
    let fp = fingerprint_run(system, seed);
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{fp:?}").bytes() {
        digest ^= b as u64;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    digest
}

/// Cross-**process** determinism: same-seed runs must be bit-identical not
/// just within one process but across processes and executions — std
/// `RandomState` seeds differ per process, so any surviving RandomState
/// iteration-order dependence in a schedule-affecting structure shows up
/// here (this was the ROADMAP's ±2% fig12/fig19 cross-process wobble). The
/// test re-executes itself as a child process and compares digests.
#[test]
fn cross_process_same_seed_runs_are_bit_identical() {
    const ENV: &str = "SWITCHFS_CONFORMANCE_CHILD";
    let digest = fingerprint_digest(SystemKind::SwitchFs, 11);
    if std::env::var(ENV).is_ok() {
        // Child mode: print the digest for the parent and stop.
        println!("CONFORMANCE_DIGEST={digest:016x}");
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args([
            "cross_process_same_seed_runs_are_bit_identical",
            "--exact",
            "--nocapture",
            "--test-threads",
            "1",
        ])
        .env(ENV, "1")
        .output()
        .expect("child test process runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "child process failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The libtest harness may merge the digest print onto its own "test …"
    // status line, so locate it by substring rather than line prefix.
    let child_digest = stdout
        .find("CONFORMANCE_DIGEST=")
        .map(|i| {
            let hex = &stdout[i + "CONFORMANCE_DIGEST=".len()..];
            let hex = hex.split_whitespace().next().expect("digest value");
            u64::from_str_radix(hex, 16).expect("hex digest")
        })
        .unwrap_or_else(|| panic!("child printed no digest; stdout:\n{stdout}"));
    assert_eq!(
        child_digest, digest,
        "same-seed runs diverged across processes (a RandomState-order \
         dependence is back in a schedule-affecting structure)"
    );
}

// ---------------------------------------------------------------------------
// Conformance across an epoch bump (PR 4: elastic placement)
// ---------------------------------------------------------------------------

/// The reference scenario must produce identical step outcomes and an
/// identical final namespace when a server joins and a live shard rebalance
/// bumps the map epoch halfway through: elastic placement may change *where*
/// metadata lives, never *what* clients observe. (The stale-map client is
/// transparently redirected via `WrongOwner` refresh-and-retry.)
#[test]
fn switchfs_agrees_across_an_epoch_bump() {
    let steps = reference_scenario();
    let split = steps.len() / 2;

    let baseline = build_cluster(SystemKind::SwitchFs, 42);
    let (want_outcomes, _) = run_scenario(&baseline, &steps);
    let want_snapshot = namespace_snapshot(&baseline, &["/proj", "/a"]);

    let mut elastic = build_cluster(SystemKind::SwitchFs, 42);
    let (first_half, _) = run_scenario(&elastic, &steps[..split]);
    elastic.add_server();
    let moved = elastic.rebalance();
    assert!(moved > 0, "the rebalance must migrate shards");
    assert!(elastic.placement().epoch() > 0);
    let (second_half, _) = run_scenario(&elastic, &steps[split..]);
    let got_snapshot = namespace_snapshot(&elastic, &["/proj", "/a"]);

    let got_outcomes: Vec<Outcome> = first_half.into_iter().chain(second_half).collect();
    for (i, (got, want)) in got_outcomes.iter().zip(&want_outcomes).enumerate() {
        assert_eq!(
            got, want,
            "step {i} ({:?}) diverges across the epoch bump",
            steps[i]
        );
    }
    assert_eq!(
        got_snapshot, want_snapshot,
        "final namespace diverges across the epoch bump"
    );
}

/// Causal tracing must be pure observation: the same seed with the flight
/// recorder on and off must produce bit-identical run digests (covering the
/// op history, final namespace, server counters and the virtual clock).
/// Events may only ever flow *into* the recorder, never back into protocol
/// state.
#[test]
fn tracing_does_not_perturb_the_run_digest() {
    use switchfs::chaos::{run_chaos, ChaosConfig, PlanKind};
    use switchfs::obs::EventKind;

    let mut traced_cfg = ChaosConfig::new(SystemKind::SwitchFs, PlanKind::Combined, 5);
    traced_cfg.trace = true;
    let mut untraced_cfg = traced_cfg;
    untraced_cfg.trace = false;

    let traced = run_chaos(traced_cfg);
    let untraced = run_chaos(untraced_cfg);
    assert_eq!(
        traced.digest, untraced.digest,
        "recording trace events changed the protocol schedule"
    );
    assert_eq!(traced.final_now_ns, untraced.final_now_ns);
    assert_eq!(traced.violations, untraced.violations);

    // The traced run actually observed something, the untraced one nothing.
    assert!(untraced.flight_recorder.is_empty());
    assert!(!traced.flight_recorder.is_empty());

    // Causal correlation across the wire: pick any client-issued op and
    // find server-side events carrying the same trace id.
    let issued = traced
        .flight_recorder
        .iter()
        .find(|e| matches!(e.kind, EventKind::ClientIssue { .. }))
        .expect("a chaos run issues client ops");
    let trace = issued.trace.expect("client issues are always traced");
    let same_trace: Vec<_> = traced
        .flight_recorder
        .iter()
        .filter(|e| e.trace == Some(trace))
        .collect();
    assert!(
        same_trace.iter().any(|e| e.node != issued.node),
        "the trace id must correlate events across nodes, not only on the client"
    );
    // Virtual-time stamps within one node are monotone (FIFO ring).
    let mut per_node: std::collections::BTreeMap<u32, u64> = Default::default();
    for e in &traced.flight_recorder {
        let last = per_node.entry(e.node).or_insert(0);
        assert!(e.at_ns >= *last, "events within a node must be FIFO");
        *last = e.at_ns;
    }
}
