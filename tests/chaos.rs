//! Chaos smoke: a reduced multi-seed fault sweep with the consistency
//! checker on, run as part of tier-1 `cargo test`. The full 20-seed ×
//! all-systems sweep runs in CI's `chaos-smoke` job via the `chaos-sweep`
//! binary (which also uploads a failing seed + serialized fault plan as a
//! one-command-reproducible artifact).

use switchfs::chaos::{run_chaos, verify_replay, ChaosConfig, FaultPlan, PlanKind};
use switchfs::core::SystemKind;

fn assert_passed(cfg: ChaosConfig) -> switchfs::chaos::ChaosReport {
    let report = run_chaos(cfg);
    assert!(
        report.passed(),
        "{} / {} / seed {} failed; plan {}\nviolations: {:#?}",
        cfg.system,
        cfg.kind.label(),
        cfg.seed,
        report.plan.to_json(),
        report.violations
    );
    report
}

#[test]
fn switchfs_survives_every_plan_kind_across_seeds() {
    for kind in PlanKind::all() {
        for seed in 0..5 {
            assert_passed(ChaosConfig::new(SystemKind::SwitchFs, kind, seed));
        }
    }
}

#[test]
fn every_system_kind_survives_a_combined_plan() {
    for system in SystemKind::all() {
        assert_passed(ChaosConfig::new(system, PlanKind::Combined, 3));
    }
}

#[test]
fn crash_plans_actually_recover_servers() {
    let report = assert_passed(ChaosConfig::new(SystemKind::SwitchFs, PlanKind::Crash, 0));
    assert!(
        !report.recoveries.is_empty(),
        "a crash plan must drive at least one recovery"
    );
    for (server, r) in &report.recoveries {
        assert!(
            r.wal_records_replayed > 0 || r.inodes_recovered > 0,
            "server {server} recovery replayed nothing: {r:?}"
        );
        assert_eq!(r.txn_unresolved, 0, "server {server}: {r:?}");
    }
    assert_eq!(report.stranded_prepared, 0);
}

#[test]
fn same_seed_and_plan_replay_bit_identically() {
    let (report, replay_ok) = verify_replay(ChaosConfig::new(
        SystemKind::SwitchFs,
        PlanKind::Combined,
        7,
    ));
    assert!(report.passed(), "{:?}", report.violations);
    assert!(replay_ok, "same seed + plan must replay bit-identically");
    // And the plan itself regenerates identically.
    let again = FaultPlan::generate(
        report.plan.kind,
        report.plan.seed,
        4,
        report.plan.horizon_us,
    );
    assert_eq!(again, report.plan);
}

#[test]
fn fault_plans_serialize_for_artifact_reproduction() {
    let plan = FaultPlan::generate(PlanKind::Combined, 99, 4, 60_000);
    let back = FaultPlan::from_json(&plan.to_json()).unwrap();
    assert_eq!(plan, back);
}
