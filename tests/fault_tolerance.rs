//! Integration tests for crash recovery and switch failure (§5.4, §A.1).

use std::cell::RefCell;
use std::rc::Rc;

use switchfs::core::{Cluster, ClusterConfig, SystemKind};
use switchfs::proto::FsError;
use switchfs::simnet::SimDuration;

/// The shared slot a spawned rename reports its outcome into.
type Outcome = Rc<RefCell<Option<Result<(), FsError>>>>;

fn cluster() -> Cluster {
    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 1;
    Cluster::new(cfg)
}

/// Finds a tear seed under which `Wal::crash_apply` leaves none of the
/// victim's unflushed records intact — the worst-case torn tail. (Any seed
/// qualifies when nothing is unflushed; the probe works on a clone, so the
/// real log is untouched until the crash itself.)
fn tear_all_seed(cluster: &Cluster, victim: usize) -> u64 {
    let durable = cluster.durable_state(victim);
    (0..10_000u64)
        .find(|s| {
            let mut probe = durable.borrow().wal.clone();
            probe.crash_apply(*s).kept == 0
        })
        .expect("no tear-all seed in 10k tries")
}

#[test]
fn server_crash_recovery_restores_inodes_and_changelogs() {
    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/crashdir").await.unwrap();
        for i in 0..100 {
            client.create(&format!("/crashdir/f{i}")).await.unwrap();
        }
    });
    let before: usize = cluster.servers().iter().map(|s| s.inode_count()).sum();
    let durable = cluster.durable_state(0);
    let appended_before = durable.borrow().wal.bytes();
    assert!(durable.borrow().wal.flushed_bytes() <= appended_before);

    cluster.crash_server(0);
    assert!(cluster.servers()[0].is_crashed());
    let report = cluster.recover_server(0);
    assert!(report.wal_records_replayed > 0);
    assert!(!cluster.servers()[0].is_crashed());

    // The "WAL KB replayed" figure row is `wal_bytes_replayed / 1024`; it
    // must agree with the WAL's own flush-watermark accounting. A clean
    // crash loses nothing, so replay covers exactly the bytes appended
    // before the crash — and recovery marks all of them durable (without
    // ever exceeding what was appended).
    assert_eq!(report.wal_bytes_replayed, appended_before);
    assert!(durable.borrow().wal.flushed_bytes() >= report.wal_bytes_replayed);
    assert!(durable.borrow().wal.flushed_bytes() <= durable.borrow().wal.bytes());

    let after: usize = cluster.servers().iter().map(|s| s.inode_count()).sum();
    assert_eq!(
        before, after,
        "recovery must rebuild every inode from the WAL"
    );

    // The namespace is still correct and fully visible.
    let client = cluster.client(0);
    cluster.block_on(async move {
        let dir = client.statdir("/crashdir").await.unwrap();
        assert_eq!(dir.size, 100);
        for i in 0..100 {
            client.stat(&format!("/crashdir/f{i}")).await.unwrap();
        }
    });
}

#[test]
fn switch_reboot_reconciles_directory_states() {
    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/d").await.unwrap();
        for i in 0..50 {
            client.create(&format!("/d/f{i}")).await.unwrap();
        }
    });
    // The switch loses every fingerprint; servers flush their change-logs.
    let took = cluster.crash_and_recover_switch();
    assert!(took.as_nanos() > 0);
    assert_eq!(
        cluster.switch_occupancy(),
        Some(0),
        "after recovery every directory is back in normal state"
    );
    assert_eq!(
        cluster
            .servers()
            .iter()
            .map(|s| s.pending_changelog_entries())
            .sum::<usize>(),
        0,
        "all change-log entries must have been applied"
    );
    // No updates were lost.
    let client = cluster.client(0);
    cluster.block_on(async move {
        let dir = client.statdir("/d").await.unwrap();
        assert_eq!(dir.size, 50);
    });
}

#[test]
fn operations_issued_during_recovery_are_retried_and_succeed() {
    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/busy").await.unwrap();
        client.create("/busy/before").await.unwrap();
    });
    cluster.crash_server(1);
    cluster.recover_server(1);
    let client = cluster.client(0);
    cluster.block_on(async move {
        // New work after recovery lands on a consistent namespace.
        client.create("/busy/after").await.unwrap();
        let dir = client.statdir("/busy").await.unwrap();
        assert_eq!(dir.size, 2);
    });
}

/// Regression for the volatile-prepare hole (ROADMAP, closed by the durable
/// 2PC prepare + recovery decision re-query): a rename participant crashes
/// after voting yes but before receiving the decision. The coordinator's
/// decision retransmissions exhaust against the dead node and the client
/// still sees `Done`; the recovered participant must find its in-doubt
/// prepared transaction in the WAL, re-query the coordinator, apply the
/// commit — and the namespace must converge with no divergence.
#[test]
fn participant_crash_between_prepare_and_decision_recovers_and_converges() {
    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/t").await.unwrap();
        client.mkdir("/t2").await.unwrap();
        client.mkdir("/t3").await.unwrap();
    });

    // Drive renames until one leaves a prepared transaction on a remote
    // participant mid-2PC (placement decides which destination does; the
    // candidate sequence is deterministic, so the same one hits every run).
    let mut crashed: Option<usize> = None;
    let mut crashed_candidate = 0usize;
    let mut outcome: Option<Outcome> = None;
    'candidates: for (i, dst_dir) in ["/t2", "/t3"].iter().enumerate() {
        let src = format!("/t/a{i}");
        let dst = format!("{dst_dir}/b{i}");
        let client = cluster.client(0);
        let src2 = src.clone();
        cluster.block_on(async move {
            client.create(&src2).await.unwrap();
        });
        let done: Outcome = Rc::new(RefCell::new(None));
        let done2 = done.clone();
        let client = cluster.client(0);
        cluster.sim.spawn(async move {
            let r = client.rename(&src, &dst).await;
            *done2.borrow_mut() = Some(r);
        });
        // Step the simulation in small increments until a participant holds
        // a prepared-but-undecided transaction, then crash it immediately.
        let mut t = cluster.sim.now();
        let deadline = t + SimDuration::millis(50);
        while cluster.sim.now() < deadline {
            t += SimDuration::micros(5);
            cluster.run_until(t);
            if let Some(v) = (0..cluster.servers().len())
                .find(|i| cluster.servers()[*i].prepared_txn_count() > 0)
            {
                cluster.crash_server(v);
                crashed = Some(v);
                crashed_candidate = i;
                outcome = Some(done.clone());
                break 'candidates;
            }
            if done.borrow().is_some() {
                // This rename finished without a remote prepare window we
                // could observe; try the next candidate destination.
                continue 'candidates;
            }
        }
    }
    let victim = crashed.expect("no rename left an observable prepared transaction");
    let outcome = outcome.unwrap();

    // Step the simulation (the proactive background loops never quiesce, so
    // a plain `run()` would spin forever) until the coordinator's decision
    // retransmissions to the crashed participant exhaust and the client
    // observes the outcome.
    {
        let deadline = cluster.sim.now() + SimDuration::millis(200);
        while outcome.borrow().is_none() && cluster.sim.now() < deadline {
            let t = cluster.sim.now() + SimDuration::millis(1);
            cluster.run_until(t);
        }
    }
    assert_eq!(
        *outcome.borrow(),
        Some(Ok(())),
        "rename must commit even though a participant crashed after voting"
    );
    assert!(cluster.servers()[victim].is_crashed());

    // Recovery finds the in-doubt transaction and resolves it by re-asking
    // the coordinator.
    let report = cluster.recover_server(victim);
    assert!(
        report.prepared_txns_recovered >= 1,
        "recovery must find the in-doubt prepared transaction: {report:?}"
    );
    assert_eq!(
        report.txn_commits_recovered, report.prepared_txns_recovered,
        "every in-doubt transaction must resolve to the coordinator's commit: {report:?}"
    );
    assert_eq!(report.txn_unresolved, 0, "{report:?}");

    // The namespace converged: every rename that ran committed — the file
    // is visible at its destination (and only there), and the listings
    // agree with the inode probes.
    let dirs = ["/t2", "/t3"];
    let client = cluster.client(0);
    cluster.block_on(async move {
        for (i, dst_dir) in dirs.iter().enumerate().take(crashed_candidate + 1) {
            let src = format!("/t/a{i}");
            let dst = format!("{dst_dir}/b{i}");
            let src_stat = client.stat(&src).await;
            let dst_stat = client.stat(&dst).await;
            match (src_stat, dst_stat) {
                (Err(FsError::NotFound), Ok(_)) => {}
                (s, d) => panic!("diverged namespace for {src} -> {dst}: {s:?} / {d:?}"),
            }
            let (t_attrs, t_entries) = client.readdir("/t").await.unwrap();
            assert_eq!(t_attrs.size, t_entries.len() as u64);
            assert!(!t_entries.iter().any(|e| e.name == format!("a{i}")));
            let (d_attrs, d_entries) = client.readdir(dst_dir).await.unwrap();
            assert_eq!(d_attrs.size, d_entries.len() as u64);
            assert!(d_entries.iter().any(|e| e.name == format!("b{i}")));
        }
    });
}

#[test]
fn checkpoint_bounds_wal_replay() {
    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/cp").await.unwrap();
        for i in 0..40 {
            client.create(&format!("/cp/f{i}")).await.unwrap();
        }
    });
    // Checkpoint every server, then add a little more work.
    for s in cluster.servers() {
        s.checkpoint();
    }
    let client = cluster.client(0);
    cluster.block_on(async move {
        for i in 40..50 {
            client.create(&format!("/cp/f{i}")).await.unwrap();
        }
    });
    cluster.crash_server(0);
    let report = cluster.recover_server(0);
    // Replay is bounded by the post-checkpoint suffix, not the whole history.
    assert!(
        report.wal_records_replayed < 30,
        "checkpoint should bound replay, got {} records",
        report.wal_records_replayed
    );
    let client = cluster.client(0);
    cluster.block_on(async move {
        let dir = client.statdir("/cp").await.unwrap();
        assert_eq!(dir.size, 50);
    });
}

// ---------------------------------------------------------------------------
// Torn-write disk chaos: checksummed WAL + persist-ordering barriers (PR 6)
// ---------------------------------------------------------------------------

/// The acceptance-criteria demo: a server is crashed *mid-append* so its WAL
/// holds an unflushed tail, the crash tears that tail, and recovery detects
/// it, truncates it, and loses **zero acknowledged updates** — every create
/// the client saw complete before the crash is still visible after it.
#[test]
fn torn_wal_tail_is_detected_truncated_and_loses_no_acked_update() {
    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/torn").await.unwrap();
        for i in 0..100 {
            client.create(&format!("/torn/f{i}")).await.unwrap();
        }
    });
    // Widen the torn-write window (append → disk wait → flush): with 64×
    // slower appends the stepping below reliably pauses the simulation while
    // some server holds appended-but-unflushed records.
    for s in cluster.servers() {
        s.set_disk_slowdown(64);
    }
    let progress = Rc::new(RefCell::new(0usize));
    {
        let client = cluster.client(0);
        let progress = progress.clone();
        cluster.sim.spawn(async move {
            for i in 0..20 {
                // Unacknowledged at crash time: any outcome is acceptable,
                // the client just keeps the cluster busy.
                let _ = client.create(&format!("/torn/g{i}")).await;
                *progress.borrow_mut() += 1;
            }
        });
    }
    let mut victim = None;
    let deadline = cluster.sim.now() + SimDuration::millis(50);
    while cluster.sim.now() < deadline {
        let t = cluster.sim.now() + SimDuration::micros(5);
        cluster.run_until(t);
        if let Some(v) = (0..cluster.servers().len())
            .find(|i| cluster.durable_state(*i).borrow().wal.unflushed_len() > 0)
        {
            victim = Some(v);
            break;
        }
    }
    let victim = victim.expect("no server was caught mid-append with an unflushed tail");
    // A tear seed that provably corrupts at least one unflushed record.
    let seed = {
        let durable = cluster.durable_state(victim);
        (0..10_000u64)
            .find(|s| {
                let mut probe = durable.borrow().wal.clone();
                probe.crash_apply(*s).torn > 0
            })
            .expect("no tearing seed in 10k tries")
    };
    let tail = cluster.crash_server_torn(victim, seed);
    assert!(tail.torn > 0, "the crash must tear the tail: {tail:?}");
    for s in cluster.servers() {
        s.set_disk_slowdown(1);
    }

    let report = cluster.recover_server(victim);
    assert!(
        report.wal_torn_records >= 1,
        "recovery must detect the torn records: {report:?}"
    );
    assert!(
        report.wal_truncated_records >= report.wal_torn_records,
        "every torn record (and anything stranded behind it) is truncated: {report:?}"
    );
    assert!(report.wal_bytes_replayed > 0);
    assert!(
        cluster.durable_state(victim).borrow().wal.generation() >= 2,
        "recovery must bump the WAL generation"
    );

    // Let the background burst ride out its retries.
    let deadline = cluster.sim.now() + SimDuration::millis(500);
    while *progress.borrow() < 20 && cluster.sim.now() < deadline {
        let t = cluster.sim.now() + SimDuration::millis(1);
        cluster.run_until(t);
    }

    // Zero lost acknowledged updates: all 100 acked creates are visible by
    // stat and by listing.
    let client = cluster.client(0);
    cluster.block_on(async move {
        for i in 0..100 {
            client.stat(&format!("/torn/f{i}")).await.unwrap();
        }
        let (_, entries) = client.readdir("/torn").await.unwrap();
        for i in 0..100 {
            assert!(
                entries.iter().any(|e| e.name == format!("f{i}")),
                "acknowledged create f{i} lost to the torn tail"
            );
        }
    });
}

/// Crash-in-window regression for the durable-completion barrier
/// (`reply` persists + flushes the completion record *before* the
/// acknowledgment escapes): even a crash that destroys the entire unflushed
/// tail must leave an acknowledged operation's completion record behind, so
/// a retransmission spanning the crash gets the original result instead of
/// a re-execution.
#[test]
fn retransmission_after_torn_crash_still_gets_the_original_result() {
    use switchfs::proto::message::{
        Body, ClientRequest, MetaOp, NetMsg, PacketSeq, ParentRef, ServerMsg,
    };
    use switchfs::proto::{ClientId, DirId, Fingerprint, MetaKey, OpId, OpResult, Permissions};
    use switchfs::simnet::NodeId;

    let cluster = cluster();
    let placement = cluster.placement();
    let key = MetaKey::new(DirId::ROOT, "torn-victim-file");
    let owner = placement.file_owner(&key).0 as usize;
    let owner_node = cluster.server_node_id(owner);

    let endpoint = Rc::new(cluster.network().register(NodeId(7778)));
    let request = Rc::new(ClientRequest {
        op_id: OpId {
            client: ClientId(78),
            seq: 1,
        },
        op: MetaOp::Create {
            key,
            perm: Permissions::default(),
        },
        ancestors: vec![DirId::ROOT],
        parent: Some(ParentRef {
            key: MetaKey::new(DirId::ROOT, ""),
            id: DirId::ROOT,
            fp: Fingerprint::of_dir(&DirId::ROOT, ""),
        }),
        epoch: 0,
        acked_below: 0,
    });

    let send_and_wait = |pkt_seq: u64| {
        let endpoint = endpoint.clone();
        let request = request.clone();
        cluster.block_on(async move {
            endpoint.send(
                owner_node,
                NetMsg::plain(
                    PacketSeq {
                        sender: 7778,
                        seq: pkt_seq,
                    },
                    Body::Request(request),
                ),
            );
            loop {
                let pkt = endpoint.recv().await.expect("network alive");
                match pkt.payload.body {
                    Body::Response(r) => return r,
                    Body::Server(ServerMsg::AsyncCommit { response, .. }) => return response,
                    _ => {}
                }
            }
        })
    };

    let first = send_and_wait(1);
    assert!(
        first.result.is_ok(),
        "initial create failed: {:?}",
        first.result
    );

    // Worst-case torn crash: nothing unflushed survives. The acknowledged
    // create's op record and completion record were flushed before the ack
    // escaped, so both are in the surviving prefix by construction.
    let seed = tear_all_seed(&cluster, owner);
    cluster.crash_server_torn(owner, seed);
    let report = cluster.recover_server(owner);
    assert!(
        report.completed_ops_recovered > 0,
        "the flushed completion record must survive the torn tail: {report:?}"
    );

    let second = send_and_wait(2);
    assert_eq!(
        second.result, first.result,
        "retransmission across the torn crash must return the original result"
    );
    assert!(
        !matches!(second.result, OpResult::Err(FsError::AlreadyExists)),
        "recovered server re-executed a completed create"
    );
}

/// Crash-in-window regression for the Prepared-before-vote barrier
/// (`log_txn_marker` flushes before returning, and the participant inserts
/// the volatile entry — observable by this test — only after that): a
/// participant hit by a worst-case torn crash right after voting yes must
/// still find its in-doubt transaction in the WAL's surviving prefix and
/// resolve it by re-asking the coordinator.
#[test]
fn participant_torn_crash_after_vote_still_recovers_the_prepared_txn() {
    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/tt").await.unwrap();
        client.mkdir("/tt2").await.unwrap();
        client.mkdir("/tt3").await.unwrap();
    });

    let mut crashed: Option<usize> = None;
    let mut outcome: Option<Outcome> = None;
    'candidates: for (i, dst_dir) in ["/tt2", "/tt3"].iter().enumerate() {
        let src = format!("/tt/a{i}");
        let dst = format!("{dst_dir}/b{i}");
        let client = cluster.client(0);
        let src2 = src.clone();
        cluster.block_on(async move {
            client.create(&src2).await.unwrap();
        });
        let done: Outcome = Rc::new(RefCell::new(None));
        let done2 = done.clone();
        let client = cluster.client(0);
        cluster.sim.spawn(async move {
            let r = client.rename(&src, &dst).await;
            *done2.borrow_mut() = Some(r);
        });
        let mut t = cluster.sim.now();
        let deadline = t + SimDuration::millis(50);
        while cluster.sim.now() < deadline {
            t += SimDuration::micros(5);
            cluster.run_until(t);
            if let Some(v) = (0..cluster.servers().len())
                .find(|i| cluster.servers()[*i].prepared_txn_count() > 0)
            {
                // The worst case the device can produce: every unflushed
                // record is torn or dropped. The Prepared marker must not be
                // among them.
                let seed = tear_all_seed(&cluster, v);
                cluster.crash_server_torn(v, seed);
                crashed = Some(v);
                outcome = Some(done.clone());
                break 'candidates;
            }
            if done.borrow().is_some() {
                continue 'candidates;
            }
        }
    }
    let victim = crashed.expect("no rename left an observable prepared transaction");
    let outcome = outcome.unwrap();

    {
        let deadline = cluster.sim.now() + SimDuration::millis(200);
        while outcome.borrow().is_none() && cluster.sim.now() < deadline {
            let t = cluster.sim.now() + SimDuration::millis(1);
            cluster.run_until(t);
        }
    }
    assert_eq!(
        *outcome.borrow(),
        Some(Ok(())),
        "rename must commit even though a participant tore its disk after voting"
    );

    let report = cluster.recover_server(victim);
    assert!(
        report.prepared_txns_recovered >= 1,
        "the flushed Prepared marker must survive a total torn tail: {report:?}"
    );
    assert_eq!(
        report.txn_commits_recovered, report.prepared_txns_recovered,
        "every in-doubt transaction must resolve to the coordinator's commit: {report:?}"
    );
    assert_eq!(report.txn_unresolved, 0, "{report:?}");
}

/// Satellite regression: a `TxnMarker::Resolved` whose matching `Prepared`
/// is nowhere to be found (torn away, or plain absent) must be tolerated —
/// counted, never panicked on, never silently leaving a transaction in
/// doubt.
#[test]
fn orphan_resolved_marker_is_tolerated_and_counted() {
    use switchfs::server::{TxnMarker, WalOp};

    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/orphan").await.unwrap();
        client.create("/orphan/f").await.unwrap();
    });
    {
        let durable = cluster.durable_state(2);
        let mut durable = durable.borrow_mut();
        let record = WalOp::txn(TxnMarker::Resolved {
            txn_id: 0xdead_beef,
        });
        let size = record.wire_size();
        durable.wal.append_sized(record, size);
        durable.wal.flush();
    }
    cluster.crash_server(2);
    let report = cluster.recover_server(2);
    assert_eq!(report.orphan_resolved_markers, 1, "{report:?}");
    assert_eq!(report.txn_unresolved, 0, "{report:?}");
    assert_eq!(report.prepared_txns_recovered, 0, "{report:?}");
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.stat("/orphan/f").await.unwrap();
    });
}

/// Every multi-record protocol's marker type can sit in the unflushed tail
/// when the disk tears it away completely; recovery must truncate them all
/// cleanly — no panic, no resurrected transaction or migration, watermark
/// and acked namespace intact.
#[test]
fn unflushed_protocol_records_of_every_kind_truncate_cleanly() {
    use switchfs::proto::message::{ClientResponse, TxnOp};
    use switchfs::proto::{ClientId, DirId, MetaKey, OpId, OpResult, ServerId};
    use switchfs::server::wal::MigrationMarker;
    use switchfs::server::{TxnMarker, WalOp};

    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/win").await.unwrap();
        for i in 0..10 {
            client.create(&format!("/win/f{i}")).await.unwrap();
        }
    });
    let victim = 1usize;
    let flushed_before = {
        let durable = cluster.durable_state(victim);
        let mut durable = durable.borrow_mut();
        let flushed = durable.wal.flushed();
        let records = vec![
            WalOp::txn(TxnMarker::Prepared {
                txn_id: 4242,
                coordinator: ServerId(0),
                ops: vec![TxnOp::DeleteInode {
                    key: MetaKey::new(DirId::ROOT, "x"),
                }],
            }),
            WalOp::txn(TxnMarker::Decided {
                txn_id: 4242,
                commit: true,
            }),
            WalOp::txn(TxnMarker::Resolved { txn_id: 4242 }),
            WalOp::migration(MigrationMarker::Started {
                shard: 3,
                target: ServerId(0),
            }),
            WalOp::completion(ClientResponse {
                op_id: OpId {
                    client: ClientId(9),
                    seq: 9,
                },
                result: OpResult::Done,
                server: ServerId(victim as u32),
            }),
        ];
        for record in records {
            let size = record.wire_size();
            // Deliberately left unflushed: these model records caught
            // mid-append when the crash hits.
            durable.wal.append_sized(record, size);
        }
        flushed
    };
    let seed = tear_all_seed(&cluster, victim);
    let tail = cluster.crash_server_torn(victim, seed);
    assert_eq!(tail.kept, 0, "{tail:?}");
    assert!(tail.torn + tail.dropped >= 5, "{tail:?}");

    let report = cluster.recover_server(victim);
    assert_eq!(
        report.wal_truncated_records, tail.torn,
        "exactly the torn survivors are truncated (dropped ones never hit media): {report:?}"
    );
    assert_eq!(
        report.prepared_txns_recovered, 0,
        "a torn Prepared must not resurrect an in-doubt transaction: {report:?}"
    );
    assert_eq!(report.txn_unresolved, 0, "{report:?}");
    assert_eq!(
        report.migrations_resolved, 0,
        "a torn migration marker must not trigger shard resolution: {report:?}"
    );
    assert!(
        cluster.durable_state(victim).borrow().wal.flushed() >= flushed_before,
        "truncation must never regress the durable watermark"
    );
    let client = cluster.client(0);
    cluster.block_on(async move {
        for i in 0..10 {
            client.stat(&format!("/win/f{i}")).await.unwrap();
        }
    });
}

// ---------------------------------------------------------------------------
// Bounded duplicate-suppression state + crash-surviving dedup (PR 4)
// ---------------------------------------------------------------------------

/// Regression: `completed_ops` used to grow by one cached response per
/// operation forever. With the piggybacked acked-watermark (plus the
/// bounded-LRU fallback) the cache must stay within the in-flight window
/// under sustained load, not within the server's lifetime.
#[test]
fn completed_ops_stay_bounded_under_sustained_load() {
    use switchfs::workloads::{NamespaceSpec, OpKind, WorkloadBuilder};

    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 4;
    let mut cluster = Cluster::new(cfg);
    let ns = NamespaceSpec::multi_dir(16, 0);
    for d in ns.all_dirs() {
        cluster.preload_dir(&d);
    }
    let mut builder = WorkloadBuilder::new(ns, 11);
    let in_flight = 64usize;
    let total_ops = 10_000usize;
    let report = cluster.run_workload(builder.uniform(OpKind::Create, total_ops), in_flight, None);
    assert_eq!(report.ops as usize, total_ops);

    let cached: usize = cluster
        .servers()
        .iter()
        .map(|s| s.completed_op_count())
        .sum();
    // Every (client, server) pair retains at most about one in-flight
    // window of responses (the tail since that client's last watermark).
    let bound = cluster.clients().len() * cluster.servers().len() * 2 * in_flight;
    assert!(
        cached <= bound,
        "dedup cache grew to {cached} entries after {total_ops} ops (bound {bound})"
    );
    // And the bound is far below one-entry-per-op (the old behavior).
    assert!(
        cached < total_ops / 2,
        "cache {cached} ~ op count {total_ops}"
    );
}

/// Regression: crash recovery used to clear `completed_ops`, so a
/// retransmission of an operation that completed *before* the crash
/// re-executed after it — a recovered create answered its own originator
/// with `AlreadyExists` instead of the original result. The responses of
/// mutating operations are now WAL-durable (and carried by checkpoints):
/// the retransmit must get the original answer back.
#[test]
fn retransmission_after_crash_gets_the_original_result() {
    use switchfs::proto::message::{
        Body, ClientRequest, MetaOp, NetMsg, PacketSeq, ParentRef, ServerMsg,
    };
    use switchfs::proto::{ClientId, DirId, Fingerprint, MetaKey, OpId, OpResult, Permissions};
    use switchfs::simnet::NodeId;

    let cluster = cluster();
    let placement = cluster.placement();
    let key = MetaKey::new(DirId::ROOT, "victim-file");
    let owner = placement.file_owner(&key).0 as usize;
    let owner_node = cluster.server_node_id(owner);

    // A raw client endpoint lets the test model the exact failure window:
    // the response is produced (and the reply sent) but the "client" acts
    // as if it never consumed it, retransmitting the identical request
    // after the server crashed and recovered.
    let endpoint = Rc::new(cluster.network().register(NodeId(7777)));
    let request = Rc::new(ClientRequest {
        op_id: OpId {
            client: ClientId(77),
            seq: 1,
        },
        op: MetaOp::Create {
            key,
            perm: Permissions::default(),
        },
        ancestors: vec![DirId::ROOT],
        parent: Some(ParentRef {
            key: MetaKey::new(DirId::ROOT, ""),
            id: DirId::ROOT,
            fp: Fingerprint::of_dir(&DirId::ROOT, ""),
        }),
        epoch: 0,
        acked_below: 0,
    });

    let send_and_wait = |pkt_seq: u64| {
        let endpoint = endpoint.clone();
        let request = request.clone();
        cluster.block_on(async move {
            endpoint.send(
                owner_node,
                NetMsg::plain(
                    PacketSeq {
                        sender: 7777,
                        seq: pkt_seq,
                    },
                    Body::Request(request),
                ),
            );
            loop {
                let pkt = endpoint.recv().await.expect("network alive");
                match pkt.payload.body {
                    Body::Response(r) => return r,
                    // Double-inode responses arrive through the switch's
                    // commit multicast, like LibFs consumes them.
                    Body::Server(ServerMsg::AsyncCommit { response, .. }) => return response,
                    _ => {}
                }
            }
        })
    };

    let first = send_and_wait(1);
    assert!(
        first.result.is_ok(),
        "initial create failed: {:?}",
        first.result
    );

    cluster.crash_server(owner);
    let report = cluster.recover_server(owner);
    assert!(
        report.completed_ops_recovered > 0,
        "recovery must rebuild the dedup cache from the WAL"
    );

    let second = send_and_wait(2);
    assert_eq!(
        second.result, first.result,
        "retransmission across the crash must return the original result"
    );
    assert!(
        !matches!(second.result, OpResult::Err(FsError::AlreadyExists)),
        "recovered server re-executed a completed create"
    );
}

/// Regression: `applied_entry_ids` (change-log duplicate suppression) used
/// to grow by one OpId per remote entry for the server's lifetime, and every
/// `ShardInstall` shipped a full copy. With holders confirming durable
/// discards (piggybacked on messages that already flow) the set must stay
/// within the in-flight confirmation window under sustained cross-server
/// directory-update load — mirroring the PR 4 `completed_ops` bound.
#[test]
fn applied_entry_ids_stay_bounded_under_sustained_cross_server_load() {
    use switchfs::workloads::{NamespaceSpec, OpKind, WorkloadBuilder};

    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 4;
    let mut cluster = Cluster::new(cfg);
    let ns = NamespaceSpec::multi_dir(16, 0);
    for d in ns.all_dirs() {
        cluster.preload_dir(&d);
    }
    let mut builder = WorkloadBuilder::new(ns, 11);
    let total_ops = 10_000usize;
    let report = cluster.run_workload(builder.uniform(OpKind::Create, total_ops), 64, None);
    assert_eq!(report.ops as usize, total_ops);
    // Let the trailing pushes, acks and piggybacked confirmations drain.
    cluster.settle(SimDuration::millis(10));

    let unconfirmed: usize = cluster
        .servers()
        .iter()
        .map(|s| s.applied_entry_id_count())
        .sum();
    // Residual unconfirmed ids: at most the last un-ridden batch per
    // (holder, owner) pair plus the in-flight window — far below one id
    // per operation (the old behavior retained all 10k forever).
    let pairs = cluster.servers().len() * (cluster.servers().len() - 1);
    let bound = pairs * 256;
    assert!(
        unconfirmed <= bound,
        "applied_entry_ids grew to {unconfirmed} after {total_ops} ops (bound {bound})"
    );
    assert!(
        unconfirmed < total_ops / 4,
        "unconfirmed {unconfirmed} ~ op count {total_ops}"
    );
    // The retired FIFO is retention-bounded, not lifetime-bounded. Eviction
    // is lazy (it runs on retirement activity), so: let the 100 ms
    // retention window pass, then drive a second, much smaller workload —
    // its confirmations must evict the first 10k ids, leaving the FIFO
    // sized by the *recent* window only.
    cluster.settle(SimDuration::millis(120));
    let tail_ops = 1_000usize;
    let report = cluster.run_workload(builder.uniform(OpKind::Create, tail_ops), 64, None);
    assert_eq!(report.ops as usize, tail_ops);
    cluster.settle(SimDuration::millis(10));
    let retired: usize = cluster
        .servers()
        .iter()
        .map(|s| s.retired_entry_id_count())
        .sum();
    assert!(
        retired <= tail_ops + bound,
        "retention eviction did not run: {retired} retired ids after a {tail_ops}-op tail \
         (first window was {total_ops} ops)"
    );
    assert!(
        retired < total_ops / 2,
        "retired FIFO {retired} still holds the first window's {total_ops} ids"
    );
}

// ---------------------------------------------------------------------------
// Live shard migration / elastic membership (PR 4 tentpole)
// ---------------------------------------------------------------------------

/// `Cluster::add_server` + `rebalance` on a loaded cluster: only ~1/N of
/// the shards move, every file survives, directory listings stay complete,
/// and a client holding the stale map is transparently redirected via
/// `WrongOwner` refresh-and-retry.
#[test]
fn add_server_rebalances_a_fair_share_and_preserves_the_namespace() {
    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 2;
    let mut cluster = Cluster::new(cfg);

    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/elastic").await.unwrap();
        for i in 0..120 {
            client.create(&format!("/elastic/f{i}")).await.unwrap();
        }
    });

    let num_shards = cluster.placement().num_shards();
    let new_idx = cluster.add_server();
    assert_eq!(new_idx, 4);
    let moved = cluster.rebalance();

    // Bounded movement: the newcomer's fair share, nothing more.
    let fair = num_shards / 5;
    assert!(
        moved >= fair - 1 && moved <= num_shards / 4,
        "moved {moved} shards of {num_shards} (fair share {fair})"
    );
    assert_eq!(
        cluster
            .placement()
            .shards_owned(switchfs::proto::ServerId(4)),
        moved,
        "every migrated shard must now be owned by the new server"
    );
    assert!(
        cluster.placement().epoch() > 0,
        "the flip must bump the epoch"
    );
    let stats = cluster.total_server_stats();
    assert_eq!(stats.shards_migrated_in as usize, moved);
    assert_eq!(stats.shards_migrated_out as usize, moved);
    assert_eq!(
        cluster
            .servers()
            .iter()
            .map(|s| s.migrating_shard_count())
            .sum::<usize>(),
        0,
        "no shard may stay frozen after the rebalance"
    );

    // The new server actually took over state.
    assert!(
        cluster.servers()[4].inode_count() > 0,
        "the new server should own migrated inodes"
    );

    // Clients still see the full namespace — including client 0, whose
    // cached map is stale and must be refreshed by WrongOwner rejections.
    let client = cluster.client(0);
    cluster.block_on(async move {
        let dir = client.statdir("/elastic").await.unwrap();
        assert_eq!(dir.size, 120);
        let (_, entries) = client.readdir("/elastic").await.unwrap();
        assert_eq!(entries.len(), 120);
        for i in 0..120 {
            client.stat(&format!("/elastic/f{i}")).await.unwrap();
        }
    });

    // And the cluster keeps accepting writes routed by the new map.
    let client = cluster.client(1);
    cluster.block_on(async move {
        for i in 120..140 {
            client.create(&format!("/elastic/f{i}")).await.unwrap();
        }
        let dir = client.statdir("/elastic").await.unwrap();
        assert_eq!(dir.size, 140);
    });
}

// ---------------------------------------------------------------------------
// Graceful server decommission (elastic shrink)
// ---------------------------------------------------------------------------

/// `Cluster::remove_server` on a loaded cluster: every shard the victim owns
/// drains to the survivors, the id retires with an epoch bump, the victim
/// becomes a WrongOwner redirect tombstone, and clients holding the stale
/// map see the full namespace via refresh-and-retry.
#[test]
fn remove_server_drains_every_shard_and_preserves_the_namespace() {
    use switchfs::proto::ServerId;

    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 2;
    let mut cluster = Cluster::new(cfg);

    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/shrink").await.unwrap();
        for i in 0..120 {
            client.create(&format!("/shrink/f{i}")).await.unwrap();
        }
    });

    let victim = 1usize;
    let victim_id = ServerId(victim as u32);
    let owned_before = cluster.placement().shards_owned(victim_id);
    assert!(owned_before > 0);

    let report = cluster.remove_server(victim);
    assert!(report.completed, "drain must finish on a healthy cluster");
    assert_eq!(
        report.shards_moved, owned_before,
        "every victim shard must migrate"
    );
    assert_eq!(cluster.placement().shards_owned(victim_id), 0);
    assert!(cluster.placement().is_retired(victim_id));
    assert_eq!(cluster.placement().num_active_servers(), 3);
    assert!(
        cluster.placement().epoch() as usize > owned_before,
        "each flip and the retirement bump the epoch"
    );
    assert!(cluster.servers()[victim].is_decommissioned());
    // Everything with a routing role migrated; at most the defensive
    // preload replica of the root (installed on both the fp- and id-hash
    // owners at setup, of which only the fp copy has a role under per-file
    // hashing) may remain.
    assert!(
        cluster.servers()[victim].inode_count() <= 1,
        "a drained victim stores nothing protocol-visible, found {}",
        cluster.servers()[victim].inode_count()
    );
    assert_eq!(
        cluster.servers()[victim].pending_changelog_entries(),
        0,
        "a drained victim holds no deferred updates"
    );
    assert_eq!(
        cluster
            .servers()
            .iter()
            .map(|s| s.migrating_shard_count())
            .sum::<usize>(),
        0
    );

    // Client 0's cached map is stale; WrongOwner redirects (including from
    // the victim's tombstone) must refresh it transparently.
    let client = cluster.client(0);
    cluster.block_on(async move {
        let dir = client.statdir("/shrink").await.unwrap();
        assert_eq!(dir.size, 120);
        let (_, entries) = client.readdir("/shrink").await.unwrap();
        assert_eq!(entries.len(), 120);
        for i in 0..120 {
            client.stat(&format!("/shrink/f{i}")).await.unwrap();
        }
    });

    // The shrunken cluster keeps accepting writes.
    let client = cluster.client(1);
    cluster.block_on(async move {
        for i in 120..150 {
            client.create(&format!("/shrink/f{i}")).await.unwrap();
        }
        let dir = client.statdir("/shrink").await.unwrap();
        assert_eq!(dir.size, 150);
    });
}

/// A decommission interrupted by a crash must resolve from the WAL
/// `MigrationMarker`s on recovery (flipped shards drop their replayed stale
/// copies; unflipped ones stay owned), and re-running `remove_server`
/// afterwards finishes the drain with the namespace intact.
#[test]
fn crash_mid_decommission_resolves_from_wal_markers_and_converges() {
    use switchfs::core::run_decommission;
    use switchfs::proto::ServerId;

    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 2;
    let mut cluster = Cluster::new(cfg);

    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/shrink2").await.unwrap();
        for i in 0..100 {
            client.create(&format!("/shrink2/f{i}")).await.unwrap();
        }
    });

    let victim = 0usize;
    let victim_id = ServerId(victim as u32);
    let owned_before = cluster.placement().shards_owned(victim_id);
    assert!(owned_before > 1);

    // Start the drain concurrently, then crash the victim once some — but
    // not all — shards have flipped.
    let outcome: Outcome = Rc::new(RefCell::new(None));
    {
        let placement = cluster.placement();
        let servers = cluster.servers().to_vec();
        let outcome = outcome.clone();
        cluster.sim.spawn(async move {
            let report = run_decommission(&placement, &servers, victim).await;
            *outcome.borrow_mut() = Some(if report.completed {
                Ok(())
            } else {
                Err(FsError::Unavailable)
            });
        });
    }
    let deadline = cluster.sim.now() + SimDuration::millis(200);
    while cluster.sim.now() < deadline {
        let t = cluster.sim.now() + SimDuration::micros(20);
        cluster.run_until(t);
        let left = cluster.placement().shards_owned(victim_id);
        if left < owned_before && left > 0 {
            break;
        }
    }
    let mid = cluster.placement().shards_owned(victim_id);
    assert!(
        mid < owned_before && mid > 0,
        "crash window missed: victim still owns {mid} of {owned_before}"
    );
    cluster.crash_server(victim);

    // The interrupted drain future bails out against the crashed server.
    {
        let deadline = cluster.sim.now() + SimDuration::millis(100);
        while outcome.borrow().is_none() && cluster.sim.now() < deadline {
            let t = cluster.sim.now() + SimDuration::millis(1);
            cluster.run_until(t);
        }
    }
    assert_eq!(
        *outcome.borrow(),
        Some(Err(FsError::Unavailable)),
        "a drain interrupted by a crash must report itself incomplete"
    );
    assert!(!cluster.placement().is_retired(victim_id));

    // Recovery resolves the interrupted migrations against the shared map:
    // shards that flipped drop their replayed stale copies; the rest stay.
    let report = cluster.recover_server(victim);
    assert!(report.wal_records_replayed > 0);
    assert_eq!(cluster.placement().shards_owned(victim_id), mid);

    // Re-running the decommission finishes the drain.
    let report = cluster.remove_server(victim);
    assert!(report.completed, "re-run must finish the interrupted drain");
    assert_eq!(cluster.placement().shards_owned(victim_id), 0);
    assert!(cluster.placement().is_retired(victim_id));
    assert!(cluster.servers()[victim].is_decommissioned());

    // The namespace survived the crash + partial drain + re-drain.
    let client = cluster.client(1);
    cluster.block_on(async move {
        let dir = client.statdir("/shrink2").await.unwrap();
        assert_eq!(dir.size, 100);
        let (_, entries) = client.readdir("/shrink2").await.unwrap();
        assert_eq!(entries.len(), 100);
        for i in 0..100 {
            client.stat(&format!("/shrink2/f{i}")).await.unwrap();
        }
    });
}
