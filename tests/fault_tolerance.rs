//! Integration tests for crash recovery and switch failure (§5.4, §A.1).

use switchfs::core::{Cluster, ClusterConfig, SystemKind};

fn cluster() -> Cluster {
    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 1;
    Cluster::new(cfg)
}

#[test]
fn server_crash_recovery_restores_inodes_and_changelogs() {
    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/crashdir").await.unwrap();
        for i in 0..100 {
            client.create(&format!("/crashdir/f{i}")).await.unwrap();
        }
    });
    let before: usize = cluster.servers().iter().map(|s| s.inode_count()).sum();

    cluster.crash_server(0);
    assert!(cluster.servers()[0].is_crashed());
    let report = cluster.recover_server(0);
    assert!(report.wal_records_replayed > 0);
    assert!(!cluster.servers()[0].is_crashed());

    let after: usize = cluster.servers().iter().map(|s| s.inode_count()).sum();
    assert_eq!(
        before, after,
        "recovery must rebuild every inode from the WAL"
    );

    // The namespace is still correct and fully visible.
    let client = cluster.client(0);
    cluster.block_on(async move {
        let dir = client.statdir("/crashdir").await.unwrap();
        assert_eq!(dir.size, 100);
        for i in 0..100 {
            client.stat(&format!("/crashdir/f{i}")).await.unwrap();
        }
    });
}

#[test]
fn switch_reboot_reconciles_directory_states() {
    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/d").await.unwrap();
        for i in 0..50 {
            client.create(&format!("/d/f{i}")).await.unwrap();
        }
    });
    // The switch loses every fingerprint; servers flush their change-logs.
    let took = cluster.crash_and_recover_switch();
    assert!(took.as_nanos() > 0);
    assert_eq!(
        cluster.switch_occupancy(),
        Some(0),
        "after recovery every directory is back in normal state"
    );
    assert_eq!(
        cluster
            .servers()
            .iter()
            .map(|s| s.pending_changelog_entries())
            .sum::<usize>(),
        0,
        "all change-log entries must have been applied"
    );
    // No updates were lost.
    let client = cluster.client(0);
    cluster.block_on(async move {
        let dir = client.statdir("/d").await.unwrap();
        assert_eq!(dir.size, 50);
    });
}

#[test]
fn operations_issued_during_recovery_are_retried_and_succeed() {
    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/busy").await.unwrap();
        client.create("/busy/before").await.unwrap();
    });
    cluster.crash_server(1);
    cluster.recover_server(1);
    let client = cluster.client(0);
    cluster.block_on(async move {
        // New work after recovery lands on a consistent namespace.
        client.create("/busy/after").await.unwrap();
        let dir = client.statdir("/busy").await.unwrap();
        assert_eq!(dir.size, 2);
    });
}

#[test]
fn checkpoint_bounds_wal_replay() {
    let cluster = cluster();
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/cp").await.unwrap();
        for i in 0..40 {
            client.create(&format!("/cp/f{i}")).await.unwrap();
        }
    });
    // Checkpoint every server, then add a little more work.
    for s in cluster.servers() {
        s.checkpoint();
    }
    let client = cluster.client(0);
    cluster.block_on(async move {
        for i in 40..50 {
            client.create(&format!("/cp/f{i}")).await.unwrap();
        }
    });
    cluster.crash_server(0);
    let report = cluster.recover_server(0);
    // Replay is bounded by the post-checkpoint suffix, not the whole history.
    assert!(
        report.wal_records_replayed < 30,
        "checkpoint should bound replay, got {} records",
        report.wal_records_replayed
    );
    let client = cluster.client(0);
    cluster.block_on(async move {
        let dir = client.statdir("/cp").await.unwrap();
        assert_eq!(dir.size, 50);
    });
}
