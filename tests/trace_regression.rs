//! Flight-recorder regression for the statdir size-vs-entries divergence
//! family (ROADMAP item 4): under chaos, a directory's `statdir` size
//! counter occasionally drifts off its listed entry count by ±1, or a
//! deleted entry lingers in the listing.
//!
//! The causal trace makes the drift mechanically checkable: every applied
//! entry-list mutation emits an `EntryApply` event whose `changed` flag
//! records whether the KV store actually changed (an insert that overwrote
//! an existing name, or a delete of an absent name, is a no-op on the entry
//! list), and every applied directory-size update emits a `SizeDelta` event
//! with the delta the counter actually moved. Size counters live with the
//! directory's owner while entry lists are fingerprint-sharded, so the two
//! event streams come from different nodes — the invariant is global:
//!
//! > per directory, Σ SizeDelta.delta == Σ (changed ? (insert ? +1 : −1))
//!
//! Any insert-overwrite or remove-of-absent that still ships a size delta
//! breaks the equality and names the directory, batch and virtual time.

use std::collections::BTreeMap;

use switchfs::chaos::{run_chaos, ChaosConfig, PlanKind};
use switchfs::core::SystemKind;
use switchfs::obs::{EventKind, TraceEvent};

/// Per-directory sums of both event streams:
/// (Σ size deltas, Σ effective entry applies).
fn per_dir_sums(events: &[TraceEvent]) -> BTreeMap<u64, (i64, i64)> {
    let mut sums: BTreeMap<u64, (i64, i64)> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::SizeDelta { dir, delta, .. } => {
                sums.entry(dir).or_default().0 += delta;
            }
            EventKind::EntryApply {
                dir,
                insert,
                changed,
                ..
            } if changed => {
                sums.entry(dir).or_default().1 += if insert { 1 } else { -1 };
            }
            _ => {}
        }
    }
    sums
}

fn assert_ring_complete(report: &switchfs::chaos::ChaosReport) {
    let evicted = report
        .metrics
        .get("obs.events_evicted")
        .map(|m| m.scalar())
        .unwrap_or(0.0);
    assert_eq!(
        evicted, 0.0,
        "the flight-recorder ring evicted events; the per-dir sums would be partial \
         (shrink the workload or grow the ring)"
    );
}

/// Green-path regression: a packet-loss chaos run (no crashes, so no
/// recovery replay bypasses the instrumented apply path, and no migration
/// re-installs state wholesale) must keep every directory's size counter in
/// lockstep with its *effective* entry-list mutations — each `SizeDelta`
/// accounted for one-to-one by `EntryApply` events that actually changed
/// the list.
#[test]
fn size_deltas_match_effective_entry_applies_under_loss() {
    for seed in [1u64, 7] {
        let mut cfg = ChaosConfig::new(SystemKind::SwitchFs, PlanKind::Loss, seed);
        cfg.ops_per_client = 60;
        let report = run_chaos(cfg);
        assert!(
            report.passed(),
            "loss/{} tripped the checker: {:?}",
            seed,
            report.violations
        );
        assert_ring_complete(&report);
        let sums = per_dir_sums(&report.flight_recorder);
        assert!(
            sums.values().any(|(s, e)| *s != 0 || *e != 0),
            "the run must actually exercise the size/entry paths"
        );
        for (dir, (size_sum, entry_sum)) in &sums {
            assert_eq!(
                size_sum, entry_sum,
                "loss/{seed}: dir {dir:#018x} size counter moved {size_sum} \
                 but effective entry applies sum to {entry_sum}"
            );
        }
    }
}

/// Pinning test for the open divergence (ROADMAP item 4): crash/seed-0 at
/// 400 ops/client trips the structural checker with `statdir size 20 != 19
/// listed entries` (a 40-seed × 400-op sweep also reproduces it on crash
/// seeds 3, 12, 34, 35 and 37).
///
/// The flight recorder *localizes* the bug rather than witnessing it: the
/// recorded live streams balance per directory and the ring evicts nothing,
/// yet the checker still trips. The live apply path is therefore exonerated,
/// pinning the drift on the crash/replay path: size deltas are applied at
/// the directory's owner while entry mutations land on fingerprint shards,
/// and a crash that catches one side's WAL tail unflushed replays an
/// asymmetric prefix. That path now emits per-effect `RecoveryEntryApply` /
/// `RecoverySizeDelta` events (each carrying the replayed LSN), so a
/// failure-artifact dump shows exactly which records each side re-drove —
/// the asymmetry is readable off the trace instead of inferred.
///
/// Ignored until the replay path is fixed; run with
/// `cargo test --release --test trace_regression -- --ignored` to check
/// whether the divergence (and the localization) still reproduces.
#[test]
#[ignore = "pins the open statdir divergence (ROADMAP item 4); the checker still trips"]
fn crash_seed_0_statdir_divergence_is_localized_by_the_recorder() {
    let mut cfg = ChaosConfig::new(SystemKind::SwitchFs, PlanKind::Crash, 0);
    cfg.ops_per_client = 400;
    let report = run_chaos(cfg);
    assert!(
        !report.passed(),
        "crash/0 no longer trips the checker — promote this test to a green \
         regression and close ROADMAP item 4"
    );
    assert_ring_complete(&report);
    // Every *recorded* live apply balances: the live delta path is
    // exonerated, which pins the divergence on the recovery replay.
    for (dir, (size_sum, entry_sum)) in &per_dir_sums(&report.flight_recorder) {
        assert_eq!(
            size_sum, entry_sum,
            "crash/0: dir {dir:#018x} shows a recorded imbalance — the live \
             apply path regressed (this is a new bug, not the replay one)"
        );
    }
    // The replay path itself must no longer be a blind spot: the run crashes
    // servers, so the recorder must hold per-effect replay events to read
    // the asymmetric prefix off.
    assert!(
        report
            .flight_recorder
            .iter()
            .any(|e| matches!(e.kind, EventKind::RecoveryEntryApply { .. })),
        "crash/0 recovered servers but recorded no per-effect replay events"
    );
}

/// Green-path regression for the recovery instrumentation itself: a small
/// crash run must leave per-effect replay events in the recorder — every
/// `RecoverySizeDelta` carries a nonzero delta (zero-deltas are filtered at
/// the emission site, mirroring the live path), and replay detail only
/// appears alongside an aggregate `RecoveryReplay` summary that accounts for
/// at least one record.
#[test]
fn recovery_replay_emits_per_effect_events() {
    let mut found_detail = false;
    for seed in [1u64, 2, 4] {
        let cfg = ChaosConfig::new(SystemKind::SwitchFs, PlanKind::Crash, seed);
        let report = run_chaos(cfg);
        assert!(
            report.passed(),
            "crash/{} tripped the checker: {:?}",
            seed,
            report.violations
        );
        let mut replayed_records = 0u64;
        let mut detail = 0usize;
        for e in &report.flight_recorder {
            match e.kind {
                EventKind::RecoveryReplay { records, .. } => replayed_records += records,
                EventKind::RecoveryEntryApply { .. } => detail += 1,
                EventKind::RecoverySizeDelta { delta, .. } => {
                    assert_ne!(delta, 0, "crash/{seed}: zero-delta recovery event recorded");
                    detail += 1;
                }
                _ => {}
            }
        }
        if detail > 0 {
            assert!(
                replayed_records > 0,
                "crash/{seed}: replay detail without an aggregate RecoveryReplay summary"
            );
            found_detail = true;
        }
    }
    assert!(
        found_detail,
        "no crash seed produced per-effect replay events; the instrumentation \
         (or the plan generator's crash coverage) regressed"
    );
}
