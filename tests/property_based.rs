//! Property-based tests on core data structures and invariants.

use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};

use switchfs::kvstore::KvStore;
use switchfs::proto::changelog::{ChangeLogEntry, ChangeOp, CompactedChanges};
use switchfs::proto::{ClientId, DirId, FileType, Fingerprint, OpId, ServerId};
use switchfs::switch::{DirtySet, DirtySetConfig};

#[derive(Debug, Clone)]
enum KvOp {
    Put(u8, u32),
    Delete(u8),
    Get(u8),
}

fn kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        (any::<u8>(), any::<u32>()).prop_map(|(k, v)| KvOp::Put(k, v)),
        any::<u8>().prop_map(KvOp::Delete),
        any::<u8>().prop_map(KvOp::Get),
    ]
}

proptest! {
    /// The ordered KV store behaves exactly like a reference BTreeMap under
    /// arbitrary sequences of puts, deletes and gets.
    #[test]
    fn kvstore_matches_btreemap_model(ops in proptest::collection::vec(kv_op(), 1..200)) {
        let mut kv = KvStore::new();
        let mut model = BTreeMap::new();
        for op in ops {
            match op {
                KvOp::Put(k, v) => {
                    prop_assert_eq!(kv.put(k, v), model.insert(k, v));
                }
                KvOp::Delete(k) => {
                    prop_assert_eq!(kv.delete(&k), model.remove(&k));
                }
                KvOp::Get(k) => {
                    prop_assert_eq!(kv.get(&k), model.get(&k).copied());
                }
            }
            prop_assert_eq!(kv.len(), model.len());
        }
    }

    /// The in-network dirty set agrees with a reference HashSet as long as it
    /// does not overflow: after any interleaving of inserts and removes, the
    /// same fingerprints are reported present.
    #[test]
    fn dirty_set_matches_set_model(ops in proptest::collection::vec((any::<bool>(), 0u64..64), 1..300)) {
        let mut ds = DirtySet::new(DirtySetConfig::tiny(10, 6));
        let mut model: HashSet<u64> = HashSet::new();
        let fps: Vec<Fingerprint> = (0..64u64)
            .map(|i| Fingerprint::of_dir(&DirId::generate(ServerId(1), i), "dir"))
            .collect();
        for (insert, idx) in ops {
            let fp = fps[idx as usize];
            if insert {
                // With 10-way associativity and 64 keys over 64 sets the set
                // must not overflow.
                prop_assert_eq!(ds.insert(fp), switchfs::switch::InsertOutcome::Inserted);
                model.insert(fp.raw());
            } else {
                ds.remove(fp);
                model.remove(&fp.raw());
            }
        }
        for fp in &fps {
            prop_assert_eq!(ds.query(*fp), model.contains(&fp.raw()));
        }
        prop_assert_eq!(ds.occupancy(), model.len());
    }

    /// Change-log compaction preserves the aggregate directory state: the
    /// net size delta, the maximum timestamp, and the final per-name effect
    /// all match an entry-by-entry replay.
    #[test]
    fn compaction_is_equivalent_to_replay(
        names in proptest::collection::vec(0u8..6, 1..60),
        inserts in proptest::collection::vec(any::<bool>(), 1..60),
    ) {
        let n = names.len().min(inserts.len());
        let entries: Vec<ChangeLogEntry> = (0..n)
            .map(|i| ChangeLogEntry {
                entry_id: OpId { client: ClientId(0), seq: i as u64 },
                dir: DirId::ROOT,
                name: format!("n{}", names[i]),
                op: if inserts[i] {
                    ChangeOp::Insert { file_type: FileType::File, mode: 0o644 }
                } else {
                    ChangeOp::Remove
                },
                timestamp: (i as u64) * 10,
                size_delta: if inserts[i] { 1 } else { -1 },
            })
            .collect();
        let compacted = CompactedChanges::from_entries(&entries);

        // Replay model: apply entries one by one.
        let mut size = 0i64;
        let mut max_ts = 0u64;
        let mut present: BTreeMap<String, bool> = BTreeMap::new();
        for e in &entries {
            size += e.size_delta;
            max_ts = max_ts.max(e.timestamp);
            present.insert(e.name.clone(), matches!(e.op, ChangeOp::Insert { .. }));
        }
        prop_assert_eq!(compacted.size_delta, size);
        prop_assert_eq!(compacted.max_timestamp, max_ts);
        // Applying the compacted entry ops to an empty listing produces the
        // same final membership for every name that ends up present.
        let mut listing: BTreeMap<String, bool> = BTreeMap::new();
        for (name, op) in &compacted.entry_ops {
            listing.insert(name.clone(), matches!(op, ChangeOp::Insert { .. }));
        }
        for (name, is_present) in present {
            if is_present {
                prop_assert_eq!(listing.get(&name), Some(&true), "name {} must survive", name);
            } else {
                // Either explicitly removed or cancelled out entirely.
                prop_assert_ne!(listing.get(&name), Some(&true));
            }
        }
    }

    /// Fingerprints always fit in 49 bits and index/tag decomposition is
    /// loss-free with respect to placement: equal fingerprints yield equal
    /// (index, tag) pairs and distinct pairs imply distinct fingerprints.
    #[test]
    fn fingerprint_decomposition_is_consistent(a in any::<u64>(), b in any::<u64>()) {
        let fa = Fingerprint::of_dir(&DirId::generate(ServerId(0), a), "x");
        let fb = Fingerprint::of_dir(&DirId::generate(ServerId(0), b), "x");
        prop_assert!(fa.raw() <= Fingerprint::MASK);
        if fa == fb {
            prop_assert_eq!((fa.index(), fa.tag()), (fb.index(), fb.tag()));
        }
        if (fa.index(), fa.tag()) != (fb.index(), fb.tag()) {
            prop_assert_ne!(fa, fb);
        }
    }

    /// Rc-shared directory listings are copy-on-write: a listing handed to a
    /// reader is never observably mutated by later inserts/removes, and the
    /// store's own view always matches a reference model. Readers taken
    /// between the same two mutations share one allocation.
    #[test]
    fn dir_content_listing_is_never_shared_across_mutation(
        ops in proptest::collection::vec((any::<bool>(), 0u8..12), 1..80),
    ) {
        use std::rc::Rc;
        use switchfs::proto::DirEntry;
        use switchfs::server::DirContent;

        let mut content = DirContent::default();
        let mut model: BTreeMap<String, u16> = BTreeMap::new();
        // Snapshots handed out to "readers", with the model state they saw.
        type Snapshot = (Rc<Vec<DirEntry>>, Vec<(String, u16)>);
        let mut snapshots: Vec<Snapshot> = Vec::new();
        for (i, (insert, name)) in ops.iter().enumerate() {
            let name = format!("f{name}");
            if *insert {
                let mode = i as u16;
                content.insert(DirEntry {
                    name: name.clone(),
                    file_type: FileType::File,
                    mode,
                });
                model.insert(name, mode);
            } else {
                content.remove(&name);
                model.remove(&name);
            }
            let listing = content.listing();
            // Two readers between the same mutations share one allocation.
            prop_assert!(Rc::ptr_eq(&listing, &content.listing()));
            snapshots.push((
                listing,
                model.iter().map(|(n, m)| (n.clone(), *m)).collect(),
            ));
        }
        // No snapshot was retroactively mutated: each still shows exactly
        // the state the reader observed when it was taken.
        for (listing, expected) in &snapshots {
            let got: Vec<(String, u16)> =
                listing.iter().map(|e| (e.name.clone(), e.mode)).collect();
            prop_assert_eq!(&got, expected);
        }
        // And the store's final view matches the model.
        let final_view: Vec<String> = content.iter().map(|e| e.name.clone()).collect();
        let model_view: Vec<String> = model.keys().cloned().collect();
        prop_assert_eq!(final_view, model_view);
    }
}

// ---------------------------------------------------------------------------
// Torn-write crash consistency of the WAL (PR 6)
// ---------------------------------------------------------------------------

proptest! {
    /// Any interleaving of appends and flushes, crashed at any point with
    /// any tear seed, recovers to a checksum-clean LSN-contiguous log that
    /// (a) still contains every flushed record, (b) never resurrects a torn
    /// record, and (c) never reissues a truncated LSN.
    #[test]
    fn torn_tails_always_recover_to_a_clean_flushed_prefix(
        // true = append (with a pseudo-size), false = flush.
        script in proptest::collection::vec(any::<bool>(), 1..120),
        tear_seed in any::<u64>(),
        post_appends in 0usize..8,
    ) {
        use switchfs::kvstore::Wal;

        let mut wal: Wal<u64> = Wal::new();
        for (i, append) in script.iter().enumerate() {
            if *append {
                wal.append_sized(i as u64, 8 + (i as u64 % 64));
            } else {
                wal.flush();
            }
        }
        let flushed = wal.flushed();
        let pre_crash_next = wal.next_lsn();
        let tail = wal.crash_apply(tear_seed);
        prop_assert_eq!(
            tail.kept + tail.torn + tail.dropped,
            wal.records().iter().filter(|r| r.lsn > flushed).count()
                + tail.dropped,
            "every unflushed record drew exactly one fate"
        );
        let report = wal.recover_truncate();
        prop_assert_eq!(report.torn, tail.torn, "every torn record was found and cut");

        // (a) The flushed prefix survived in full, in order.
        let lsns: Vec<u64> = wal.records().iter().map(|r| r.lsn).collect();
        let expect_flushed: Vec<u64> = (1..=flushed).collect();
        prop_assert_eq!(&lsns[..flushed as usize], &expect_flushed[..]);
        // (b) Everything retained verifies and is contiguous.
        prop_assert!(wal.records().iter().all(|r| r.is_intact()));
        prop_assert!(lsns.windows(2).all(|w| w[1] == w[0] + 1));
        // The watermark never points past the retained records.
        prop_assert!(wal.flushed() <= lsns.last().copied().unwrap_or(0).max(flushed));
        // (c) Post-recovery appends never collide with any pre-crash LSN,
        // surviving or truncated, and carry the bumped generation.
        let gen = wal.generation();
        for j in 0..post_appends {
            let lsn = wal.append_sized(1_000 + j as u64, 8);
            prop_assert!(lsn >= pre_crash_next, "LSN {} reused from a torn tail", lsn);
            prop_assert_eq!(wal.records().last().unwrap().generation, gen);
        }
    }
}

// ---------------------------------------------------------------------------
// Epoch-versioned shard map ≡ modulo placement at epoch 0 (PR 4)
// ---------------------------------------------------------------------------

proptest! {
    /// The epoch-0 shard map must be extensionally equal to the historic
    /// `hash % n` placement for every policy, every trait entry point and
    /// every server count — this is what keeps all simulated results
    /// bit-identical after the placement refactor.
    #[test]
    fn epoch0_shard_map_is_extensionally_equal_to_hash_placement(
        servers in 1usize..24,
        raw_hashes in proptest::collection::vec(any::<u64>(), 1..32),
        names in proptest::collection::vec(any::<u16>(), 1..16),
    ) {
        use switchfs::proto::{HashPlacement, MetaKey, PartitionPolicy, Placement, ShardMap};

        for policy in [
            PartitionPolicy::PerFileHash,
            PartitionPolicy::PerDirectoryHash,
            PartitionPolicy::Subtree,
        ] {
            let old = HashPlacement::new(policy, servers);
            let new = ShardMap::initial(policy, servers);
            prop_assert_eq!(new.epoch(), 0);
            prop_assert_eq!(new.num_servers(), old.num_servers());
            for &h in &raw_hashes {
                prop_assert_eq!(new.owner_of_hash(h), old.owner_of_hash(h));
                let id = DirId::generate(ServerId((h % 7) as u32), h);
                prop_assert_eq!(new.dir_owner_by_id(&id), old.dir_owner_by_id(&id));
                let fp = Fingerprint::from_raw(h);
                prop_assert_eq!(new.dir_owner_by_fp(fp), old.dir_owner_by_fp(fp));
            }
            for &n in &names {
                let key = MetaKey::new(DirId::ROOT, format!("f{n}"));
                prop_assert_eq!(new.file_owner(&key), old.file_owner(&key));
                let nested = MetaKey::new(DirId::generate(ServerId(2), n as u64), format!("g{n}"));
                prop_assert_eq!(new.file_owner(&nested), old.file_owner(&nested));
            }
        }
    }

    /// Rebalancing after a server addition moves at most the newcomer's
    /// fair share (±1) and leaves the map balanced, for any starting size.
    #[test]
    fn rebalance_moves_only_a_fair_share(servers in 1usize..24) {
        use switchfs::proto::{PartitionPolicy, ShardMap};

        let mut map = ShardMap::initial(PartitionPolicy::PerFileHash, servers);
        let newcomer = map.add_server();
        let moves = map.plan_rebalance();
        let shards = map.num_shards();
        let fair = shards / (servers + 1);
        prop_assert!(moves.len() <= fair + 1, "{} moves > fair share {}", moves.len(), fair);
        prop_assert!(moves.iter().all(|(_, _, to)| *to == newcomer));
        for (shard, from, to) in moves {
            prop_assert_eq!(map.owner_of_shard(shard), from);
            map.assign(shard, to);
        }
        for s in 0..=servers {
            let owned = map.shards_owned(ServerId(s as u32));
            prop_assert!(owned >= fair && owned <= fair + 1,
                "server {} owns {} of {} (fair {})", s, owned, shards, fair);
        }
    }
}
