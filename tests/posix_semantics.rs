//! Cross-crate integration tests: POSIX semantics of metadata operations on
//! every evaluated system.
//!
//! These tests exercise the full stack — LibFS path resolution and caching,
//! the simulated network and programmable switch, the metadata servers'
//! asynchronous-update protocol (or the baselines' synchronous protocol) —
//! and check the durable-visibility property of §A.2: an operation issued
//! after another returns must observe its effect.

use switchfs::core::{Cluster, ClusterConfig, SystemKind};
use switchfs::proto::FsError;

fn small_cluster(system: SystemKind) -> Cluster {
    let mut cfg = ClusterConfig::paper_default(system);
    cfg.servers = 4;
    cfg.clients = 2;
    Cluster::new(cfg)
}

fn basic_lifecycle(system: SystemKind) {
    let cluster = small_cluster(system);
    let client = cluster.client(0);
    cluster.block_on(async move {
        // mkdir + create + stat + statdir.
        client.mkdir("/proj").await.expect("mkdir /proj");
        client.mkdir("/proj/src").await.expect("mkdir /proj/src");
        client.create("/proj/src/main.rs").await.expect("create");
        client.create("/proj/src/lib.rs").await.expect("create");
        let f = client.stat("/proj/src/main.rs").await.expect("stat");
        assert!(!f.is_dir());
        // The directory read sees both asynchronous updates (durable
        // visibility: the creates returned before the statdir was issued).
        let d = client.statdir("/proj/src").await.expect("statdir");
        assert!(d.is_dir());
        assert_eq!(d.size, 2, "statdir must observe both creates");
        let (_, entries) = client.readdir("/proj/src").await.expect("readdir");
        let mut names: Vec<_> = entries.iter().map(|e| e.name.clone()).collect();
        names.sort();
        assert_eq!(names, vec!["lib.rs", "main.rs"]);
        // delete + statdir again.
        client.delete("/proj/src/lib.rs").await.expect("delete");
        let d = client.statdir("/proj/src").await.expect("statdir");
        assert_eq!(d.size, 1, "statdir must observe the delete");
        // Errors.
        assert_eq!(
            client.create("/proj/src/main.rs").await.unwrap_err(),
            FsError::AlreadyExists
        );
        assert_eq!(
            client.stat("/proj/src/nope.rs").await.unwrap_err(),
            FsError::NotFound
        );
        assert_eq!(
            client.rmdir("/proj/src").await.unwrap_err(),
            FsError::NotEmpty
        );
        client
            .delete("/proj/src/main.rs")
            .await
            .expect("delete main.rs");
        client
            .rmdir("/proj/src")
            .await
            .expect("rmdir now-empty dir");
        assert_eq!(
            client.statdir("/proj/src").await.unwrap_err(),
            FsError::NotFound,
            "a removed directory must not be readable"
        );
    });
}

#[test]
fn switchfs_basic_lifecycle() {
    basic_lifecycle(SystemKind::SwitchFs);
}

#[test]
fn emulated_cfs_basic_lifecycle() {
    basic_lifecycle(SystemKind::EmulatedCfs);
}

#[test]
fn emulated_infinifs_basic_lifecycle() {
    basic_lifecycle(SystemKind::EmulatedInfiniFs);
}

#[test]
fn cephfs_like_basic_lifecycle() {
    basic_lifecycle(SystemKind::CephFsLike);
}

#[test]
fn indexfs_like_basic_lifecycle() {
    basic_lifecycle(SystemKind::IndexFsLike);
}

#[test]
fn concurrent_creates_are_all_visible_to_a_later_readdir() {
    let cluster = small_cluster(SystemKind::SwitchFs);
    let clients: Vec<_> = (0..2).map(|i| cluster.client(i)).collect();
    let setup = cluster.client(0);
    cluster.block_on(async move {
        setup.mkdir("/shared").await.unwrap();
    });
    // Two clients create files concurrently in the same directory.
    let c0 = clients[0].clone();
    let c1 = clients[1].clone();
    cluster.block_on(async move {
        let paths0: Vec<String> = (0..20).map(|i| format!("/shared/a{i}")).collect();
        let paths1: Vec<String> = (0..20).map(|i| format!("/shared/b{i}")).collect();
        let mut in_flight = Vec::new();
        for p in &paths0 {
            in_flight.push(c0.create(p));
        }
        for p in &paths1 {
            in_flight.push(c1.create(p));
        }
        for f in in_flight {
            f.await.unwrap();
        }
    });
    let reader = cluster.client(1);
    cluster.block_on(async move {
        let (attrs, entries) = reader.readdir("/shared").await.unwrap();
        assert_eq!(entries.len(), 40, "all concurrent creates must be visible");
        assert_eq!(attrs.size, 40);
    });
}

#[test]
fn rename_moves_a_file_across_directories() {
    let cluster = small_cluster(SystemKind::SwitchFs);
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/a").await.unwrap();
        client.mkdir("/b").await.unwrap();
        client.create("/a/x").await.unwrap();
        client.rename("/a/x", "/b/y").await.unwrap();
        assert_eq!(client.stat("/a/x").await.unwrap_err(), FsError::NotFound);
        client.stat("/b/y").await.expect("renamed file must exist");
    });
}

#[test]
fn rename_moves_a_directory_with_its_children() {
    // Directory inodes live with their fingerprint group, not their per-file
    // hash, so directory rename exercises coordinator routing and content
    // migration (§5.2: rename is fully synchronous and covers up to four
    // inodes).
    for system in [
        SystemKind::SwitchFs,
        SystemKind::EmulatedCfs,
        SystemKind::EmulatedInfiniFs,
    ] {
        let cluster = small_cluster(system);
        let client = cluster.client(0);
        cluster.block_on(async move {
            client.mkdir("/a").await.unwrap();
            client.mkdir("/b").await.unwrap();
            client.mkdir("/a/sub").await.unwrap();
            client.create("/a/sub/x").await.unwrap();
            client.create("/a/sub/y").await.unwrap();
            client.rename("/a/sub", "/b/moved").await.unwrap();
            // Immediately visible on every replica: old path gone, new path
            // lists both children, parents' sizes updated.
            assert_eq!(
                client.statdir("/a/sub").await.unwrap_err(),
                FsError::NotFound,
                "{system}: old directory path must be gone"
            );
            let moved = client.statdir("/b/moved").await.unwrap();
            assert_eq!(moved.size, 2, "{system}: children must move along");
            let (_, entries) = client.readdir("/b/moved").await.unwrap();
            assert_eq!(entries.len(), 2, "{system}: entry list must migrate");
            client.stat("/b/moved/x").await.unwrap();
            assert_eq!(client.statdir("/a").await.unwrap().size, 0);
            assert_eq!(client.statdir("/b").await.unwrap().size, 1);
        });
    }
}

#[test]
fn stale_client_caches_are_invalidated_lazily_after_rmdir() {
    let cluster = small_cluster(SystemKind::SwitchFs);
    let creator = cluster.client(0);
    let other = cluster.client(1);
    cluster.block_on(async move {
        creator.mkdir("/tmpdir").await.unwrap();
        creator.create("/tmpdir/file").await.unwrap();
        // The second client resolves the directory (fills its cache).
        other.stat("/tmpdir/file").await.unwrap();
        // The first client empties and removes the directory.
        creator.delete("/tmpdir/file").await.unwrap();
        creator.rmdir("/tmpdir").await.unwrap();
        // The second client's cached entry for /tmpdir is now stale; the
        // invalidation-list check must make the operation fail with ENOENT
        // after the lazy invalidation retry, not succeed against stale state.
        let err = other.create("/tmpdir/new").await.unwrap_err();
        assert_eq!(err, FsError::NotFound);
    });
}

#[test]
fn dirty_set_overflow_falls_back_to_synchronous_updates() {
    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 1;
    cfg.force_dirty_overflow = true;
    let cluster = Cluster::new(cfg);
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/d").await.unwrap();
        for i in 0..10 {
            client.create(&format!("/d/f{i}")).await.unwrap();
        }
        let d = client.statdir("/d").await.unwrap();
        assert_eq!(d.size, 10);
    });
    let stats = cluster.total_server_stats();
    assert!(
        stats.fallback_syncs > 0,
        "forced overflow must exercise the synchronous fallback path"
    );
}

#[test]
fn lossy_network_still_completes_operations() {
    use switchfs::simnet::{NetFaults, SimDuration};
    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 1;
    // 2% loss, 2% duplication, light reordering jitter (§5.4.1).
    cfg.net_faults = NetFaults::lossy(0.02, 0.02, SimDuration::micros(2));
    let cluster = Cluster::new(cfg);
    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/lossy").await.unwrap();
        for i in 0..50 {
            client.create(&format!("/lossy/f{i}")).await.unwrap();
        }
        let d = client.statdir("/lossy").await.unwrap();
        assert_eq!(
            d.size, 50,
            "loss/duplication must not lose or double-apply updates"
        );
    });
}
