//! Compare all five systems on a skewed shared-directory workload: the
//! headline scenario of the paper (create-heavy traffic concentrated in one
//! directory), printing throughput and mean latency per system.
//!
//! Run with: `cargo run --release --example compare_baselines`

use switchfs::core::{Cluster, ClusterConfig, SystemKind};
use switchfs::workloads::{NamespaceSpec, OpKind, WorkloadBuilder};

fn main() {
    println!("file create in one shared directory, 8 servers, 128 in-flight requests");
    println!(
        "{:<20} {:>14} {:>16}",
        "system", "Kops/s", "mean latency (us)"
    );
    for system in SystemKind::all() {
        let mut cfg = ClusterConfig::paper_default(system);
        cfg.servers = 8;
        cfg.clients = 4;
        let mut cluster = Cluster::new(cfg);
        let ns = NamespaceSpec::single_large_dir(0);
        cluster.preload_dir(&ns.dir_path(0));
        let mut builder = WorkloadBuilder::new(ns, 11);
        let items = builder.uniform(OpKind::Create, 3_000);
        let report = cluster.run_workload(items, 128, None);
        println!(
            "{:<20} {:>14.1} {:>16.1}",
            system.label(),
            report.kops,
            report.mean_latency_us()
        );
    }
}
