//! Quickstart: build a small SwitchFS deployment, run a few metadata
//! operations, and print what the in-network dirty set did.
//!
//! Run with: `cargo run --example quickstart`

use switchfs::core::{Cluster, ClusterConfig, SystemKind};

fn main() {
    // 4 metadata servers x 4 cores, 2 clients, one programmable ToR switch.
    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 2;
    let cluster = Cluster::new(cfg);

    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/datasets").await.unwrap();
        client.mkdir("/datasets/imagenet").await.unwrap();
        for i in 0..64 {
            client
                .create(&format!("/datasets/imagenet/img{i:03}.jpg"))
                .await
                .unwrap();
        }
        // The creates above returned after a single round trip each; the
        // parent directory updates are sitting in change-logs. This statdir
        // is the first directory read, so it triggers an aggregation.
        let dir = client.statdir("/datasets/imagenet").await.unwrap();
        println!("/datasets/imagenet holds {} entries", dir.size);
        let (_, entries) = client.readdir("/datasets/imagenet").await.unwrap();
        println!("readdir returned {} names", entries.len());
    });

    let stats = cluster.total_server_stats();
    println!(
        "server totals: {} ops, {} aggregations, {} change-log entries applied, {} merged away by compaction",
        stats.ops_completed, stats.aggregations, stats.entries_applied, stats.entries_compacted_away
    );
    if let Some(sw) = cluster.switch_stats() {
        println!(
            "switch: {} packets, {} dirty-set inserts, {} queries, {} removes",
            sw.packets, sw.inserts, sw.queries, sw.removes
        );
    }
    println!("virtual time elapsed: {}", cluster.sim.now());
}
