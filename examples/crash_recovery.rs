//! Crash recovery walkthrough (§5.4.2, §7.7): create files, crash a metadata
//! server, recover it from its WAL, then reboot the switch and watch every
//! directory converge back to normal state.
//!
//! Run with: `cargo run --example crash_recovery`

use switchfs::core::{Cluster, ClusterConfig, SystemKind};

fn main() {
    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 1;
    let cluster = Cluster::new(cfg);

    let client = cluster.client(0);
    cluster.block_on(async move {
        client.mkdir("/wal-demo").await.unwrap();
        for i in 0..200 {
            client.create(&format!("/wal-demo/f{i}")).await.unwrap();
        }
    });
    println!(
        "before crash: {} inodes on server 0, {} pending change-log entries cluster-wide",
        cluster.servers()[0].inode_count(),
        cluster
            .servers()
            .iter()
            .map(|s| s.pending_changelog_entries())
            .sum::<usize>()
    );

    // Crash and recover metadata server 0.
    cluster.crash_server(0);
    println!("server 0 crashed (volatile state lost, WAL retained)");
    let report = cluster.recover_server(0);
    println!(
        "server 0 recovered: {} WAL records replayed, {} inodes rebuilt, {} change-log entries rebuilt, {} directories re-aggregated, {:.2} ms of virtual time",
        report.wal_records_replayed,
        report.inodes_recovered,
        report.changelog_entries_recovered,
        report.directories_aggregated,
        report.duration_ns as f64 / 1e6
    );

    // Reboot the switch: all in-network state is lost; every server
    // aggregates the directories it owns.
    let took = cluster.crash_and_recover_switch();
    println!("switch rebooted and dirty set reconciled in {took}");

    // The namespace is intact.
    let client = cluster.client(0);
    cluster.block_on(async move {
        let dir = client.statdir("/wal-demo").await.unwrap();
        assert_eq!(dir.size, 200);
        println!(
            "/wal-demo still holds {} entries after both failures",
            dir.size
        );
    });
}
