//! Crash recovery walkthrough (§5.4.2, §7.7), driven by the chaos
//! subsystem: a seed-generated fault plan crashes and recovers metadata
//! servers (and reboots the switch) underneath a live workload, the history
//! checker verifies the namespace against a sequential model, and the same
//! seed + plan replays bit-identically.
//!
//! Run with: `cargo run --example crash_recovery`

use switchfs::chaos::{verify_replay, ChaosConfig, PlanKind};
use switchfs::core::SystemKind;

fn main() {
    let cfg = ChaosConfig::new(SystemKind::SwitchFs, PlanKind::Crash, 42);
    println!(
        "chaos run: {} / {} plan / seed {}, {} servers, {} clients x {} ops",
        cfg.system,
        cfg.kind.label(),
        cfg.seed,
        cfg.servers,
        cfg.clients,
        cfg.ops_per_client
    );

    let (report, replay_ok) = verify_replay(cfg);

    println!("\nfault plan (serializable, one-command reproducible):");
    println!("  {}", report.plan.to_json());

    println!("\nworkload under faults:");
    println!(
        "  {} ops recorded: {} succeeded, {} ambiguous (timed out mid-fault)",
        report.history.events.len(),
        report.history.ok(),
        report.history.ambiguous()
    );

    println!("\nrecoveries driven by the nemesis:");
    for (server, r) in &report.recoveries {
        println!(
            "  server {server}: {} WAL records replayed, {} inodes rebuilt, {} change-log \
             entries rebuilt, {} dirs re-aggregated, {} in-doubt txns ({} committed, {} aborted), \
             {:.2} ms of virtual time",
            r.wal_records_replayed,
            r.inodes_recovered,
            r.changelog_entries_recovered,
            r.directories_aggregated,
            r.prepared_txns_recovered,
            r.txn_commits_recovered,
            r.txn_aborts_recovered,
            r.duration_ns as f64 / 1e6
        );
    }
    if report.switch_reboots > 0 {
        println!(
            "  plus {} switch reboot(s) reconciled",
            report.switch_reboots
        );
    }

    println!("\nconsistency checker:");
    assert!(
        report.passed(),
        "violations found: {:#?}",
        report.violations
    );
    println!("  no violations — the namespace converged after every fault");
    assert!(replay_ok, "same seed + plan must replay bit-identically");
    println!(
        "  replay verified: digest {:016x} reproduced on a second run",
        report.digest
    );
}
