//! A skewed create-burst workload (the scenario of Fig. 17): bursts of file
//! creations land in one directory at a time, comparing SwitchFS against the
//! two emulated baselines.
//!
//! Run with: `cargo run --release --example skewed_create_burst`

use switchfs::core::{Cluster, ClusterConfig, SystemKind};
use switchfs::workloads::{NamespaceSpec, WorkloadBuilder};

fn run(system: SystemKind, burst: usize) -> f64 {
    let mut cfg = ClusterConfig::paper_default(system);
    cfg.servers = 8;
    cfg.clients = 4;
    let mut cluster = Cluster::new(cfg);
    let ns = NamespaceSpec::multi_dir(64, 0);
    for d in ns.all_dirs() {
        cluster.preload_dir(&d);
    }
    let mut builder = WorkloadBuilder::new(ns, 7);
    let items = builder.create_bursts(burst, 2_000);
    let report = cluster.run_workload(items, 32, None);
    report.kops
}

fn main() {
    println!("create throughput under operation bursts (32 in-flight requests)");
    println!(
        "{:>10} {:>18} {:>18} {:>18}",
        "burst", "SwitchFS", "E-InfiniFS", "E-CFS"
    );
    for burst in [10usize, 50, 200, 1000] {
        let s = run(SystemKind::SwitchFs, burst);
        let i = run(SystemKind::EmulatedInfiniFs, burst);
        let c = run(SystemKind::EmulatedCfs, burst);
        println!("{burst:>10} {s:>15.1} Kops {i:>15.1} Kops {c:>15.1} Kops");
    }
}
