//! An ordered in-memory key-value store with a write-ahead log.
//!
//! This crate is the substitute for the RocksDB instance each SwitchFS
//! metadata server uses for its metadata (§4.2, §7.1: "RocksDB in
//! asynchronous write mode"). It provides:
//!
//! * [`KvStore`] — an ordered map with point operations, prefix scans and
//!   write batches, plus operation counters used to attribute storage-layer
//!   costs in the simulation.
//! * [`Wal`] — a write-ahead log with commit records, per-record "applied"
//!   marks (used by the asynchronous-update protocol to distinguish
//!   change-log entries that have already reached the directory owner,
//!   §5.4.2) and replay support.
//! * [`Checkpoint`] — an optional snapshot slot that bounds replay work, the
//!   paper's suggested extension for reducing recovery time (§7.7).
//!
//! "Persistence" in a simulation means surviving a simulated crash: the WAL
//! and checkpoint objects are kept by the cluster harness across a server's
//! crash/restart cycle, while the [`KvStore`] and all other volatile server
//! state are dropped and rebuilt by recovery.

pub mod store;
pub mod wal;

pub use store::{KvStats, KvStore, WriteBatch};
pub use wal::{Checkpoint, TornTail, TornTailReport, Wal, WalRecord};
