//! The write-ahead log and checkpoint slot.
//!
//! SwitchFS keeps its change-log, invalidation list and key-value store in
//! DRAM for performance and relies on a per-server WAL for durability
//! (§5.2, §5.4.2). The WAL records the sequence of committed operations and
//! marks, per record, whether the corresponding asynchronous update has been
//! applied on the remote directory owner — recovery replays only what is
//! needed.

/// A single durable record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord<R> {
    /// Log sequence number, strictly increasing.
    pub lsn: u64,
    /// The logged payload (operation, change-log entry, …).
    pub payload: R,
    /// Whether the asynchronous side effect of this record has been applied
    /// remotely (and therefore does not need to be re-driven by recovery).
    pub applied: bool,
}

/// An append-only write-ahead log.
///
/// The log survives simulated crashes: the cluster harness keeps it alive
/// while the server's volatile state is dropped and rebuilt.
#[derive(Debug, Clone)]
pub struct Wal<R> {
    records: Vec<WalRecord<R>>,
    next_lsn: u64,
    /// Number of bytes the log would occupy on persistent media, estimated
    /// by the caller via [`Wal::append_sized`]; used for reporting only.
    bytes: u64,
    appends: u64,
}

impl<R> Default for Wal<R> {
    fn default() -> Self {
        Wal {
            records: Vec::new(),
            next_lsn: 1,
            bytes: 0,
            appends: 0,
        }
    }
}

impl<R: Clone> Wal<R> {
    /// Creates an empty log starting at LSN 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record and returns its LSN.
    pub fn append(&mut self, payload: R) -> u64 {
        self.append_sized(payload, 0)
    }

    /// Appends a record with an estimated on-media size in bytes.
    pub fn append_sized(&mut self, payload: R, size: u64) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.records.push(WalRecord {
            lsn,
            payload,
            applied: false,
        });
        self.bytes += size;
        self.appends += 1;
        lsn
    }

    /// Marks a record as applied. Returns `false` if the LSN does not exist
    /// (e.g. already truncated by a checkpoint).
    pub fn mark_applied(&mut self, lsn: u64) -> bool {
        match self.records.binary_search_by_key(&lsn, |r| r.lsn) {
            Ok(idx) => {
                self.records[idx].applied = true;
                true
            }
            Err(_) => false,
        }
    }

    /// Marks every record matching the predicate as applied and returns how
    /// many records changed state.
    pub fn mark_applied_where(&mut self, mut pred: impl FnMut(&R) -> bool) -> usize {
        let mut n = 0;
        for r in &mut self.records {
            if !r.applied && pred(&r.payload) {
                r.applied = true;
                n += 1;
            }
        }
        n
    }

    /// All records in LSN order.
    pub fn records(&self) -> &[WalRecord<R>] {
        &self.records
    }

    /// Records not yet marked applied, in LSN order. These are what recovery
    /// must re-drive.
    pub fn unapplied(&self) -> impl Iterator<Item = &WalRecord<R>> {
        self.records.iter().filter(|r| !r.applied)
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total appends performed over the log's lifetime.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Estimated persistent size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Drops every record with `lsn <= up_to`. Used after a checkpoint: the
    /// checkpointed state already reflects those records.
    pub fn truncate_through(&mut self, up_to: u64) -> usize {
        let before = self.records.len();
        self.records.retain(|r| r.lsn > up_to);
        before - self.records.len()
    }
}

/// A snapshot slot bounding WAL replay (§7.7 notes recovery time "could be
/// substantially reduced through the use of checkpointing").
#[derive(Debug, Clone, Default)]
pub struct Checkpoint<S> {
    state: Option<(u64, S)>,
}

impl<S: Clone> Checkpoint<S> {
    /// Creates an empty checkpoint slot.
    pub fn new() -> Self {
        Checkpoint { state: None }
    }

    /// Stores a snapshot of the state as of `lsn`.
    pub fn store(&mut self, lsn: u64, state: S) {
        self.state = Some((lsn, state));
    }

    /// Returns the checkpointed state and its LSN, if any.
    pub fn load(&self) -> Option<(u64, S)> {
        self.state.clone()
    }

    /// The LSN of the stored checkpoint, if any.
    pub fn lsn(&self) -> Option<u64> {
        self.state.as_ref().map(|(l, _)| *l)
    }

    /// True if a snapshot is stored.
    pub fn is_present(&self) -> bool {
        self.state.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_are_monotonic_from_one() {
        let mut wal = Wal::new();
        assert_eq!(wal.append("a"), 1);
        assert_eq!(wal.append("b"), 2);
        assert_eq!(wal.append("c"), 3);
        assert_eq!(wal.next_lsn(), 4);
        assert_eq!(wal.len(), 3);
        assert_eq!(wal.appends(), 3);
    }

    #[test]
    fn applied_marks_filter_unapplied() {
        let mut wal = Wal::new();
        let l1 = wal.append("x");
        let l2 = wal.append("y");
        assert!(wal.mark_applied(l1));
        assert!(!wal.mark_applied(99));
        let un: Vec<_> = wal.unapplied().map(|r| r.lsn).collect();
        assert_eq!(un, vec![l2]);
    }

    #[test]
    fn mark_applied_where_counts() {
        let mut wal = Wal::new();
        wal.append(1u32);
        wal.append(2);
        wal.append(3);
        assert_eq!(wal.mark_applied_where(|v| *v % 2 == 1), 2);
        assert_eq!(wal.unapplied().count(), 1);
        // Already-applied records are not re-counted.
        assert_eq!(wal.mark_applied_where(|_| true), 1);
    }

    #[test]
    fn truncate_through_drops_prefix() {
        let mut wal = Wal::new();
        for i in 0..10u32 {
            wal.append(i);
        }
        assert_eq!(wal.truncate_through(4), 4);
        assert_eq!(wal.len(), 6);
        assert_eq!(wal.records()[0].lsn, 5);
        // LSNs keep increasing after truncation.
        assert_eq!(wal.append(99), 11);
    }

    #[test]
    fn sized_appends_accumulate_bytes() {
        let mut wal = Wal::new();
        wal.append_sized("a", 100);
        wal.append_sized("b", 50);
        assert_eq!(wal.bytes(), 150);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut cp = Checkpoint::new();
        assert!(!cp.is_present());
        assert_eq!(cp.load(), None);
        cp.store(42, vec![1, 2, 3]);
        assert_eq!(cp.lsn(), Some(42));
        assert_eq!(cp.load(), Some((42, vec![1, 2, 3])));
    }
}
