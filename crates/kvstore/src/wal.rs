//! The write-ahead log and checkpoint slot.
//!
//! SwitchFS keeps its change-log, invalidation list and key-value store in
//! DRAM for performance and relies on a per-server WAL for durability
//! (§5.2, §5.4.2). The WAL records the sequence of committed operations and
//! marks, per record, whether the corresponding asynchronous update has been
//! applied on the remote directory owner — recovery replays only what is
//! needed.
//!
//! # Persistence boundary
//!
//! Real devices do not persist appends atomically: a record handed to the
//! log is *volatile* until a [`Wal::flush`] advances the durable watermark
//! past it (group commit). A crash snapshots only the flushed prefix
//! faithfully; the unflushed suffix is at the mercy of the device — records
//! may survive intact, arrive torn (partially written, detected by a
//! per-record checksum), or be dropped entirely (never hit the platter, or
//! reordered behind a write that did). [`Wal::crash_apply`] models exactly
//! that, and [`Wal::recover_truncate`] is the recovery-side counterpart: it
//! keeps the longest checksum-clean, LSN-contiguous prefix and truncates the
//! rest. LSNs of truncated records are never reissued — `next_lsn` is the
//! high-water mark over everything ever appended, so a torn LSN cannot
//! collide with id-based duplicate suppression after recovery — and each
//! recovery bumps a generation stamp so post-crash records are
//! distinguishable from any pre-crash survivor.

/// splitmix64: the per-record fault draw for [`Wal::crash_apply`] and the
/// modeled record checksum. Local so the kvstore crate stays dependency-free.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The modeled on-media checksum of a record: a mix over the header fields
/// the simulation tracks (LSN, generation, size). The payload lives in
/// simulator memory and cannot itself be bit-flipped, so "torn" is modeled
/// as a checksum that no longer matches — which is exactly what recovery
/// observes on real media.
fn record_checksum(lsn: u64, generation: u64, size: u64) -> u64 {
    mix64(lsn ^ mix64(generation) ^ mix64(size ^ 0x5741_4c43_4b53_554d))
}

/// A single log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord<R> {
    /// Log sequence number, strictly increasing.
    pub lsn: u64,
    /// The logged payload (operation, change-log entry, …).
    pub payload: R,
    /// Whether the asynchronous side effect of this record has been applied
    /// remotely (and therefore does not need to be re-driven by recovery).
    pub applied: bool,
    /// Generation stamp: which crash epoch appended this record. Bumped by
    /// every [`Wal::recover_truncate`], so a record appended after a
    /// recovery can never be mistaken for a survivor of the previous life.
    pub generation: u64,
    /// Estimated on-media size in bytes, supplied by the caller at append
    /// time; feeds [`Wal::bytes`] and the recovery-work byte accounting.
    pub size: u64,
    /// The modeled on-media checksum. Matches [`record_checksum`] for an
    /// intact record; a torn write leaves a mismatch for recovery to find.
    checksum: u64,
}

impl<R> WalRecord<R> {
    /// True when the record's checksum verifies (the write completed).
    pub fn is_intact(&self) -> bool {
        self.checksum == record_checksum(self.lsn, self.generation, self.size)
    }
}

/// What a torn-tail crash did to the unflushed suffix
/// ([`Wal::crash_apply`]), for fault-injection logs and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TornTail {
    /// Unflushed records that survived intact.
    pub kept: usize,
    /// Unflushed records left torn (checksum mismatch).
    pub torn: usize,
    /// Unflushed records dropped entirely (lost or reordered away).
    pub dropped: usize,
}

/// What recovery found and removed ([`Wal::recover_truncate`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TornTailReport {
    /// Records truncated from the tail (torn, or unreachable past a gap a
    /// dropped record left — a reordered write past a hole cannot be
    /// trusted).
    pub truncated: usize,
    /// How many of the truncated records failed their checksum.
    pub torn: usize,
}

/// An append-only write-ahead log with an explicit durable watermark.
///
/// The log survives simulated crashes: the cluster harness keeps it alive
/// while the server's volatile state is dropped and rebuilt.
#[derive(Debug, Clone)]
pub struct Wal<R> {
    records: Vec<WalRecord<R>>,
    next_lsn: u64,
    /// Highest LSN known durable: records at or below survive any crash
    /// bit-exactly; records above are volatile until the next [`Wal::flush`].
    flushed: u64,
    /// Current crash epoch, stamped into appended records.
    generation: u64,
    /// Number of bytes the log would occupy on persistent media, estimated
    /// by the caller via [`Wal::append_sized`]; used for reporting only.
    bytes: u64,
    appends: u64,
    /// Bytes the durable watermark has advanced over — the flushed
    /// counterpart of [`Wal::bytes`]. The gap between the two is the
    /// crash-vulnerable suffix; after recovery the survivors' bytes are
    /// credited here (whatever survived a crash is by definition on media).
    flushed_bytes: u64,
}

impl<R> Default for Wal<R> {
    fn default() -> Self {
        Wal {
            records: Vec::new(),
            next_lsn: 1,
            flushed: 0,
            generation: 1,
            bytes: 0,
            appends: 0,
            flushed_bytes: 0,
        }
    }
}

impl<R: Clone> Wal<R> {
    /// Creates an empty log starting at LSN 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record with its estimated on-media size in bytes and
    /// returns its LSN. The record is *volatile* until a later
    /// [`Wal::flush`] advances the durable watermark past it.
    ///
    /// There is deliberately no size-less variant: an earlier `append`
    /// defaulted the size to 0, which silently under-reported
    /// [`Wal::bytes`] and the recovery-work numbers derived from it.
    pub fn append_sized(&mut self, payload: R, size: u64) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.records.push(WalRecord {
            lsn,
            payload,
            applied: false,
            generation: self.generation,
            size,
            checksum: record_checksum(lsn, self.generation, size),
        });
        self.bytes += size;
        self.appends += 1;
        lsn
    }

    /// Advances the durable watermark over every appended record (group
    /// commit: one flush persists the whole volatile suffix, whichever
    /// operations appended it). Returns how many records became durable.
    pub fn flush(&mut self) -> usize {
        let target = self.next_lsn.saturating_sub(1);
        let mut newly = 0;
        for r in &self.records {
            if r.lsn > self.flushed && r.lsn <= target {
                newly += 1;
                self.flushed_bytes += r.size;
            }
        }
        self.flushed = self.flushed.max(target);
        newly
    }

    /// The durable watermark: the highest LSN guaranteed to survive a crash.
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// Number of appended-but-not-yet-flushed records (the crash-vulnerable
    /// suffix).
    pub fn unflushed_len(&self) -> usize {
        self.records.iter().filter(|r| r.lsn > self.flushed).count()
    }

    /// The current crash epoch (bumped by every [`Wal::recover_truncate`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Applies a torn-write crash to the log: the flushed prefix survives
    /// bit-exactly; each unflushed record is independently kept, torn
    /// (checksum corrupted) or dropped, drawn deterministically from
    /// `tear_seed` so the same seed reproduces the same media state.
    /// Dropping a record mid-suffix models write reordering: a later record
    /// that did reach the platter is unreachable past the hole, and
    /// recovery must not trust it.
    pub fn crash_apply(&mut self, tear_seed: u64) -> TornTail {
        let mut out = TornTail::default();
        let flushed = self.flushed;
        self.records.retain_mut(|r| {
            if r.lsn <= flushed {
                return true;
            }
            match mix64(tear_seed ^ r.lsn.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 4 {
                0 | 1 => {
                    out.kept += 1;
                    true
                }
                2 => {
                    // Torn: the header checksum no longer verifies.
                    r.checksum ^= 0xdead_beef_dead_beef;
                    out.torn += 1;
                    true
                }
                _ => {
                    out.dropped += 1;
                    false
                }
            }
        });
        out
    }

    /// Recovery-side torn-tail detection: keeps the longest prefix whose
    /// records all verify their checksum and are LSN-contiguous, truncates
    /// everything after the first torn record or gap, advances the durable
    /// watermark to the survivor (whatever survived a crash is by
    /// definition on media) and bumps the generation stamp. `next_lsn` is
    /// deliberately left at its high-water mark: a truncated LSN is never
    /// reissued, so it can never collide with id-based duplicate
    /// suppression built from the replayed log.
    pub fn recover_truncate(&mut self) -> TornTailReport {
        let mut cut = 0usize;
        let mut prev: Option<u64> = None;
        for r in &self.records {
            let contiguous = prev.is_none_or(|p| r.lsn == p + 1);
            if !contiguous || !r.is_intact() {
                break;
            }
            prev = Some(r.lsn);
            cut += 1;
        }
        let torn = self.records[cut..]
            .iter()
            .filter(|r| !r.is_intact())
            .count();
        let truncated = self.records.len() - cut;
        self.records.truncate(cut);
        if let Some(last) = self.records.last() {
            if last.lsn > self.flushed {
                // Unflushed survivors are on media after all; credit them.
                self.flushed_bytes += self
                    .records
                    .iter()
                    .filter(|r| r.lsn > self.flushed)
                    .map(|r| r.size)
                    .sum::<u64>();
            }
            self.flushed = self.flushed.max(last.lsn);
        }
        self.generation += 1;
        TornTailReport { truncated, torn }
    }

    /// Marks a record as applied. Returns `false` if the LSN does not exist
    /// (e.g. already truncated by a checkpoint).
    pub fn mark_applied(&mut self, lsn: u64) -> bool {
        match self.records.binary_search_by_key(&lsn, |r| r.lsn) {
            Ok(idx) => {
                self.records[idx].applied = true;
                true
            }
            Err(_) => false,
        }
    }

    /// Marks every record matching the predicate as applied and returns how
    /// many records changed state.
    pub fn mark_applied_where(&mut self, mut pred: impl FnMut(&R) -> bool) -> usize {
        let mut n = 0;
        for r in &mut self.records {
            if !r.applied && pred(&r.payload) {
                r.applied = true;
                n += 1;
            }
        }
        n
    }

    /// All records in LSN order.
    pub fn records(&self) -> &[WalRecord<R>] {
        &self.records
    }

    /// Records not yet marked applied, in LSN order. These are what recovery
    /// must re-drive.
    pub fn unapplied(&self) -> impl Iterator<Item = &WalRecord<R>> {
        self.records.iter().filter(|r| !r.applied)
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total appends performed over the log's lifetime.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Estimated persistent size in bytes (lifetime appended).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Bytes the durable watermark has advanced over (lifetime flushed).
    /// Never exceeds [`Wal::bytes`]; the difference is whatever is still
    /// sitting in the crash-vulnerable unflushed suffix.
    pub fn flushed_bytes(&self) -> u64 {
        self.flushed_bytes
    }

    /// The LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Drops every record with `lsn <= up_to`. Used after a checkpoint: the
    /// checkpointed state already reflects those records. The checkpoint is
    /// modeled atomic and durable, so the watermark advances with it.
    pub fn truncate_through(&mut self, up_to: u64) -> usize {
        let before = self.records.len();
        // The checkpoint is modeled atomic and durable, so any unflushed
        // record it covers becomes durable with it.
        self.flushed_bytes += self
            .records
            .iter()
            .filter(|r| r.lsn > self.flushed && r.lsn <= up_to)
            .map(|r| r.size)
            .sum::<u64>();
        self.records.retain(|r| r.lsn > up_to);
        self.flushed = self.flushed.max(up_to);
        before - self.records.len()
    }
}

/// A snapshot slot bounding WAL replay (§7.7 notes recovery time "could be
/// substantially reduced through the use of checkpointing").
#[derive(Debug, Clone, Default)]
pub struct Checkpoint<S> {
    state: Option<(u64, S)>,
}

impl<S: Clone> Checkpoint<S> {
    /// Creates an empty checkpoint slot.
    pub fn new() -> Self {
        Checkpoint { state: None }
    }

    /// Stores a snapshot of the state as of `lsn`.
    pub fn store(&mut self, lsn: u64, state: S) {
        self.state = Some((lsn, state));
    }

    /// Returns the checkpointed state and its LSN, if any.
    pub fn load(&self) -> Option<(u64, S)> {
        self.state.clone()
    }

    /// The LSN of the stored checkpoint, if any.
    pub fn lsn(&self) -> Option<u64> {
        self.state.as_ref().map(|(l, _)| *l)
    }

    /// True if a snapshot is stored.
    pub fn is_present(&self) -> bool {
        self.state.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_are_monotonic_from_one() {
        let mut wal = Wal::new();
        assert_eq!(wal.append_sized("a", 8), 1);
        assert_eq!(wal.append_sized("b", 8), 2);
        assert_eq!(wal.append_sized("c", 8), 3);
        assert_eq!(wal.next_lsn(), 4);
        assert_eq!(wal.len(), 3);
        assert_eq!(wal.appends(), 3);
    }

    #[test]
    fn flushed_bytes_track_the_durable_watermark() {
        let mut wal = Wal::new();
        wal.append_sized("a", 100);
        wal.append_sized("b", 50);
        assert_eq!(wal.bytes(), 150);
        assert_eq!(wal.flushed_bytes(), 0);
        assert_eq!(wal.flush(), 2);
        assert_eq!(wal.flushed_bytes(), 150);
        // Re-flushing with nothing new appended credits nothing twice.
        assert_eq!(wal.flush(), 0);
        assert_eq!(wal.flushed_bytes(), 150);
        wal.append_sized("c", 25);
        assert_eq!(wal.bytes(), 175);
        assert_eq!(wal.flushed_bytes(), 150);
        assert_eq!(wal.flush(), 1);
        assert_eq!(wal.flushed_bytes(), 175);
        assert!(wal.flushed_bytes() <= wal.bytes());
    }

    #[test]
    fn recovery_survivors_are_credited_as_flushed_bytes() {
        let mut wal = Wal::new();
        wal.append_sized("durable", 40);
        wal.flush();
        // An unflushed suffix that happens to survive the crash bit-exactly
        // (tear seed chosen so the single record is kept).
        wal.append_sized("survivor", 60);
        let mut seed = 0;
        let tail = loop {
            let mut probe = wal.clone();
            let tail = probe.crash_apply(seed);
            if tail.kept == 1 {
                wal = probe;
                break tail;
            }
            seed += 1;
        };
        assert_eq!(tail.kept, 1);
        assert_eq!(wal.flushed_bytes(), 40);
        wal.recover_truncate();
        assert_eq!(wal.flushed_bytes(), 100);
        assert_eq!(wal.flushed(), 2);
    }

    #[test]
    fn applied_marks_filter_unapplied() {
        let mut wal = Wal::new();
        let l1 = wal.append_sized("x", 4);
        let l2 = wal.append_sized("y", 4);
        assert!(wal.mark_applied(l1));
        assert!(!wal.mark_applied(99));
        let un: Vec<_> = wal.unapplied().map(|r| r.lsn).collect();
        assert_eq!(un, vec![l2]);
    }

    #[test]
    fn mark_applied_where_counts() {
        let mut wal = Wal::new();
        wal.append_sized(1u32, 4);
        wal.append_sized(2, 4);
        wal.append_sized(3, 4);
        assert_eq!(wal.mark_applied_where(|v| *v % 2 == 1), 2);
        assert_eq!(wal.unapplied().count(), 1);
        // Already-applied records are not re-counted.
        assert_eq!(wal.mark_applied_where(|_| true), 1);
    }

    #[test]
    fn truncate_through_drops_prefix() {
        let mut wal = Wal::new();
        for i in 0..10u32 {
            wal.append_sized(i, 4);
        }
        assert_eq!(wal.truncate_through(4), 4);
        assert_eq!(wal.len(), 6);
        assert_eq!(wal.records()[0].lsn, 5);
        // LSNs keep increasing after truncation.
        assert_eq!(wal.append_sized(99, 4), 11);
    }

    #[test]
    fn sized_appends_accumulate_bytes() {
        let mut wal = Wal::new();
        wal.append_sized("a", 100);
        wal.append_sized("b", 50);
        assert_eq!(wal.bytes(), 150);
    }

    #[test]
    fn flush_advances_the_watermark() {
        let mut wal = Wal::new();
        wal.append_sized("a", 8);
        wal.append_sized("b", 8);
        assert_eq!(wal.flushed(), 0);
        assert_eq!(wal.unflushed_len(), 2);
        assert_eq!(wal.flush(), 2);
        assert_eq!(wal.flushed(), 2);
        assert_eq!(wal.unflushed_len(), 0);
        wal.append_sized("c", 8);
        assert_eq!(wal.unflushed_len(), 1);
        // A second flush only counts the new suffix.
        assert_eq!(wal.flush(), 1);
    }

    #[test]
    fn crash_preserves_the_flushed_prefix_exactly() {
        let mut wal = Wal::new();
        for i in 0..4u32 {
            wal.append_sized(i, 8);
        }
        wal.flush();
        for i in 4..12u32 {
            wal.append_sized(i, 8);
        }
        let tail = wal.crash_apply(7);
        assert_eq!(tail.kept + tail.torn + tail.dropped, 8);
        // The flushed prefix is untouched and intact.
        assert!(wal.records().iter().take(4).all(|r| r.is_intact()));
        assert_eq!(wal.records()[3].lsn, 4);
        let report = wal.recover_truncate();
        assert_eq!(report.torn, tail.torn);
        // Everything surviving recovery verifies and is contiguous.
        assert!(wal.records().iter().all(|r| r.is_intact()));
        assert!(wal.records().windows(2).all(|w| w[1].lsn == w[0].lsn + 1));
        assert!(wal.len() >= 4);
    }

    #[test]
    fn recovery_never_reuses_a_truncated_lsn_and_bumps_generation() {
        let mut wal = Wal::new();
        wal.append_sized(0u32, 8);
        wal.flush();
        for i in 1..8u32 {
            wal.append_sized(i, 8);
        }
        let pre_crash_next = wal.next_lsn();
        let gen_before = wal.generation();
        // A seed whose draws tear at least one record in 7 tries (seed 1
        // does for this LSN range; the assert keeps the test honest).
        let tail = wal.crash_apply(1);
        assert!(tail.torn + tail.dropped > 0, "seed must perturb the tail");
        let report = wal.recover_truncate();
        assert!(report.truncated > 0);
        let new_lsn = wal.append_sized(99, 8);
        assert!(
            new_lsn >= pre_crash_next,
            "a torn LSN must never be reissued ({new_lsn} < {pre_crash_next})"
        );
        assert_eq!(wal.generation(), gen_before + 1);
        assert_eq!(wal.records().last().unwrap().generation, gen_before + 1);
    }

    #[test]
    fn a_gap_invalidates_everything_past_it() {
        let mut wal = Wal::new();
        for i in 0..6u32 {
            wal.append_sized(i, 8);
        }
        wal.flush();
        // Three unflushed records; drop the middle one by hand to model a
        // reordered write (5 and 7 persisted, 6 never did).
        wal.append_sized(6u32, 8); // lsn 7
        wal.append_sized(7u32, 8); // lsn 8
        wal.append_sized(8u32, 8); // lsn 9
        wal.records.retain(|r| r.lsn != 8);
        let report = wal.recover_truncate();
        // LSN 9 is intact but unreachable past the hole at 8.
        assert_eq!(report.truncated, 1);
        assert_eq!(report.torn, 0);
        assert_eq!(wal.records().last().unwrap().lsn, 7);
    }

    #[test]
    fn recover_truncate_is_a_noop_on_a_clean_log() {
        let mut wal = Wal::new();
        for i in 0..5u32 {
            wal.append_sized(i, 8);
        }
        wal.flush();
        let report = wal.recover_truncate();
        assert_eq!(report, TornTailReport::default());
        assert_eq!(wal.len(), 5);
        // Watermark follows the survivors even when the crash predated the
        // last flush bookkeeping.
        assert_eq!(wal.flushed(), 5);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut cp = Checkpoint::new();
        assert!(!cp.is_present());
        assert_eq!(cp.load(), None);
        cp.store(42, vec![1, 2, 3]);
        assert_eq!(cp.lsn(), Some(42));
        assert_eq!(cp.load(), Some((42, vec![1, 2, 3])));
    }
}
