//! The ordered key-value store.

use std::collections::BTreeMap;
use std::ops::Bound;

/// Operation counters, used by the simulation to attribute storage costs and
/// by tests to assert how many mutations an operation performed (change-log
/// compaction is evaluated partly by how many `put()` calls it saves, §5.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Number of `get` calls.
    pub gets: u64,
    /// Number of `put` calls (including those inside batches).
    pub puts: u64,
    /// Number of `delete` calls (including those inside batches).
    pub deletes: u64,
    /// Number of scan calls.
    pub scans: u64,
}

/// An ordered, in-memory key-value store.
///
/// Keys must be `Ord + Clone`; values must be `Clone`. The store is the
/// volatile half of a metadata server's storage: it is rebuilt from the WAL
/// after a crash.
#[derive(Debug, Clone, Default)]
pub struct KvStore<K: Ord + Clone, V: Clone> {
    map: BTreeMap<K, V>,
    stats: KvStats,
}

impl<K: Ord + Clone, V: Clone> KvStore<K, V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore {
            map: BTreeMap::new(),
            stats: KvStats::default(),
        }
    }

    /// Inserts or overwrites a value; returns the previous value if any.
    pub fn put(&mut self, key: K, value: V) -> Option<V> {
        self.stats.puts += 1;
        self.map.insert(key, value)
    }

    /// Looks up a key.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.stats.gets += 1;
        self.map.get(key).cloned()
    }

    /// Looks up a key without recording a read (used by internal bookkeeping
    /// that would not hit storage in a real server).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// True if the key exists.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Deletes a key; returns the previous value if any.
    pub fn delete(&mut self, key: &K) -> Option<V> {
        self.stats.deletes += 1;
        self.map.remove(key)
    }

    /// Applies an atomic batch of mutations.
    pub fn apply_batch(&mut self, batch: WriteBatch<K, V>) {
        for op in batch.ops {
            match op {
                BatchOp::Put(k, v) => {
                    self.put(k, v);
                }
                BatchOp::Delete(k) => {
                    self.delete(&k);
                }
            }
        }
    }

    /// Returns all entries in the half-open key range `[start, end)`, in key
    /// order.
    pub fn range(&mut self, start: &K, end: &K) -> Vec<(K, V)> {
        self.stats.scans += 1;
        self.map
            .range((Bound::Included(start.clone()), Bound::Excluded(end.clone())))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Returns all entries whose key satisfies the predicate `starts_with`,
    /// scanning from `start` (inclusive) while the predicate holds. This is
    /// the prefix-scan pattern used to read a directory's entry list.
    pub fn scan_while(&mut self, start: &K, keep: impl Fn(&K) -> bool) -> Vec<(K, V)> {
        self.stats.scans += 1;
        let mut out = Vec::new();
        for (k, v) in self
            .map
            .range((Bound::Included(start.clone()), Bound::Unbounded))
        {
            if !keep(k) {
                break;
            }
            out.push((k.clone(), v.clone()));
        }
        out
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over every entry in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter()
    }

    /// Accumulated operation counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Resets the operation counters (e.g. between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = KvStats::default();
    }

    /// Drops every entry, keeping the counters.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

enum BatchOp<K, V> {
    Put(K, V),
    Delete(K),
}

/// An ordered batch of mutations applied atomically by
/// [`KvStore::apply_batch`].
pub struct WriteBatch<K, V> {
    ops: Vec<BatchOp<K, V>>,
}

impl<K, V> Default for WriteBatch<K, V> {
    fn default() -> Self {
        WriteBatch { ops: Vec::new() }
    }
}

impl<K, V> WriteBatch<K, V> {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a put.
    pub fn put(&mut self, key: K, value: V) -> &mut Self {
        self.ops.push(BatchOp::Put(key, value));
        self
    }

    /// Appends a delete.
    pub fn delete(&mut self, key: K) -> &mut Self {
        self.ops.push(BatchOp::Delete(key));
        self
    }

    /// Number of mutations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the batch holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut kv = KvStore::new();
        assert!(kv.is_empty());
        assert_eq!(kv.put("a".to_string(), 1), None);
        assert_eq!(kv.put("a".to_string(), 2), Some(1));
        assert_eq!(kv.get(&"a".to_string()), Some(2));
        assert!(kv.contains(&"a".to_string()));
        assert_eq!(kv.delete(&"a".to_string()), Some(2));
        assert_eq!(kv.get(&"a".to_string()), None);
        let s = kv.stats();
        assert_eq!((s.puts, s.gets, s.deletes), (2, 2, 1));
    }

    #[test]
    fn range_and_scan_while() {
        let mut kv = KvStore::new();
        for i in 0..10u32 {
            kv.put(format!("dir/{i:02}"), i);
        }
        kv.put("other/1".to_string(), 99);
        let r = kv.range(&"dir/03".to_string(), &"dir/06".to_string());
        assert_eq!(r.iter().map(|(_, v)| *v).collect::<Vec<_>>(), vec![3, 4, 5]);
        let scanned = kv.scan_while(&"dir/".to_string(), |k| k.starts_with("dir/"));
        assert_eq!(scanned.len(), 10);
    }

    #[test]
    fn batch_is_applied_in_order() {
        let mut kv = KvStore::new();
        let mut batch = WriteBatch::new();
        batch.put("k".to_string(), 1).put("k".to_string(), 2);
        batch.delete("gone".to_string());
        assert_eq!(batch.len(), 3);
        kv.apply_batch(batch);
        assert_eq!(kv.get(&"k".to_string()), Some(2));
    }

    #[test]
    fn peek_does_not_count_as_get() {
        let mut kv = KvStore::new();
        kv.put(1u32, "x");
        assert_eq!(kv.peek(&1), Some(&"x"));
        assert_eq!(kv.stats().gets, 0);
    }

    #[test]
    fn clear_keeps_stats() {
        let mut kv = KvStore::new();
        kv.put(1u32, 1u32);
        kv.clear();
        assert!(kv.is_empty());
        assert_eq!(kv.stats().puts, 1);
        kv.reset_stats();
        assert_eq!(kv.stats().puts, 0);
    }
}
