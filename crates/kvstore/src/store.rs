//! The ordered key-value store.

use std::collections::BTreeMap;
use std::ops::Bound;

/// Operation counters, used by the simulation to attribute storage costs and
/// by tests to assert how many mutations an operation performed (change-log
/// compaction is evaluated partly by how many `put()` calls it saves, §5.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Number of `get` calls.
    pub gets: u64,
    /// Number of `put` calls (including those inside batches).
    pub puts: u64,
    /// Number of `delete` calls (including those inside batches).
    pub deletes: u64,
    /// Number of scan calls.
    pub scans: u64,
}

/// An ordered, in-memory key-value store.
///
/// Keys must be `Ord + Clone`; values must be `Clone`. The store is the
/// volatile half of a metadata server's storage: it is rebuilt from the WAL
/// after a crash.
#[derive(Debug, Clone, Default)]
pub struct KvStore<K: Ord + Clone, V: Clone> {
    map: BTreeMap<K, V>,
    stats: KvStats,
}

impl<K: Ord + Clone, V: Clone> KvStore<K, V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore {
            map: BTreeMap::new(),
            stats: KvStats::default(),
        }
    }

    /// Inserts or overwrites a value; returns the previous value if any.
    pub fn put(&mut self, key: K, value: V) -> Option<V> {
        self.stats.puts += 1;
        self.map.insert(key, value)
    }

    /// Looks up a key.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.stats.gets += 1;
        self.map.get(key).cloned()
    }

    /// Looks up a key, returning a borrowed value. Records the same read as
    /// [`KvStore::get`] but never clones — the zero-copy variant for callers
    /// that only inspect the value (or clone a cheap `Rc` out of it).
    pub fn get_ref(&mut self, key: &K) -> Option<&V> {
        self.stats.gets += 1;
        self.map.get(key)
    }

    /// Mutable access to a value, counted as one read-modify-write (a get
    /// plus a put, like the load/store pair it replaces). Used for in-place
    /// copy-on-write updates of `Rc`-shared values.
    pub fn get_mut_counted(&mut self, key: &K) -> Option<&mut V> {
        self.stats.gets += 1;
        self.stats.puts += 1;
        self.map.get_mut(key)
    }

    /// Mutable access counted as a single read. For logically read-only
    /// accesses that memoize inside the value (e.g. materializing a shared
    /// directory listing): the storage cost is one get, not a write.
    pub fn get_mut_read(&mut self, key: &K) -> Option<&mut V> {
        self.stats.gets += 1;
        self.map.get_mut(key)
    }

    /// Looks up a key without recording a read (used by internal bookkeeping
    /// that would not hit storage in a real server).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// True if the key exists.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Deletes a key; returns the previous value if any.
    pub fn delete(&mut self, key: &K) -> Option<V> {
        self.stats.deletes += 1;
        self.map.remove(key)
    }

    /// Applies an atomic batch of mutations.
    pub fn apply_batch(&mut self, batch: WriteBatch<K, V>) {
        for op in batch.ops {
            match op {
                BatchOp::Put(k, v) => {
                    self.put(k, v);
                }
                BatchOp::Delete(k) => {
                    self.delete(&k);
                }
            }
        }
    }

    /// Returns all entries in the half-open key range `[start, end)`, in key
    /// order.
    pub fn range(&mut self, start: &K, end: &K) -> Vec<(K, V)> {
        self.stats.scans += 1;
        self.map
            .range((Bound::Included(start.clone()), Bound::Excluded(end.clone())))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Returns all entries whose key satisfies the predicate `starts_with`,
    /// scanning from `start` (inclusive) while the predicate holds. This is
    /// the prefix-scan pattern used to read a directory's entry list.
    pub fn scan_while(&mut self, start: &K, keep: impl Fn(&K) -> bool) -> Vec<(K, V)> {
        self.stats.scans += 1;
        let mut out = Vec::new();
        for (k, v) in self
            .map
            .range((Bound::Included(start.clone()), Bound::Unbounded))
        {
            if !keep(k) {
                break;
            }
            out.push((k.clone(), v.clone()));
        }
        out
    }

    /// Borrowing variant of [`KvStore::range`]: iterates the half-open key
    /// range `[start, end)` in key order without cloning keys or values.
    /// Records the same single scan.
    pub fn range_iter(&mut self, start: &K, end: &K) -> impl Iterator<Item = (&K, &V)> {
        self.stats.scans += 1;
        self.map
            .range((Bound::Included(start.clone()), Bound::Excluded(end.clone())))
    }

    /// Borrowing variant of [`KvStore::scan_while`]: iterates from `start`
    /// (inclusive) while `keep` holds, without cloning. Records the same
    /// single scan.
    pub fn scan_while_ref(
        &mut self,
        start: &K,
        keep: impl Fn(&K) -> bool,
    ) -> impl Iterator<Item = (&K, &V)> {
        self.stats.scans += 1;
        self.map
            .range((Bound::Included(start.clone()), Bound::Unbounded))
            .take_while(move |(k, _)| keep(k))
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over every entry in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter()
    }

    /// Accumulated operation counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Resets the operation counters (e.g. between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = KvStats::default();
    }

    /// Drops every entry, keeping the counters.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

enum BatchOp<K, V> {
    Put(K, V),
    Delete(K),
}

/// An ordered batch of mutations applied atomically by
/// [`KvStore::apply_batch`].
pub struct WriteBatch<K, V> {
    ops: Vec<BatchOp<K, V>>,
}

impl<K, V> Default for WriteBatch<K, V> {
    fn default() -> Self {
        WriteBatch { ops: Vec::new() }
    }
}

impl<K, V> WriteBatch<K, V> {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a put.
    pub fn put(&mut self, key: K, value: V) -> &mut Self {
        self.ops.push(BatchOp::Put(key, value));
        self
    }

    /// Appends a delete.
    pub fn delete(&mut self, key: K) -> &mut Self {
        self.ops.push(BatchOp::Delete(key));
        self
    }

    /// Number of mutations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the batch holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut kv = KvStore::new();
        assert!(kv.is_empty());
        assert_eq!(kv.put("a".to_string(), 1), None);
        assert_eq!(kv.put("a".to_string(), 2), Some(1));
        assert_eq!(kv.get(&"a".to_string()), Some(2));
        assert!(kv.contains(&"a".to_string()));
        assert_eq!(kv.delete(&"a".to_string()), Some(2));
        assert_eq!(kv.get(&"a".to_string()), None);
        let s = kv.stats();
        assert_eq!((s.puts, s.gets, s.deletes), (2, 2, 1));
    }

    #[test]
    fn range_and_scan_while() {
        let mut kv = KvStore::new();
        for i in 0..10u32 {
            kv.put(format!("dir/{i:02}"), i);
        }
        kv.put("other/1".to_string(), 99);
        let r = kv.range(&"dir/03".to_string(), &"dir/06".to_string());
        assert_eq!(r.iter().map(|(_, v)| *v).collect::<Vec<_>>(), vec![3, 4, 5]);
        let scanned = kv.scan_while(&"dir/".to_string(), |k| k.starts_with("dir/"));
        assert_eq!(scanned.len(), 10);
    }

    #[test]
    fn batch_is_applied_in_order() {
        let mut kv = KvStore::new();
        let mut batch = WriteBatch::new();
        batch.put("k".to_string(), 1).put("k".to_string(), 2);
        batch.delete("gone".to_string());
        assert_eq!(batch.len(), 3);
        kv.apply_batch(batch);
        assert_eq!(kv.get(&"k".to_string()), Some(2));
    }

    #[test]
    fn peek_does_not_count_as_get() {
        let mut kv = KvStore::new();
        kv.put(1u32, "x");
        assert_eq!(kv.peek(&1), Some(&"x"));
        assert_eq!(kv.stats().gets, 0);
    }

    #[test]
    fn borrowed_reads_record_the_same_stats_as_cloning_reads() {
        // Two identical stores; one is read through the cloning APIs, the
        // other through the borrowed/iterator APIs. Cost attribution must
        // not shift: the counters have to match operation for operation.
        let mut cloning = KvStore::new();
        let mut borrowed = KvStore::new();
        for i in 0..10u32 {
            cloning.put(format!("dir/{i:02}"), i);
            borrowed.put(format!("dir/{i:02}"), i);
        }

        let got = cloning.get(&"dir/03".to_string());
        let got_ref = borrowed.get_ref(&"dir/03".to_string()).copied();
        assert_eq!(got, got_ref);

        let r = cloning.range(&"dir/02".to_string(), &"dir/05".to_string());
        let r_iter: Vec<u32> = borrowed
            .range_iter(&"dir/02".to_string(), &"dir/05".to_string())
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(r.iter().map(|(_, v)| *v).collect::<Vec<_>>(), r_iter);

        let s = cloning.scan_while(&"dir/".to_string(), |k| k.starts_with("dir/"));
        let s_ref: Vec<u32> = borrowed
            .scan_while_ref(&"dir/".to_string(), |k| k.starts_with("dir/"))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(s.iter().map(|(_, v)| *v).collect::<Vec<_>>(), s_ref);

        assert_eq!(
            cloning.stats(),
            borrowed.stats(),
            "borrowed reads must count exactly like their cloning predecessors"
        );
        assert_eq!(borrowed.stats().gets, 1);
        assert_eq!(borrowed.stats().scans, 2);
    }

    #[test]
    fn get_mut_counted_counts_a_read_modify_write() {
        let mut kv = KvStore::new();
        kv.put(1u32, 10u32);
        if let Some(v) = kv.get_mut_counted(&1) {
            *v += 1;
        }
        assert_eq!(kv.peek(&1), Some(&11));
        let s = kv.stats();
        assert_eq!((s.gets, s.puts), (1, 2), "one get plus one put per RMW");
    }

    #[test]
    fn rc_values_share_without_deep_copies() {
        use std::rc::Rc;
        let mut kv: KvStore<u32, Rc<Vec<u32>>> = KvStore::new();
        kv.put(1, Rc::new(vec![1, 2, 3]));
        let a = Rc::clone(kv.get_ref(&1).unwrap());
        let b = Rc::clone(kv.get_ref(&1).unwrap());
        assert!(Rc::ptr_eq(&a, &b), "readers share one allocation");
        // Copy-on-write: mutating through make_mut leaves readers intact.
        if let Some(v) = kv.get_mut_counted(&1) {
            Rc::make_mut(v).push(4);
        }
        assert_eq!(*a, vec![1, 2, 3], "existing readers see the old list");
        assert_eq!(**kv.peek(&1).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn clear_keeps_stats() {
        let mut kv = KvStore::new();
        kv.put(1u32, 1u32);
        kv.clear();
        assert!(kv.is_empty());
        assert_eq!(kv.stats().puts, 1);
        kv.reset_stats();
        assert_eq!(kv.stats().puts, 0);
    }
}
