//! The five evaluated systems and their configuration presets.

use std::rc::Rc;

use switchfs_client::{BaselineRouter, RequestRouter, SwitchFsRouter};
use switchfs_proto::{PartitionPolicy, ShardMap};
use switchfs_server::{CostModel, UpdateMode};

/// One of the systems evaluated in §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// SwitchFS: asynchronous metadata updates coordinated by the
    /// programmable switch, per-file-hash partitioning, change-log
    /// compaction.
    SwitchFs,
    /// Emulated InfiniFS: synchronous updates with parent/children grouping.
    EmulatedInfiniFs,
    /// Emulated CFS: synchronous updates with parent/children separation.
    EmulatedCfs,
    /// CephFS-like: grouping placement plus a heavyweight software stack.
    CephFsLike,
    /// IndexFS-like: grouping placement plus a moderate software stack.
    IndexFsLike,
}

impl SystemKind {
    /// All five systems in the order the paper's figures list them.
    pub fn all() -> [SystemKind; 5] {
        [
            SystemKind::CephFsLike,
            SystemKind::IndexFsLike,
            SystemKind::EmulatedInfiniFs,
            SystemKind::EmulatedCfs,
            SystemKind::SwitchFs,
        ]
    }

    /// The label used in figures and tables.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::SwitchFs => "SwitchFS",
            SystemKind::EmulatedInfiniFs => "Emulated-InfiniFS",
            SystemKind::EmulatedCfs => "Emulated-CFS",
            SystemKind::CephFsLike => "CephFS",
            SystemKind::IndexFsLike => "IndexFS",
        }
    }

    /// Directory-update mode.
    pub fn update_mode(&self) -> UpdateMode {
        match self {
            SystemKind::SwitchFs => UpdateMode::AsyncCompacted,
            _ => UpdateMode::Synchronous,
        }
    }

    /// Partitioning policy.
    pub fn partition_policy(&self) -> PartitionPolicy {
        match self {
            SystemKind::SwitchFs | SystemKind::EmulatedCfs => PartitionPolicy::PerFileHash,
            SystemKind::EmulatedInfiniFs | SystemKind::IndexFsLike => {
                PartitionPolicy::PerDirectoryHash
            }
            SystemKind::CephFsLike => PartitionPolicy::Subtree,
        }
    }

    /// Calibrated cost model.
    pub fn cost_model(&self) -> CostModel {
        match self {
            SystemKind::CephFsLike => CostModel::cephfs_like(),
            SystemKind::IndexFsLike => CostModel::indexfs_like(),
            _ => CostModel::default(),
        }
    }

    /// True for the system that uses the in-network dirty set.
    pub fn uses_switch(&self) -> bool {
        matches!(self, SystemKind::SwitchFs)
    }

    /// Builds a client-side request router for this system over a private
    /// shard-map snapshot (each client caches its own copy and refreshes it
    /// from `WrongOwner` rejections).
    ///
    /// `dirty_query_in_packet` only matters for SwitchFS: it is true under
    /// in-network tracking and false when a dedicated coordinator or the
    /// owner server tracks directory state (§7.3.3 variants).
    pub fn make_router(&self, map: ShardMap, dirty_query_in_packet: bool) -> Rc<dyn RequestRouter> {
        match self {
            SystemKind::SwitchFs => Rc::new(SwitchFsRouter::new(map, dirty_query_in_packet)),
            SystemKind::EmulatedCfs => Rc::new(SwitchFsRouter::new(map, false)),
            SystemKind::EmulatedInfiniFs | SystemKind::CephFsLike | SystemKind::IndexFsLike => {
                Rc::new(BaselineRouter::new(map))
            }
        }
    }

    /// Convenience for tests: a router over the epoch-0 map of `servers`
    /// servers.
    pub fn make_router_for(
        &self,
        servers: usize,
        dirty_query_in_packet: bool,
    ) -> Rc<dyn RequestRouter> {
        self.make_router(
            ShardMap::initial(self.partition_policy(), servers),
            dirty_query_in_packet,
        )
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_switchfs_is_asynchronous() {
        for s in SystemKind::all() {
            assert_eq!(s.update_mode().is_async(), s == SystemKind::SwitchFs);
            assert_eq!(s.uses_switch(), s == SystemKind::SwitchFs);
        }
    }

    #[test]
    fn policies_match_the_paper_taxonomy() {
        assert_eq!(
            SystemKind::EmulatedCfs.partition_policy(),
            PartitionPolicy::PerFileHash
        );
        assert_eq!(
            SystemKind::EmulatedInfiniFs.partition_policy(),
            PartitionPolicy::PerDirectoryHash
        );
        assert_eq!(
            SystemKind::SwitchFs.partition_policy(),
            PartitionPolicy::PerFileHash
        );
    }

    #[test]
    fn cost_models_rank_cephfs_heaviest() {
        let ceph = SystemKind::CephFsLike.cost_model().request_overhead();
        let index = SystemKind::IndexFsLike.cost_model().request_overhead();
        let fast = SystemKind::SwitchFs.cost_model().request_overhead();
        assert!(ceph > index);
        assert!(index > fast);
        assert_eq!(
            fast,
            SystemKind::EmulatedCfs.cost_model().request_overhead()
        );
    }

    #[test]
    fn routers_have_expected_fanout() {
        for s in SystemKind::all() {
            let r = s.make_router_for(8, true);
            assert_eq!(r.num_servers(), 8);
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            SystemKind::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 5);
        assert_eq!(format!("{}", SystemKind::SwitchFs), "SwitchFS");
    }
}
