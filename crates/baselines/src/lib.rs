//! The emulated baseline distributed filesystems (§7.1).
//!
//! The SwitchFS paper compares against CephFS, IndexFS, and *emulated*
//! versions of InfiniFS and CFS that share SwitchFS's storage and networking
//! framework. This crate takes the same approach: every baseline reuses the
//! `switchfs-server` runtime in **synchronous update mode** and differs only
//! in its partitioning policy, request routing and per-operation software
//! cost:
//!
//! | System | Partitioning | Double-inode ops | Extra software cost |
//! |---|---|---|---|
//! | Emulated-InfiniFS | P/C grouping (per-directory hashing) | `create`/`delete` local, `mkdir`/`rmdir` cross-server | none |
//! | Emulated-CFS | P/C separation (per-file hashing) | all cross-server, serialized at the parent's owner | none |
//! | CephFS-like | P/C grouping (static subtree approximation) | as Emulated-InfiniFS | ~400 µs per op |
//! | IndexFS-like | P/C grouping | as Emulated-InfiniFS | ~120 µs per op |
//!
//! SwitchFS itself (asynchronous updates, in-network dirty set) is configured
//! through the same [`SystemKind`] enum so the evaluation harness can sweep
//! all five systems uniformly.

pub mod systems;

pub use systems::SystemKind;
