//! Request routing: which metadata server an operation is sent to, and
//! whether the packet carries a dirty-set query header.
//!
//! SwitchFS routes by per-file hashing (files) and fingerprint (directories);
//! the baselines route according to their partitioning policy (§2.1). The
//! router is the only client-side difference between the systems.

use std::cell::RefCell;

use switchfs_proto::message::{MetaOp, ParentRef};
use switchfs_proto::{
    DirId, Fingerprint, InodeAttrs, PartitionPolicy, Placement, ServerId, ShardMap,
};

/// Decides the destination server of a request.
pub trait RequestRouter {
    /// The server the request must be sent to.
    ///
    /// `parent` is the resolved parent directory (if any) and `target` the
    /// resolved attributes of the final path component when the router asked
    /// for target resolution.
    fn destination(
        &self,
        op: &MetaOp,
        parent: Option<&ParentRef>,
        target: Option<&InodeAttrs>,
    ) -> ServerId;

    /// True if the packet should carry a dirty-set `query` header for this
    /// operation (only SwitchFS directory reads under in-network tracking).
    fn attach_dirty_query(&self, op: &MetaOp) -> bool;

    /// True if the client must resolve the final path component (learn its
    /// id) before routing this operation.
    fn needs_target_resolution(&self, op: &MetaOp) -> bool;

    /// Number of metadata servers.
    fn num_servers(&self) -> usize;

    /// The epoch of the cached shard map, stamped on every request so a
    /// server with a newer map can reject the routing.
    fn epoch(&self) -> u64;

    /// Installs a newer shard map (carried by a `WrongOwner` rejection).
    /// Older or same-epoch maps are ignored.
    fn install_map(&self, map: &ShardMap);
}

/// A client's cached shard map with the epoch-guarded refresh shared by
/// every router: only strictly newer maps (carried by `WrongOwner`
/// rejections) replace the cache.
#[derive(Debug)]
struct CachedMap(RefCell<ShardMap>);

impl CachedMap {
    fn new(map: ShardMap) -> Self {
        CachedMap(RefCell::new(map))
    }

    fn borrow(&self) -> std::cell::Ref<'_, ShardMap> {
        self.0.borrow()
    }

    fn epoch(&self) -> u64 {
        self.0.borrow().epoch()
    }

    fn num_servers(&self) -> usize {
        self.0.borrow().num_servers()
    }

    fn install(&self, map: &ShardMap) {
        let mut cached = self.0.borrow_mut();
        if map.epoch() > cached.epoch() {
            *cached = map.clone();
        }
    }
}

/// Router for SwitchFS clusters.
#[derive(Debug)]
pub struct SwitchFsRouter {
    /// The client's cached shard map; refreshed from `WrongOwner`
    /// rejections after a live migration moved a shard.
    placement: CachedMap,
    /// Whether directory reads should carry a dirty-set query header (true
    /// for in-network tracking; false when a dedicated coordinator or the
    /// owner server tracks dirty state).
    pub dirty_query_in_packet: bool,
}

impl SwitchFsRouter {
    /// Creates a router over an initial shard-map snapshot.
    pub fn new(map: ShardMap, dirty_query_in_packet: bool) -> Self {
        SwitchFsRouter {
            placement: CachedMap::new(map),
            dirty_query_in_packet,
        }
    }

    /// Convenience: a router over the epoch-0 map of `servers` servers.
    pub fn with_servers(servers: usize, dirty_query_in_packet: bool) -> Self {
        Self::new(
            ShardMap::initial(PartitionPolicy::PerFileHash, servers),
            dirty_query_in_packet,
        )
    }
}

impl RequestRouter for SwitchFsRouter {
    fn destination(
        &self,
        op: &MetaOp,
        _parent: Option<&ParentRef>,
        target: Option<&InodeAttrs>,
    ) -> ServerId {
        let placement = self.placement.borrow();
        let key = op.primary_key();
        match op {
            // Directory-target operations go to the fingerprint group owner.
            MetaOp::Mkdir { .. }
            | MetaOp::Rmdir { .. }
            | MetaOp::Statdir { .. }
            | MetaOp::Readdir { .. }
            | MetaOp::Lookup { .. } => {
                let fp = Fingerprint::of_dir(&key.pid, &key.name);
                placement.dir_owner_by_fp(fp)
            }
            // Rename is coordinated by the source inode's owner: the
            // fingerprint-group owner when the source is a directory
            // (directory inodes live with their fingerprint group, like
            // `mkdir` placed them), the per-file-hash owner otherwise. The
            // source's type comes from the client cache when present; on a
            // cold cache the request defaults to the per-file-hash owner,
            // which re-routes a directory rename to the group owner
            // server-side — the client never probes.
            MetaOp::Rename { src, .. } if target.is_some_and(InodeAttrs::is_dir) => {
                let fp = Fingerprint::of_dir(&src.pid, &src.name);
                placement.dir_owner_by_fp(fp)
            }
            // Everything else is addressed by the file's own key.
            _ => placement.file_owner(key),
        }
    }

    fn attach_dirty_query(&self, op: &MetaOp) -> bool {
        self.dirty_query_in_packet && op.is_dir_read()
    }

    fn needs_target_resolution(&self, _op: &MetaOp) -> bool {
        // Not even for rename: a cold-cache rename routes to the per-file
        // hash owner and is re-routed server-side when the source turns out
        // to be a directory.
        false
    }

    fn num_servers(&self) -> usize {
        self.placement.num_servers()
    }

    fn epoch(&self) -> u64 {
        self.placement.epoch()
    }

    fn install_map(&self, map: &ShardMap) {
        self.placement.install(map);
    }
}

/// Router for the emulated baseline systems.
///
/// * `PerDirectoryHash` (E-InfiniFS, and the CephFS-/IndexFS-like systems):
///   a directory's children and its *content inode* live on the server
///   selected by hashing the directory's id, so sibling operations hit one
///   server (metadata locality, but hotspots under skew).
/// * `PerFileHash` (E-CFS): file inodes are spread by their own key; the
///   parent's content inode lives on the server selected by hashing the
///   parent's key, so double-inode operations need a cross-server update.
#[derive(Debug)]
pub struct BaselineRouter {
    placement: CachedMap,
}

impl BaselineRouter {
    /// Creates a router over an initial shard-map snapshot.
    pub fn new(map: ShardMap) -> Self {
        BaselineRouter {
            placement: CachedMap::new(map),
        }
    }

    /// Convenience: a router over the epoch-0 map of `servers` servers.
    pub fn with_servers(policy: PartitionPolicy, servers: usize) -> Self {
        Self::new(ShardMap::initial(policy, servers))
    }

    /// A snapshot of the cached placement (shared with the baseline
    /// servers).
    pub fn placement(&self) -> ShardMap {
        self.placement.borrow().clone()
    }

    /// Owner of a directory's content inode.
    pub fn dir_content_owner(&self, dir_id: &DirId, dir_key: &switchfs_proto::MetaKey) -> ServerId {
        let placement = self.placement.borrow();
        match placement.policy() {
            PartitionPolicy::PerDirectoryHash | PartitionPolicy::Subtree => {
                placement.dir_owner_by_id(dir_id)
            }
            PartitionPolicy::PerFileHash => {
                let fp = Fingerprint::of_dir(&dir_key.pid, &dir_key.name);
                placement.dir_owner_by_fp(fp)
            }
        }
    }
}

impl RequestRouter for BaselineRouter {
    fn destination(
        &self,
        op: &MetaOp,
        parent: Option<&ParentRef>,
        target: Option<&InodeAttrs>,
    ) -> ServerId {
        let key = op.primary_key();
        match op {
            MetaOp::Statdir { .. } | MetaOp::Readdir { .. } | MetaOp::Rmdir { .. } => {
                // Directory-target operations are served by the directory's
                // content owner; under P/C grouping that requires the
                // directory's id (resolved by the client).
                let dir_id = target.map(|a| a.id).unwrap_or(key.pid);
                self.dir_content_owner(&dir_id, key)
            }
            MetaOp::Lookup { .. } => {
                // Lookups read the child inode, which is colocated with the
                // parent's children.
                self.placement.borrow().file_owner(key)
            }
            _ => {
                let _ = parent;
                self.placement.borrow().file_owner(key)
            }
        }
    }

    fn attach_dirty_query(&self, _op: &MetaOp) -> bool {
        false
    }

    fn needs_target_resolution(&self, op: &MetaOp) -> bool {
        matches!(
            self.placement.borrow().policy(),
            PartitionPolicy::PerDirectoryHash | PartitionPolicy::Subtree
        ) && matches!(
            op,
            MetaOp::Statdir { .. } | MetaOp::Readdir { .. } | MetaOp::Rmdir { .. }
        )
    }

    fn num_servers(&self) -> usize {
        self.placement.num_servers()
    }

    fn epoch(&self) -> u64 {
        self.placement.epoch()
    }

    fn install_map(&self, map: &ShardMap) {
        self.placement.install(map);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchfs_proto::{MetaKey, Permissions};

    fn create_op(name: &str) -> MetaOp {
        MetaOp::Create {
            key: MetaKey::new(DirId::ROOT, name),
            perm: Permissions::default(),
        }
    }

    #[test]
    fn switchfs_spreads_files_and_pins_fingerprint_groups() {
        let r = SwitchFsRouter::with_servers(8, true);
        let owners: std::collections::HashSet<ServerId> = (0..200)
            .map(|i| r.destination(&create_op(&format!("f{i}")), None, None))
            .collect();
        assert!(owners.len() > 1, "per-file hashing must spread siblings");
        let statdir = MetaOp::Statdir {
            key: MetaKey::new(DirId::ROOT, "dir"),
        };
        let mkdir = MetaOp::Mkdir {
            key: MetaKey::new(DirId::ROOT, "dir"),
            perm: Permissions::default(),
        };
        assert_eq!(
            r.destination(&statdir, None, None),
            r.destination(&mkdir, None, None),
            "directory reads and mkdir of the same directory target its fingerprint owner"
        );
        assert!(r.attach_dirty_query(&statdir));
        assert!(!r.attach_dirty_query(&mkdir));
    }

    #[test]
    fn grouping_baseline_colocates_siblings() {
        let r = BaselineRouter::with_servers(PartitionPolicy::PerDirectoryHash, 8);
        let owners: std::collections::HashSet<ServerId> = (0..200)
            .map(|i| r.destination(&create_op(&format!("f{i}")), None, None))
            .collect();
        assert_eq!(owners.len(), 1, "P/C grouping must colocate siblings");
        assert!(!r.attach_dirty_query(&MetaOp::Statdir {
            key: MetaKey::new(DirId::ROOT, "d")
        }));
    }

    #[test]
    fn separation_baseline_spreads_siblings() {
        let r = BaselineRouter::with_servers(PartitionPolicy::PerFileHash, 8);
        let owners: std::collections::HashSet<ServerId> = (0..200)
            .map(|i| r.destination(&create_op(&format!("f{i}")), None, None))
            .collect();
        assert!(owners.len() > 1);
        assert!(!r.needs_target_resolution(&MetaOp::Statdir {
            key: MetaKey::new(DirId::ROOT, "d")
        }));
    }

    #[test]
    fn grouping_baseline_needs_target_resolution_for_dir_reads() {
        let r = BaselineRouter::with_servers(PartitionPolicy::PerDirectoryHash, 4);
        assert!(r.needs_target_resolution(&MetaOp::Statdir {
            key: MetaKey::new(DirId::ROOT, "d")
        }));
        assert!(!r.needs_target_resolution(&create_op("f")));
    }
}
