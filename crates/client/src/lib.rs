//! LibFS: the SwitchFS client library (§4.2).
//!
//! A client holds a metadata cache of directory information, performs path
//! resolution against it (falling back to `lookup` RPCs on misses), routes
//! each metadata operation to the owning server according to the cluster's
//! partitioning policy, attaches dirty-set query headers to directory reads,
//! retries requests on timeouts, and honours the lazy cache-invalidation
//! protocol (`ESTALE` responses force the client to drop the stale entries
//! and retry the whole operation, §5.2.1).
//!
//! The same LibFS drives both SwitchFS clusters and the emulated baselines —
//! only the [`router::RequestRouter`] differs — mirroring the paper's setup
//! where all emulated systems share one client framework.

pub mod cache;
pub mod libfs;
pub mod router;

pub use cache::{CachedDir, MetaCache};
pub use libfs::{ClientStats, LibFs, LibFsConfig};
pub use router::{BaselineRouter, RequestRouter, SwitchFsRouter};
