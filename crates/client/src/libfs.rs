//! The LibFS client: path resolution, request execution, retries.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use switchfs_obs::{EventKind, ObsHandle, TraceEvent};
use switchfs_proto::message::{
    Body, ClientRequest, ClientResponse, MetaOp, NetMsg, PacketSeq, ParentRef, ServerMsg,
};
use switchfs_proto::{
    ClientId, DirEntry, DirId, DirtySetHeader, Fingerprint, FsError, FsResult, InodeAttrs, MetaKey,
    OpId, OpResult, Permissions, ServerId, TraceId,
};
use switchfs_simnet::sync::oneshot;
use switchfs_simnet::{timeout, Endpoint, FxHashMap, NodeId, SimDuration, SimHandle};

use crate::cache::{path_components, CachedDir, MetaCache};
use crate::router::RequestRouter;

/// Client configuration.
#[derive(Debug, Clone, Copy)]
pub struct LibFsConfig {
    /// This client's identity.
    pub id: ClientId,
    /// Retransmission timeout for a single request.
    pub request_timeout: SimDuration,
    /// Retransmissions per request before giving up.
    pub max_retries: u32,
    /// Whole-operation retries on retryable errors (stale cache, unavailable
    /// server).
    pub max_op_retries: u32,
}

impl LibFsConfig {
    /// A sensible default configuration for client `id`.
    pub fn new(id: ClientId) -> Self {
        LibFsConfig {
            id,
            request_timeout: SimDuration::micros(400),
            max_retries: 10,
            max_op_retries: 16,
        }
    }
}

/// Client-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Operations attempted.
    pub ops_issued: u64,
    /// Operations that ultimately succeeded.
    pub ops_ok: u64,
    /// Operations that ultimately failed.
    pub ops_err: u64,
    /// Request retransmissions.
    pub retransmissions: u64,
    /// Whole-operation retries caused by stale caches.
    pub stale_retries: u64,
    /// Lookup RPCs issued during path resolution.
    pub lookups: u64,
    /// Shard-map refreshes triggered by `WrongOwner` rejections (live
    /// migration moved a shard this client had cached).
    pub map_refreshes: u64,
}

/// Result of path resolution.
#[derive(Debug, Clone)]
struct Resolution {
    key: MetaKey,
    parent: Option<ParentRef>,
    ancestors: Vec<DirId>,
    parent_path: String,
}

/// The SwitchFS client library.
pub struct LibFs {
    handle: SimHandle,
    endpoint: Rc<Endpoint<NetMsg>>,
    router: Rc<dyn RequestRouter>,
    server_nodes: Rc<RefCell<Vec<NodeId>>>,
    cfg: LibFsConfig,
    cache: RefCell<MetaCache>,
    pending: Rc<RefCell<FxHashMap<u64, oneshot::Sender<ClientResponse>>>>,
    next_seq: Cell<u64>,
    /// Packet-sequence counter, distinct from the operation counter: every
    /// transmitted copy (including retransmissions) gets a unique value, so
    /// receivers can tell a *network-duplicated* packet (same sequence)
    /// from a deliberate retransmission (fresh sequence) — §5.4.1.
    next_pkt: Cell<u64>,
    /// Sequence numbers of operations still inside their retransmission
    /// loop. Everything below the minimum can never be retransmitted again;
    /// that bound is piggybacked on each request as the `acked_below`
    /// watermark so servers can prune their dedup caches.
    outstanding: RefCell<std::collections::BTreeSet<u64>>,
    stats: RefCell<ClientStats>,
    /// Shared observability sink; disabled handles make every recording
    /// site a single branch.
    obs: ObsHandle,
    /// Snapshot of `obs.on()` taken at construction. The handle's
    /// interior-mutable flag lives behind an `Rc` and must be re-read at
    /// every instrumentation site; a plain immutable bool is free to
    /// hoist. Recording is always decided at cluster construction, so
    /// the snapshot never goes stale.
    obs_enabled: bool,
}

impl LibFs {
    /// Creates a client bound to a network endpoint. Call [`LibFs::start`]
    /// to spawn its response dispatcher before issuing operations.
    pub fn new(
        handle: SimHandle,
        endpoint: Endpoint<NetMsg>,
        router: Rc<dyn RequestRouter>,
        server_nodes: Rc<RefCell<Vec<NodeId>>>,
        cfg: LibFsConfig,
        obs: ObsHandle,
    ) -> Rc<Self> {
        let obs_enabled = obs.on();
        Rc::new(LibFs {
            handle,
            endpoint: Rc::new(endpoint),
            router,
            server_nodes,
            cfg,
            cache: RefCell::new(MetaCache::new()),
            pending: Rc::new(RefCell::new(FxHashMap::default())),
            next_seq: Cell::new(1),
            next_pkt: Cell::new(1),
            outstanding: RefCell::new(std::collections::BTreeSet::new()),
            stats: RefCell::new(ClientStats::default()),
            obs,
            obs_enabled,
        })
    }

    /// Records one client-side trace event, stamped with virtual time and
    /// the routing epoch this client currently trusts. A disabled handle
    /// makes this a single branch.
    fn trace_event(&self, trace: Option<TraceId>, kind: EventKind) {
        if !self.obs_enabled {
            return;
        }
        self.obs.record(TraceEvent {
            at_ns: self.handle.now().as_nanos(),
            node: self.endpoint.node().0,
            epoch: self.router.epoch(),
            trace,
            kind,
        });
    }

    /// Spawns the response dispatcher task.
    pub fn start(self: &Rc<Self>) {
        let me = self.clone();
        self.handle.spawn(async move {
            loop {
                let Some(pkt) = me.endpoint.recv().await else {
                    return;
                };
                let response = match pkt.payload.body {
                    Body::Response(r) => Some(r),
                    // Asynchronous commits are delivered by the switch inside
                    // an AsyncCommit envelope (§5.2.1 step 7a).
                    Body::Server(ServerMsg::AsyncCommit { response, .. }) => Some(response),
                    _ => None,
                };
                if let Some(r) = response {
                    let tx = me.pending.borrow_mut().remove(&r.op_id.seq);
                    if let Some(tx) = tx {
                        let _ = tx.send(r);
                    }
                }
            }
        });
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.cfg.id
    }

    /// Client counters.
    pub fn stats(&self) -> ClientStats {
        *self.stats.borrow()
    }

    /// Cache hit/miss/invalidation counters.
    pub fn cache_counters(&self) -> (u64, u64, u64) {
        self.cache.borrow().counters()
    }

    // ------------------------------------------------------------------
    // Public metadata operations.
    // ------------------------------------------------------------------

    /// Creates a regular file.
    pub async fn create(&self, path: &str) -> FsResult<InodeAttrs> {
        match self
            .run_path_op(path, |key| MetaOp::Create {
                key,
                perm: Permissions::default(),
            })
            .await?
        {
            OpResult::Attrs(a) => Ok(a),
            OpResult::Listing { attrs, .. } => Ok(attrs),
            other => Err(other.err().unwrap_or(FsError::NotFound)),
        }
    }

    /// Deletes a regular file.
    pub async fn delete(&self, path: &str) -> FsResult<()> {
        self.expect_done(self.run_path_op(path, |key| MetaOp::Delete { key }).await)
    }

    /// Creates a directory.
    pub async fn mkdir(&self, path: &str) -> FsResult<InodeAttrs> {
        match self
            .run_path_op(path, |key| MetaOp::Mkdir {
                key,
                perm: Permissions::default(),
            })
            .await?
        {
            OpResult::Attrs(a) => Ok(a),
            OpResult::Err(e) => Err(e),
            _ => Err(FsError::NotFound),
        }
    }

    /// Removes an empty directory.
    pub async fn rmdir(&self, path: &str) -> FsResult<()> {
        let r = self.run_path_op(path, |key| MetaOp::Rmdir { key }).await;
        // A removed directory must disappear from the cache.
        self.cache.borrow_mut().invalidate_subtree(path);
        self.expect_done(r)
    }

    /// Reads a file's attributes.
    pub async fn stat(&self, path: &str) -> FsResult<InodeAttrs> {
        self.expect_attrs(self.run_path_op(path, |key| MetaOp::Stat { key }).await)
    }

    /// Reads a directory's attributes.
    pub async fn statdir(&self, path: &str) -> FsResult<InodeAttrs> {
        self.expect_attrs(self.run_path_op(path, |key| MetaOp::Statdir { key }).await)
    }

    /// Lists a directory. The entry list is the same `Rc` allocation the
    /// server produced — no copy is made on the way to the caller.
    pub async fn readdir(&self, path: &str) -> FsResult<(InodeAttrs, Rc<Vec<DirEntry>>)> {
        match self
            .run_path_op(path, |key| MetaOp::Readdir { key })
            .await?
        {
            OpResult::Listing { attrs, entries } => Ok((attrs, entries)),
            OpResult::Err(e) => Err(e),
            _ => Err(FsError::NotFound),
        }
    }

    /// Opens a file.
    pub async fn open(&self, path: &str) -> FsResult<InodeAttrs> {
        self.expect_attrs(self.run_path_op(path, |key| MetaOp::Open { key }).await)
    }

    /// Closes a file.
    pub async fn close(&self, path: &str) -> FsResult<()> {
        match self.run_path_op(path, |key| MetaOp::Close { key }).await? {
            OpResult::Err(e) => Err(e),
            _ => Ok(()),
        }
    }

    /// Changes permission bits.
    pub async fn chmod(&self, path: &str, mode: u16) -> FsResult<()> {
        self.expect_done(
            self.run_path_op(path, |key| MetaOp::Chmod { key, mode })
                .await,
        )
    }

    /// Renames a file (or directory).
    pub async fn rename(&self, src_path: &str, dst_path: &str) -> FsResult<()> {
        let mut attempt = 0;
        loop {
            match self.try_rename(src_path, dst_path).await {
                // `Unavailable` is the coordinator's abort verdict (nothing
                // was mutated) and `StaleCache` a failed ancestor check:
                // both are safe to retry, like `run_path_op` does for every
                // other operation. A timeout's outcome is ambiguous and is
                // surfaced to the caller.
                Err(e @ (FsError::Unavailable | FsError::StaleCache))
                    if attempt < self.cfg.max_op_retries =>
                {
                    attempt += 1;
                    if e == FsError::StaleCache {
                        self.stats.borrow_mut().stale_retries += 1;
                        self.cache.borrow_mut().invalidate_path(src_path);
                        self.cache.borrow_mut().invalidate_path(dst_path);
                    } else {
                        self.handle.sleep(self.cfg.request_timeout).await;
                    }
                }
                other => return other,
            }
        }
    }

    /// One rename attempt: resolve both paths and run the transaction. The
    /// client probes NEITHER end of the rename:
    ///
    /// * the destination's owner re-checks authoritatively at prepare time
    ///   and a conflict comes back as a typed `RenameDstExists` reject;
    /// * the source's type (which decides the coordinating server under
    ///   per-file hashing) is taken from the cache when present; on a cold
    ///   cache the request goes to the source's per-file-hash owner, which
    ///   re-routes a directory rename to the fingerprint-group owner
    ///   server-side — half a server-to-server trip instead of the up to two
    ///   client probe RTTs this path used to pay.
    async fn try_rename(&self, src_path: &str, dst_path: &str) -> FsResult<()> {
        // POSIX: renaming a path onto itself succeeds as a no-op (the server
        // re-checks existence; a missing source still fails with NotFound).
        let cached = self
            .cache
            .borrow_mut()
            .get(src_path)
            .and_then(|c| c.attrs.clone());
        if src_path == dst_path && cached.is_some() {
            return Ok(());
        }
        let src_res = self.resolve(src_path, false).await?;
        let dst_res = self.resolve(dst_path, false).await?;
        let op = MetaOp::Rename {
            src: src_res.key,
            dst: dst_res.key,
            dst_parent: dst_res.parent,
        };
        let mut ancestors = src_res.ancestors;
        ancestors.extend(dst_res.ancestors.iter().copied());
        let result = self.issue(op, src_res.parent, ancestors, cached).await?;
        self.cache.borrow_mut().invalidate_subtree(src_path);
        self.cache.borrow_mut().invalidate_path(dst_path);
        // The destination may overwrite an existing *file* (POSIX rename
        // semantics). Renaming onto an existing directory, or a directory
        // onto a file, is rejected by the owner at prepare time; the typed
        // reject maps to the POSIX error a local probe would have produced.
        match result.err() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn expect_done(&self, r: FsResult<OpResult>) -> FsResult<()> {
        match r?.err() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn expect_attrs(&self, r: FsResult<OpResult>) -> FsResult<InodeAttrs> {
        match r? {
            OpResult::Attrs(a) => Ok(a),
            OpResult::Listing { attrs, .. } => Ok(attrs),
            other => Err(other.err().unwrap_or(FsError::NotFound)),
        }
    }

    // ------------------------------------------------------------------
    // Resolution and request execution.
    // ------------------------------------------------------------------

    /// Runs one path-addressed operation with stale-cache retries.
    async fn run_path_op(
        &self,
        path: &str,
        build: impl Fn(MetaKey) -> MetaOp,
    ) -> FsResult<OpResult> {
        self.stats.borrow_mut().ops_issued += 1;
        let mut attempt = 0;
        loop {
            let op_probe = build(MetaKey::new(DirId::ROOT, String::new()));
            let need_target = self.router.needs_target_resolution(&op_probe);
            let res = match self.resolve(path, need_target).await {
                Ok(r) => r,
                Err(FsError::StaleCache) if attempt < self.cfg.max_op_retries => {
                    attempt += 1;
                    self.stats.borrow_mut().stale_retries += 1;
                    self.cache.borrow_mut().invalidate_path(path);
                    continue;
                }
                Err(e) => {
                    self.stats.borrow_mut().ops_err += 1;
                    return Err(e);
                }
            };
            // The resolution is rebuilt on every retry, so its fields move
            // straight into the request — no per-attempt clones.
            let Resolution {
                key,
                parent,
                ancestors,
                parent_path,
            } = res;
            let op = build(key);
            let target_attrs = if need_target {
                self.cache
                    .borrow_mut()
                    .get(path)
                    .and_then(|c| c.attrs.clone())
            } else {
                None
            };
            let out = self.issue(op, parent, ancestors, target_attrs).await;
            match out {
                Ok(OpResult::Err(e)) if e.is_retryable() && attempt < self.cfg.max_op_retries => {
                    attempt += 1;
                    if e == FsError::StaleCache {
                        self.stats.borrow_mut().stale_retries += 1;
                        self.cache.borrow_mut().invalidate_path(path);
                        // Also drop the parent entry itself; the retry
                        // re-resolves from the root.
                        self.cache.borrow_mut().invalidate_path(&parent_path);
                    } else {
                        self.handle.sleep(self.cfg.request_timeout).await;
                    }
                    continue;
                }
                Ok(r) => {
                    let mut stats = self.stats.borrow_mut();
                    if r.is_ok() {
                        stats.ops_ok += 1;
                    } else {
                        stats.ops_err += 1;
                    }
                    return Ok(r);
                }
                Err(e) => {
                    self.stats.borrow_mut().ops_err += 1;
                    return Err(e);
                }
            }
        }
    }

    /// Resolves the parent chain of `path` (and optionally the final
    /// component), filling the metadata cache. Components are borrowed
    /// slices of `path` and the growing prefix lives in one reused buffer —
    /// no per-component `String` is allocated.
    async fn resolve(&self, path: &str, resolve_target: bool) -> FsResult<Resolution> {
        let comps: Vec<&str> = path_components(path).collect();
        if comps.is_empty() {
            return Err(FsError::NotFound);
        }
        let mut ancestors = vec![DirId::ROOT];
        let mut parent = ParentRef {
            key: MetaKey::new(DirId::ROOT, String::new()),
            id: DirId::ROOT,
            fp: Fingerprint::of_dir(&DirId::ROOT, ""),
        };
        let mut parent_path = String::from("/");
        let mut current = String::new();
        let upto = if resolve_target {
            comps.len()
        } else {
            comps.len() - 1
        };
        for (i, comp) in comps[..upto].iter().enumerate() {
            current.push('/');
            current.push_str(comp);
            let cached = self.cache.borrow_mut().get(&current);
            let dir = match cached {
                Some(d) => d,
                None => {
                    self.stats.borrow_mut().lookups += 1;
                    let key = MetaKey::new(parent.id, *comp);
                    let op = MetaOp::Lookup { key: key.clone() };
                    // Boxed: the lookup RPC runs only on a cache miss, but
                    // its inline state machine would otherwise dominate the
                    // size of every resolution future above it.
                    let result =
                        Box::pin(self.issue(op, Some(parent.clone()), ancestors.clone(), None))
                            .await?;
                    let attrs = match result {
                        OpResult::Attrs(a) => a,
                        OpResult::Err(e) => return Err(e),
                        _ => return Err(FsError::NotFound),
                    };
                    let dir = Rc::new(CachedDir {
                        fp: Fingerprint::of_dir(&key.pid, &key.name),
                        id: attrs.id,
                        key,
                        attrs: Some(attrs),
                    });
                    self.cache.borrow_mut().insert(&current, Rc::clone(&dir));
                    dir
                }
            };
            // Only the first `comps.len() - 1` components become the parent
            // chain; a resolved target does not change the parent.
            if i + 1 < comps.len() {
                ancestors.push(dir.id);
                parent = ParentRef {
                    key: dir.key.clone(),
                    id: dir.id,
                    fp: dir.fp,
                };
                parent_path.clone_from(&current);
            }
        }
        let name = *comps.last().expect("non-empty");
        let key = MetaKey::new(parent.id, name);
        // Operations directly under the root still carry the root as parent;
        // only the root itself has no parent, and it is never resolved here.
        Ok(Resolution {
            key,
            parent: Some(parent),
            ancestors,
            parent_path,
        })
    }

    /// Sends one request (with retransmission) and returns the server's
    /// result. A `WrongOwner` rejection — the cached shard map went stale
    /// across a live migration — installs the server's current map and
    /// retries against the new owner within the same retry budget.
    async fn issue(
        &self,
        op: MetaOp,
        parent: Option<ParentRef>,
        ancestors: Vec<DirId>,
        target_attrs: Option<InodeAttrs>,
    ) -> FsResult<OpResult> {
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        self.outstanding.borrow_mut().insert(seq);
        let result = self
            .issue_tracked(seq, op, parent, ancestors, target_attrs)
            .await;
        self.outstanding.borrow_mut().remove(&seq);
        result
    }

    async fn issue_tracked(
        &self,
        seq: u64,
        op: MetaOp,
        parent: Option<ParentRef>,
        ancestors: Vec<DirId>,
        target_attrs: Option<InodeAttrs>,
    ) -> FsResult<OpResult> {
        let op_id = OpId {
            client: self.cfg.id,
            seq,
        };
        let attach_query = self.router.attach_dirty_query(&op);
        // Only directory reads carry a dirty-set query header; compute the
        // fingerprint lazily so every other operation skips the hash.
        let fp = attach_query.then(|| {
            let key = op.primary_key();
            Fingerprint::of_dir(&key.pid, &key.name)
        });
        // Everything this client issued below its oldest outstanding
        // operation has been answered and abandoned-or-consumed: the server
        // may prune those cached responses.
        let acked_below = self
            .outstanding
            .borrow()
            .first()
            .copied()
            .unwrap_or(seq)
            .min(seq);
        // Built once, shared (`Rc`) across retransmission attempts and with
        // every in-flight packet copy. Rebuilt only on a map refresh (the
        // epoch stamp must match the routing).
        let mut request = Rc::new(ClientRequest {
            op_id,
            op,
            ancestors,
            parent,
            epoch: self.router.epoch(),
            acked_below,
        });
        let mut dst_node = {
            let dst_server = self.router.destination(
                &request.op,
                request.parent.as_ref(),
                target_attrs.as_ref(),
            );
            self.node_of(dst_server)
        };
        // Exponential backoff between retransmissions: a queued-but-alive
        // server answers when it answers regardless of duplicates (they are
        // suppressed), so pacing the retries only sheds useless packets —
        // heavyweight baselines otherwise exhaust the whole retry budget on
        // every operation the moment their queues exceed one timeout.
        let mut wait = self.cfg.request_timeout;
        let max_wait = self.cfg.request_timeout * 16;
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                self.stats.borrow_mut().retransmissions += 1;
            }
            let (tx, rx) = oneshot::channel();
            self.pending.borrow_mut().insert(seq, tx);
            let pkt = self.next_pkt.get();
            self.next_pkt.set(pkt + 1);
            let pkt_seq = PacketSeq {
                sender: self.endpoint.node().0,
                seq: pkt,
            };
            let trace = TraceId::of_op(op_id);
            let msg = match fp {
                Some(fp) => NetMsg::with_dirty(
                    pkt_seq,
                    DirtySetHeader::query(fp),
                    Body::Request(request.clone()),
                ),
                None => NetMsg::plain(pkt_seq, Body::Request(request.clone())),
            }
            .traced(trace);
            self.trace_event(Some(trace), EventKind::ClientIssue { op: op_id, attempt });
            self.endpoint.send(dst_node, msg);
            match timeout(&self.handle, wait, rx.recv()).await {
                Some(Ok(resp)) => match resp.result {
                    OpResult::WrongOwner { map } => {
                        // Refresh-and-retry: install the newer map, restamp
                        // the request's epoch and re-route. No backoff — the
                        // new owner is live and this is not congestion.
                        self.stats.borrow_mut().map_refreshes += 1;
                        self.router.install_map(&map);
                        self.trace_event(
                            Some(trace),
                            EventKind::ClientMapRefresh {
                                op: op_id,
                                new_epoch: self.router.epoch(),
                            },
                        );
                        let mut rebuilt = (*request).clone();
                        rebuilt.epoch = self.router.epoch();
                        request = Rc::new(rebuilt);
                        let dst_server = self.router.destination(
                            &request.op,
                            request.parent.as_ref(),
                            target_attrs.as_ref(),
                        );
                        dst_node = self.node_of(dst_server);
                    }
                    result => return Ok(result),
                },
                _ => {
                    self.pending.borrow_mut().remove(&seq);
                    wait = (wait * 2).min(max_wait);
                }
            }
        }
        Err(FsError::TimedOut)
    }

    fn node_of(&self, server: ServerId) -> NodeId {
        self.server_nodes.borrow()[server.0 as usize]
    }
}
