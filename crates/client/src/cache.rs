//! The client-side metadata cache.
//!
//! LibFS caches **only directory metadata** (§4.2): for every resolved
//! directory path it remembers the directory's key, id, fingerprint and
//! attributes, which is what path resolution needs. Entries are invalidated
//! lazily: when a server answers `ESTALE` (because an ancestor appears in
//! its invalidation list), the client drops every cached entry along that
//! path and retries the operation from scratch (§5.2.1, §5.2.3).

use std::rc::Rc;

use switchfs_proto::{DirId, Fingerprint, InodeAttrs, MetaKey};
use switchfs_simnet::FxHashMap;

/// One cached directory.
#[derive(Debug, Clone)]
pub struct CachedDir {
    /// The directory's `(pid, name)` key.
    pub key: MetaKey,
    /// The directory's id.
    pub id: DirId,
    /// The directory's fingerprint.
    pub fp: Fingerprint,
    /// The directory's attributes as of the last lookup.
    pub attrs: Option<InodeAttrs>,
}

/// Path-indexed cache of directory metadata. Entries are shared (`Rc`):
/// a hit hands out a reference-counted pointer instead of deep-copying the
/// cached key and attributes.
#[derive(Debug, Default)]
pub struct MetaCache {
    dirs: FxHashMap<String, Rc<CachedDir>>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl MetaCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a directory by absolute path. The returned entry is shared,
    /// not copied.
    pub fn get(&mut self, path: &str) -> Option<Rc<CachedDir>> {
        match self.dirs.get(path) {
            Some(d) => {
                self.hits += 1;
                Some(Rc::clone(d))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts or refreshes a directory entry.
    pub fn insert(&mut self, path: &str, dir: Rc<CachedDir>) {
        self.dirs.insert(path.to_string(), dir);
    }

    /// Drops the entry for `path` and for every path beneath it (a removed
    /// or renamed directory invalidates its whole subtree). Alloc-free: the
    /// descendant test slices `path` instead of building a prefix string.
    pub fn invalidate_subtree(&mut self, path: &str) {
        let before = self.dirs.len();
        self.dirs.retain(|p, _| {
            if p == path {
                return false;
            }
            // A strict descendant is `path` followed by a '/' separator
            // (or anything below a path that already ends in '/').
            match p.strip_prefix(path) {
                Some(rest) => !(path.ends_with('/') || rest.starts_with('/')),
                None => true,
            }
        });
        self.invalidations += (before - self.dirs.len()) as u64;
    }

    /// Drops every cached entry along an absolute path (used after an
    /// `ESTALE` response, when the client does not know which component went
    /// stale).
    pub fn invalidate_path(&mut self, path: &str) {
        for prefix in path_prefixes(path) {
            if self.dirs.remove(prefix).is_some() {
                self.invalidations += 1;
            }
        }
    }

    /// Number of cached directories.
    pub fn len(&self) -> usize {
        self.dirs.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.dirs.is_empty()
    }

    /// `(hits, misses, invalidations)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.invalidations)
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.dirs.clear();
    }
}

/// Iterates every directory prefix of an absolute path, excluding the root:
/// `"/a/b/c"` → `"/a"`, `"/a/b"`, `"/a/b/c"`. Alloc-free — each prefix is a
/// slice of the input ending at a component boundary, so the input must be
/// canonical (no repeated separators): `"/a//b"` yields `"/a//b"`, not
/// `"/a/b"`, and would miss the canonical cache key. Every path the client
/// caches under is canonical (resolution builds them component by
/// component), so callers passing resolved paths are always safe.
pub fn path_prefixes(path: &str) -> impl Iterator<Item = &str> {
    path.char_indices()
        .filter_map(move |(i, c)| {
            // A component ends right before a separator or at end-of-string.
            let boundary =
                c != '/' && matches!(path.as_bytes().get(i + c.len_utf8()), None | Some(b'/'));
            boundary.then(|| &path[..i + c.len_utf8()])
        })
        .filter(|p| !p.is_empty())
}

/// Iterates the components of an absolute path without allocating.
pub fn path_components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(name: &str) -> CachedDir {
        CachedDir {
            key: MetaKey::new(DirId::ROOT, name),
            id: DirId::ROOT,
            fp: Fingerprint::of_dir(&DirId::ROOT, name),
            attrs: None,
        }
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = MetaCache::new();
        assert!(c.get("/a").is_none());
        c.insert("/a", Rc::new(dir("a")));
        assert!(c.get("/a").is_some());
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn invalidate_subtree_drops_descendants() {
        let mut c = MetaCache::new();
        c.insert("/a", Rc::new(dir("a")));
        c.insert("/a/b", Rc::new(dir("b")));
        c.insert("/a/b/c", Rc::new(dir("c")));
        c.insert("/ab", Rc::new(dir("ab")));
        c.invalidate_subtree("/a/b");
        assert!(c.get("/a").is_some());
        assert!(c.get("/a/b").is_none());
        assert!(c.get("/a/b/c").is_none());
        assert!(
            c.get("/ab").is_some(),
            "sibling with shared prefix must survive"
        );
    }

    #[test]
    fn invalidate_path_drops_all_prefixes() {
        let mut c = MetaCache::new();
        c.insert("/a", Rc::new(dir("a")));
        c.insert("/a/b", Rc::new(dir("b")));
        c.insert("/x", Rc::new(dir("x")));
        c.invalidate_path("/a/b/file.txt");
        assert!(c.is_empty() || c.get("/x").is_some());
        assert!(c.get("/a").is_none());
        assert!(c.get("/a/b").is_none());
    }

    #[test]
    fn prefix_and_component_helpers() {
        assert_eq!(
            path_prefixes("/a/b/c").collect::<Vec<_>>(),
            vec!["/a", "/a/b", "/a/b/c"]
        );
        assert_eq!(
            path_components("/a/b/c").collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        assert_eq!(path_prefixes("/").count(), 0);
        assert_eq!(path_components("/").count(), 0);
        // Trailing separators do not produce empty prefixes.
        assert_eq!(
            path_prefixes("/a/b/").collect::<Vec<_>>(),
            vec!["/a", "/a/b"]
        );
    }
}
