//! End-to-end metadata operation benchmark: simulated wall-clock cost of
//! running a burst of creates plus a directory read on a small SwitchFS
//! deployment (exercises the full protocol stack per iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use switchfs_core::{Cluster, ClusterConfig, SystemKind};
use switchfs_workloads::{NamespaceSpec, WorkloadBuilder};

fn bench_create_then_statdir(c: &mut Criterion) {
    let mut group = c.benchmark_group("switchfs_protocol");
    group.sample_size(10);
    group.bench_function("create200_then_statdir", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
            cfg.servers = 4;
            cfg.clients = 2;
            let mut cluster = Cluster::new(cfg);
            let ns = NamespaceSpec::single_large_dir(0);
            cluster.preload_dir(&ns.dir_path(0));
            let mut builder = WorkloadBuilder::new(ns, 1);
            let items = builder.creates_then_statdir(200);
            let report = cluster.run_workload(items, 32, None);
            report.ops
        })
    });
    group.finish();
}

criterion_group!(benches, bench_create_then_statdir);
criterion_main!(benches);
