//! Smoke benchmark over the evaluation pipeline: a miniature SwitchFS
//! deployment runs a short create burst followed by a directory read, so
//! `cargo bench` exercises the cluster builder, the driver and the
//! asynchronous-update protocol end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use switchfs_core::{Cluster, ClusterConfig, SystemKind};
use switchfs_workloads::{NamespaceSpec, WorkloadBuilder};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_pipeline");
    group.sample_size(10);
    group.bench_function("mini_create_burst", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
            cfg.servers = 4;
            cfg.clients = 2;
            let mut cluster = Cluster::new(cfg);
            let ns = NamespaceSpec::multi_dir(8, 0);
            for d in ns.all_dirs() {
                cluster.preload_dir(&d);
            }
            let mut builder = WorkloadBuilder::new(ns, 3);
            let items = builder.create_bursts(10, 100);
            cluster.run_workload(items, 16, None).ops
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
