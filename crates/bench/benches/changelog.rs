//! Microbenchmark: change-log compaction (§5.3) — how quickly deferred
//! directory updates are folded before application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use switchfs_proto::changelog::{ChangeLogEntry, ChangeOp, CompactedChanges};
use switchfs_proto::{ClientId, DirId, FileType, OpId};

fn entries(n: usize) -> Vec<ChangeLogEntry> {
    (0..n)
        .map(|i| ChangeLogEntry {
            entry_id: OpId {
                client: ClientId(0),
                seq: i as u64,
            },
            dir: DirId::ROOT,
            name: format!("f{}", i % (n / 4).max(1)),
            op: if i % 3 == 2 {
                ChangeOp::Remove
            } else {
                ChangeOp::Insert {
                    file_type: FileType::File,
                    mode: 0o644,
                }
            },
            timestamp: i as u64,
            size_delta: if i % 3 == 2 { -1 } else { 1 },
        })
        .collect()
}

fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("changelog_compaction");
    for n in [64usize, 512, 4096] {
        let e = entries(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &e, |b, e| {
            b.iter(|| CompactedChanges::from_entries(e))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
