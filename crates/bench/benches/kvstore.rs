//! Microbenchmark: the metadata key-value store and WAL substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use switchfs_kvstore::{KvStore, Wal};

fn bench_kvstore(c: &mut Criterion) {
    c.bench_function("kvstore_put_get_10k", |b| {
        b.iter(|| {
            let mut kv = KvStore::new();
            for i in 0..10_000u32 {
                kv.put(i, i * 2);
            }
            let mut sum = 0u64;
            for i in 0..10_000u32 {
                sum += kv.get(&i).unwrap_or(0) as u64;
            }
            sum
        })
    });
    c.bench_function("wal_append_mark_applied_10k", |b| {
        b.iter(|| {
            let mut wal = Wal::new();
            let lsns: Vec<u64> = (0..10_000u32).map(|i| wal.append(i)).collect();
            for lsn in lsns {
                wal.mark_applied(lsn);
            }
            wal.unapplied().count()
        })
    });
}

criterion_group!(benches, bench_kvstore);
criterion_main!(benches);
