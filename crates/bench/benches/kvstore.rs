//! Microbenchmark: the metadata key-value store and WAL substrate, plus the
//! zero-clone readdir path.

use std::cell::Cell;
use std::rc::Rc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use switchfs_kvstore::{KvStore, Wal};

thread_local! {
    /// Number of times a [`CountedEntry`] was cloned.
    static ENTRY_CLONES: Cell<u64> = const { Cell::new(0) };
}

/// A stand-in directory entry that counts its clones, so the readdir bench
/// can assert how many deep copies each strategy performs.
#[derive(Debug)]
struct CountedEntry {
    #[allow(dead_code)]
    name: String,
}

impl Clone for CountedEntry {
    fn clone(&self) -> Self {
        ENTRY_CLONES.with(|c| c.set(c.get() + 1));
        CountedEntry {
            name: self.name.clone(),
        }
    }
}

fn entry_clones() -> u64 {
    ENTRY_CLONES.with(|c| c.get())
}

fn bench_kvstore(c: &mut Criterion) {
    c.bench_function("kvstore_put_get_10k", |b| {
        b.iter(|| {
            let mut kv = KvStore::new();
            for i in 0..10_000u32 {
                kv.put(i, i * 2);
            }
            let mut sum = 0u64;
            for i in 0..10_000u32 {
                sum += kv.get(&i).unwrap_or(0) as u64;
            }
            sum
        })
    });
    c.bench_function("wal_append_mark_applied_10k", |b| {
        b.iter(|| {
            let mut wal = Wal::new();
            let lsns: Vec<u64> = (0..10_000u32).map(|i| wal.append_sized(i, 4)).collect();
            for lsn in lsns {
                wal.mark_applied(lsn);
            }
            wal.unapplied().count()
        })
    });
}

/// The readdir hot path, before and after the zero-clone overhaul:
///
/// * `readdir_cloning_scan` models the pre-PR layout — one `(dir, name)` key
///   per entry, each readdir deep-copies every entry out of the store —
///   and asserts the per-readdir clone count is O(n).
/// * `readdir_shared_rc` models the current layout — the entry list behind
///   an `Rc`, readdir hands out a reference-counted pointer — and asserts
///   the per-readdir entry-clone count is exactly zero (O(1) total work).
fn bench_readdir_clones(c: &mut Criterion) {
    const ENTRIES: usize = 1_000;

    // Pre-PR layout: per-entry keys, cloned out on every scan.
    let mut per_entry: KvStore<(u32, String), CountedEntry> = KvStore::new();
    for i in 0..ENTRIES {
        let name = format!("f{i:04}");
        per_entry.put((7, name.clone()), CountedEntry { name });
    }
    let before = entry_clones();
    let listing = per_entry.scan_while(&(7, String::new()), |(d, _)| *d == 7);
    let per_readdir = entry_clones() - before;
    assert_eq!(
        per_readdir, ENTRIES as u64,
        "the cloning scan deep-copies every entry per readdir (O(n))"
    );
    drop(listing);
    c.bench_function("readdir_cloning_scan_1k", |b| {
        b.iter(|| {
            per_entry
                .scan_while(&(7, String::new()), |(d, _)| *d == 7)
                .len()
        })
    });

    // Current layout: one Rc-shared list per directory.
    let mut shared: KvStore<u32, Rc<Vec<CountedEntry>>> = KvStore::new();
    shared.put(
        7,
        Rc::new(
            (0..ENTRIES)
                .map(|i| CountedEntry {
                    name: format!("f{i:04}"),
                })
                .collect(),
        ),
    );
    let before = entry_clones();
    let listing: Rc<Vec<CountedEntry>> = Rc::clone(shared.get_ref(&7).expect("present"));
    assert_eq!(listing.len(), ENTRIES);
    assert_eq!(
        entry_clones() - before,
        0,
        "the shared listing must not clone a single entry per readdir (O(1))"
    );
    drop(listing);
    c.bench_function("readdir_shared_rc_1k", |b| {
        b.iter(|| {
            let l: Rc<Vec<CountedEntry>> = Rc::clone(shared.get_ref(&7).expect("present"));
            black_box(l.len())
        })
    });
}

criterion_group!(benches, bench_kvstore, bench_readdir_clones);
criterion_main!(benches);
