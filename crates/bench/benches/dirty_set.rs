//! Microbenchmark: the in-network dirty set's register operations
//! (insert/query/remove throughput of the §6.3 data structure).

use criterion::{criterion_group, criterion_main, Criterion};
use switchfs_proto::{DirId, Fingerprint, ServerId};
use switchfs_switch::{DirtySet, DirtySetConfig};

fn bench_dirty_set(c: &mut Criterion) {
    let fps: Vec<Fingerprint> = (0..10_000u64)
        .map(|i| Fingerprint::of_dir(&DirId::generate(ServerId(0), i), "d"))
        .collect();
    c.bench_function("dirty_set_insert_query_remove", |b| {
        b.iter(|| {
            let mut ds = DirtySet::new(DirtySetConfig::tiny(10, 12));
            for fp in &fps {
                ds.insert(*fp);
            }
            let mut hits = 0usize;
            for fp in &fps {
                hits += usize::from(ds.query(*fp));
            }
            for fp in &fps {
                ds.remove(*fp);
            }
            hits
        })
    });
}

criterion_group!(benches, bench_dirty_set);
criterion_main!(benches);
