//! Shared helpers for the figure-regeneration harness (`figures` binary) and
//! the Criterion micro-benchmarks.
//!
//! Every experiment of §7 is represented by a function in [`experiments`]
//! that builds the corresponding cluster(s), runs the corresponding workload
//! and returns the series the paper plots. The `figures` binary prints them;
//! `EXPERIMENTS.md` records paper-vs-measured values.

pub mod experiments;

pub use experiments::{ExperimentScale, Row};
