//! Regenerates the tables and figures of the SwitchFS evaluation (§7).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p switchfs-bench --bin figures -- <experiment> [--full] [--json]
//! ```
//!
//! where `<experiment>` is one of `tab2`, `fig2`, `fig12a`, `fig12b`,
//! `fig13`, `fig14`, `overflow`, `fig15`, `fig16`, `fig17a`, `fig17b`,
//! `fig18`, `fig19`, `recovery`, or `all`. `--full` uses the larger
//! experiment scale; `--json` emits machine-readable output.

use switchfs_bench::{experiments, ExperimentScale, Row};

fn print_rows(title: &str, rows: &[Row], json: bool) {
    if json {
        let obj: Vec<serde_json::Value> = rows
            .iter()
            .map(|r| {
                let mut m = serde_json::Map::new();
                m.insert("label".into(), serde_json::Value::String(r.label.clone()));
                for (k, v) in &r.values {
                    m.insert(
                        k.clone(),
                        serde_json::Number::from_f64(*v)
                            .map(serde_json::Value::Number)
                            .unwrap_or(serde_json::Value::Null),
                    );
                }
                serde_json::Value::Object(m)
            })
            .collect();
        println!(
            "{}",
            serde_json::json!({ "experiment": title, "rows": obj })
        );
        return;
    }
    println!("\n== {title} ==");
    for row in rows {
        let cols: Vec<String> = row
            .values
            .iter()
            .map(|(k, v)| format!("{k}={v:.1}"))
            .collect();
        println!("  {:<40} {}", row.label, cols.join("  "));
    }
}

fn run(which: &str, scale: ExperimentScale, json: bool) {
    match which {
        "tab2" => print_rows("Tab. 2: PanguFS operation mix", &experiments::tab2(), json),
        "fig2" => print_rows(
            "Fig. 2: motivation — baseline scalability and contention",
            &experiments::fig2(scale),
            json,
        ),
        "fig12a" => print_rows(
            "Fig. 12(a): throughput, single large directory (8 servers)",
            &experiments::fig12(scale, true, 8),
            json,
        ),
        "fig12b" => print_rows(
            "Fig. 12(b): throughput, multiple directories (8 servers)",
            &experiments::fig12(scale, false, 8),
            json,
        ),
        "fig13" => print_rows(
            "Fig. 13: operation latency (single client, 8 servers)",
            &experiments::fig13(scale),
            json,
        ),
        "fig14" => print_rows(
            "Fig. 14: contribution breakdown (Baseline / +Async / +Compaction)",
            &experiments::fig14(scale),
            json,
        ),
        "overflow" => print_rows(
            "§7.3.2: impact of dirty-set overflow",
            &experiments::overflow(scale),
            json,
        ),
        "fig15" => print_rows(
            "Fig. 15: dedicated server vs programmable switch",
            &experiments::fig15(scale),
            json,
        ),
        "fig16" => print_rows(
            "Fig. 16: owner-server tracking vs in-network tracking",
            &experiments::fig16(scale),
            json,
        ),
        "fig17a" => print_rows(
            "Fig. 17(a): create bursts, 32 in-flight requests",
            &experiments::fig17(scale, 32),
            json,
        ),
        "fig17b" => print_rows(
            "Fig. 17(b): create bursts, 256 in-flight requests",
            &experiments::fig17(scale, 256),
            json,
        ),
        "fig18" => print_rows(
            "Fig. 18: statdir latency after preceding creates (aggregation overhead)",
            &experiments::fig18(scale),
            json,
        ),
        "fig19" => print_rows(
            "Fig. 19: end-to-end workloads",
            &experiments::fig19(scale),
            json,
        ),
        "recovery" => print_rows(
            "§7.7: crash recovery time",
            &experiments::recovery(scale),
            json,
        ),
        "all" => {
            for w in [
                "tab2", "fig2", "fig12a", "fig12b", "fig13", "fig14", "overflow", "fig15", "fig16",
                "fig17a", "fig17b", "fig18", "fig19", "recovery",
            ] {
                run(w, scale, json);
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let scale = if args.iter().any(|a| a == "--full") {
        ExperimentScale::Full
    } else {
        ExperimentScale::Quick
    };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    run(&which, scale, json);
}
