//! Regenerates the tables and figures of the SwitchFS evaluation (§7).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p switchfs-bench --bin figures -- <experiment> [--full] [--json [PATH]]
//! ```
//!
//! where `<experiment>` is one of `tab2`, `fig2`, `fig12a`, `fig12b`,
//! `fig13`, `fig14`, `overflow`, `fig15`, `fig16`, `fig17a`, `fig17b`,
//! `fig18`, `fig19`, `recovery`, `availability`, `rebalance`,
//! `decommission`, `metrics`, or `all`. `--full` uses the larger
//! experiment scale; `--json` emits machine-readable output — one JSON
//! document per experiment to stdout, or, when a `PATH` follows, a single
//! document collecting every experiment plus per-experiment and total wall
//! clock, which is the format recorded in the checked-in `BENCH_*.json`
//! perf baselines and uploaded by the CI perf-smoke job.

use std::time::Instant;

use switchfs_bench::{experiments, ExperimentScale, Row};

fn rows_to_json(title: &str, rows: &[Row]) -> serde_json::Value {
    let obj: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            let mut m = serde_json::Map::new();
            m.insert("label".into(), serde_json::Value::String(r.label.clone()));
            for (k, v) in &r.values {
                m.insert(
                    k.clone(),
                    serde_json::Number::from_f64(*v)
                        .map(serde_json::Value::Number)
                        .unwrap_or(serde_json::Value::Null),
                );
            }
            serde_json::Value::Object(m)
        })
        .collect();
    serde_json::json!({ "experiment": title, "rows": obj })
}

fn print_rows(title: &str, rows: &[Row], json: bool) {
    if json {
        println!("{}", rows_to_json(title, rows));
        return;
    }
    println!("\n== {title} ==");
    for row in rows {
        let cols: Vec<String> = row
            .values
            .iter()
            .map(|(k, v)| format!("{k}={v:.1}"))
            .collect();
        println!("  {:<40} {}", row.label, cols.join("  "));
    }
}

const EXPERIMENTS: [&str; 18] = [
    "tab2",
    "fig2",
    "fig12a",
    "fig12b",
    "fig13",
    "fig14",
    "overflow",
    "fig15",
    "fig16",
    "fig17a",
    "fig17b",
    "fig18",
    "fig19",
    "recovery",
    "availability",
    "rebalance",
    "decommission",
    "metrics",
];

fn compute(which: &str, scale: ExperimentScale) -> Option<(&'static str, Vec<Row>)> {
    match which {
        "tab2" => Some(("Tab. 2: PanguFS operation mix", experiments::tab2())),
        "fig2" => Some((
            "Fig. 2: motivation — baseline scalability and contention",
            experiments::fig2(scale),
        )),
        "fig12a" => Some((
            "Fig. 12(a): throughput, single large directory (8 servers)",
            experiments::fig12(scale, true, 8),
        )),
        "fig12b" => Some((
            "Fig. 12(b): throughput, multiple directories (8 servers)",
            experiments::fig12(scale, false, 8),
        )),
        "fig13" => Some((
            "Fig. 13: operation latency (single client, 8 servers)",
            experiments::fig13(scale),
        )),
        "fig14" => Some((
            "Fig. 14: contribution breakdown (Baseline / +Async / +Compaction)",
            experiments::fig14(scale),
        )),
        "overflow" => Some((
            "§7.3.2: impact of dirty-set overflow",
            experiments::overflow(scale),
        )),
        "fig15" => Some((
            "Fig. 15: dedicated server vs programmable switch",
            experiments::fig15(scale),
        )),
        "fig16" => Some((
            "Fig. 16: owner-server tracking vs in-network tracking",
            experiments::fig16(scale),
        )),
        "fig17a" => Some((
            "Fig. 17(a): create bursts, 32 in-flight requests",
            experiments::fig17(scale, 32),
        )),
        "fig17b" => Some((
            "Fig. 17(b): create bursts, 256 in-flight requests",
            experiments::fig17(scale, 256),
        )),
        "fig18" => Some((
            "Fig. 18: statdir latency after preceding creates (aggregation overhead)",
            experiments::fig18(scale),
        )),
        "fig19" => Some(("Fig. 19: end-to-end workloads", experiments::fig19(scale))),
        "recovery" => Some(("§7.7: crash recovery time", experiments::recovery(scale))),
        "availability" => Some((
            "§7.7: availability under a server crash (healthy / degraded / recovered)",
            experiments::availability(scale),
        )),
        "rebalance" => Some((
            "Elastic scale-out: live shard migration onto a newly added server",
            experiments::rebalance(scale),
        )),
        "decommission" => Some((
            "Elastic shrink: graceful decommission of a loaded server",
            experiments::decommission(scale),
        )),
        "metrics" => Some((
            "Unified metrics registry (flight recorder enabled)",
            experiments::metrics(scale),
        )),
        _ => None,
    }
}

fn run(which: &str, scale: ExperimentScale, json: bool) {
    if which == "all" {
        for w in EXPERIMENTS {
            run(w, scale, json);
        }
        return;
    }
    match compute(which, scale) {
        Some((title, rows)) => print_rows(title, &rows, json),
        None => {
            eprintln!("unknown experiment: {which}");
            std::process::exit(2);
        }
    }
}

/// Runs the selection and writes one collected JSON document (rows +
/// per-experiment and total wall clock) to `path`.
fn run_to_file(which: &str, scale: ExperimentScale, path: &str) {
    let selection: Vec<&str> = if which == "all" {
        EXPERIMENTS.to_vec()
    } else {
        vec![which]
    };
    let total_start = Instant::now();
    let mut docs = Vec::new();
    for w in selection {
        let start = Instant::now();
        let Some((title, rows)) = compute(w, scale) else {
            eprintln!("unknown experiment: {w}");
            std::process::exit(2);
        };
        let wall = start.elapsed().as_secs_f64();
        let mut doc = rows_to_json(title, &rows);
        if let serde_json::Value::Object(m) = &mut doc {
            m.insert("name".into(), serde_json::Value::String(w.to_string()));
            m.insert(
                "wall_clock_secs".into(),
                serde_json::Number::from_f64(wall)
                    .map(serde_json::Value::Number)
                    .unwrap_or(serde_json::Value::Null),
            );
        }
        docs.push(doc);
    }
    let out = serde_json::json!({
        "scale": if scale == ExperimentScale::Full { "full" } else { "quick" },
        "total_wall_clock_secs": serde_json::Number::from_f64(total_start.elapsed().as_secs_f64())
            .map(serde_json::Value::Number)
            .unwrap_or(serde_json::Value::Null),
        "experiments": docs,
    });
    std::fs::write(path, format!("{out}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        ExperimentScale::Full
    } else {
        ExperimentScale::Quick
    };
    // `--json` alone streams one JSON document per experiment to stdout;
    // `--json PATH` collects everything (plus wall clocks) into PATH.
    let json_pos = args.iter().position(|a| a == "--json");
    let json_path = json_pos.and_then(|i| {
        args.get(i + 1)
            .filter(|a| !a.starts_with("--") && !EXPERIMENTS.contains(&a.as_str()) && *a != "all")
            .cloned()
    });
    let which = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--")
                && json_path
                    .as_ref()
                    .is_none_or(|_| Some(*i) != json_pos.map(|p| p + 1))
        })
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "all".to_string());
    match json_path {
        Some(path) => run_to_file(&which, scale, &path),
        None => run(&which, scale, json_pos.is_some()),
    }
}
