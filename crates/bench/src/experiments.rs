//! The experiments of §7, one function per table/figure.
//!
//! Each function returns a vector of [`Row`]s: a label plus named numeric
//! columns, which the `figures` binary prints as a table and can emit as
//! JSON. The workload sizes are scaled down from the paper's 10-million-file
//! populations by [`ExperimentScale`] so a full sweep runs in minutes of wall
//! clock; the *shape* of each result (who wins, where curves flatten, where
//! crossovers fall) is what the reproduction targets, as documented in
//! DESIGN.md and EXPERIMENTS.md.

use switchfs_core::{Cluster, ClusterConfig, SystemKind, TrackingChoice};
use switchfs_simnet::SimDuration;
use switchfs_workloads::{NamespaceSpec, OpKind, OpMix, WorkloadBuilder};

/// How large to make each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Small populations / operation counts: suitable for CI and quick runs.
    Quick,
    /// Larger populations closer to the paper's setup (still simulated).
    Full,
}

impl ExperimentScale {
    /// Number of operations per measured data point.
    pub fn ops(&self) -> usize {
        match self {
            ExperimentScale::Quick => 2_000,
            ExperimentScale::Full => 20_000,
        }
    }

    /// Number of pre-existing files per namespace.
    pub fn preload_files(&self) -> usize {
        match self {
            ExperimentScale::Quick => 2_000,
            ExperimentScale::Full => 50_000,
        }
    }

    /// Number of directories in multi-directory namespaces.
    pub fn dirs(&self) -> usize {
        match self {
            ExperimentScale::Quick => 64,
            ExperimentScale::Full => 1024,
        }
    }
}

/// One output row: a label and named numeric columns.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. the system name or a parameter value).
    pub label: String,
    /// `(column name, value)` pairs.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            values: Vec::new(),
        }
    }

    /// Adds a column.
    pub fn col(mut self, name: impl Into<String>, value: f64) -> Self {
        self.values.push((name.into(), value));
        self
    }
}

fn cluster_for(system: SystemKind, servers: usize, cores: usize) -> Cluster {
    let mut cfg = ClusterConfig::paper_default(system);
    cfg.servers = servers;
    cfg.cores_per_server = cores;
    cfg.clients = 4;
    Cluster::new(cfg)
}

fn preload_namespace(cluster: &mut Cluster, ns: &NamespaceSpec, files: usize) {
    for d in 0..ns.dirs {
        cluster.preload_dir(&ns.dir_path(d));
    }
    let per_dir = files / ns.dirs.max(1);
    for d in 0..ns.dirs {
        cluster.preload_files(&ns.dir_path(d), &ns.file_prefix, per_dir);
    }
}

fn op_throughput(
    system: SystemKind,
    servers: usize,
    cores: usize,
    ns: &NamespaceSpec,
    kind: OpKind,
    scale: ExperimentScale,
    in_flight: usize,
) -> (f64, f64) {
    let mut cluster = cluster_for(system, servers, cores);
    let mut ns = ns.clone();
    ns.files_per_dir = scale.preload_files() / ns.dirs.max(1);
    preload_namespace(&mut cluster, &ns, scale.preload_files());
    let mut builder = WorkloadBuilder::new(ns, 7);
    let items = match kind {
        OpKind::Rmdir => {
            let (mk, rm) = builder.mkdir_then_rmdir(scale.ops());
            // Create the directories first (unmeasured), then measure rmdir.
            cluster.run_workload(mk, in_flight, None);
            rm
        }
        _ => builder.uniform(kind, scale.ops()),
    };
    let report = cluster.run_workload(items, in_flight, None);
    (report.kops, report.mean_latency_us())
}

/// Tab. 2: the PanguFS operation mix and the asynchrony opportunity it
/// implies.
pub fn tab2() -> Vec<Row> {
    let mix = OpMix::pangu();
    vec![
        Row::new("dir-update fraction").col("percent", mix.dir_update_fraction() * 100.0),
        Row::new("dir-read fraction").col("percent", mix.dir_read_fraction() * 100.0),
        Row::new("updates not immediately read (lower bound)").col(
            "percent",
            (mix.dir_update_fraction() - mix.dir_read_fraction()) / mix.dir_update_fraction()
                * 100.0,
        ),
    ]
}

/// Fig. 2(a)+(c)+(d): the motivation study — `stat` and `create` scalability
/// of the two baselines in a single shared directory.
pub fn fig2(scale: ExperimentScale) -> Vec<Row> {
    let ns = NamespaceSpec::single_large_dir(0);
    let mut rows = Vec::new();
    for servers in [4usize, 8, 12, 16] {
        let mut row = Row::new(format!("{servers} servers"));
        for system in [SystemKind::EmulatedInfiniFs, SystemKind::EmulatedCfs] {
            let (stat_kops, _) = op_throughput(system, servers, 4, &ns, OpKind::Stat, scale, 256);
            let (create_kops, _) =
                op_throughput(system, servers, 4, &ns, OpKind::Create, scale, 256);
            row = row
                .col(format!("{} stat Kops/s", system.label()), stat_kops)
                .col(format!("{} create Kops/s", system.label()), create_kops);
        }
        rows.push(row);
    }
    for cores in [2usize, 4, 6] {
        let mut row = Row::new(format!("{cores} cores/server"));
        for system in [SystemKind::EmulatedInfiniFs, SystemKind::EmulatedCfs] {
            let (create_kops, _) = op_throughput(system, 8, cores, &ns, OpKind::Create, scale, 256);
            row = row.col(format!("{} create Kops/s", system.label()), create_kops);
        }
        rows.push(row);
    }
    rows
}

/// Fig. 12(a)/(b): throughput of each metadata operation, for every system,
/// while varying the number of metadata servers; `single_dir` selects the
/// single-large-directory or the multi-directory namespace.
pub fn fig12(scale: ExperimentScale, single_dir: bool, servers: usize) -> Vec<Row> {
    let ns = if single_dir {
        NamespaceSpec::single_large_dir(0)
    } else {
        NamespaceSpec::multi_dir(scale.dirs(), 0)
    };
    let ops = [
        OpKind::Create,
        OpKind::Delete,
        OpKind::Mkdir,
        OpKind::Rmdir,
        OpKind::Stat,
        OpKind::Statdir,
    ];
    let mut rows = Vec::new();
    for system in SystemKind::all() {
        let mut row = Row::new(system.label());
        for kind in ops {
            let (kops, _) = op_throughput(system, servers, 4, &ns, kind, scale, 256);
            row = row.col(format!("{} Kops/s", kind.name()), kops);
        }
        rows.push(row);
    }
    rows
}

/// Fig. 13: single-client operation latency on eight servers.
pub fn fig13(scale: ExperimentScale) -> Vec<Row> {
    let ns = NamespaceSpec::multi_dir(16, 0);
    let ops = [
        OpKind::Stat,
        OpKind::Statdir,
        OpKind::Create,
        OpKind::Mkdir,
        OpKind::Delete,
        OpKind::Rmdir,
    ];
    let mut rows = Vec::new();
    for system in SystemKind::all() {
        let mut row = Row::new(system.label());
        for kind in ops {
            let (_, mean_us) = op_throughput(system, 8, 4, &ns, kind, scale, 1);
            row = row.col(format!("{} us", kind.name()), mean_us);
        }
        rows.push(row);
    }
    rows
}

/// Fig. 14: contribution breakdown — Baseline (synchronous), +Async,
/// +Compaction — file creates in one shared directory, varying cores.
pub fn fig14(scale: ExperimentScale) -> Vec<Row> {
    use switchfs_server::UpdateMode;
    let ns = NamespaceSpec::single_large_dir(0);
    let variants: [(&str, SystemKind, Option<UpdateMode>); 3] = [
        ("Baseline", SystemKind::EmulatedCfs, None),
        (
            "+Async",
            SystemKind::SwitchFs,
            Some(UpdateMode::AsyncNoCompaction),
        ),
        (
            "+Compaction",
            SystemKind::SwitchFs,
            Some(UpdateMode::AsyncCompacted),
        ),
    ];
    let mut rows = Vec::new();
    for cores in [2usize, 4, 6] {
        let mut row = Row::new(format!("{cores} cores"));
        for (label, system, mode) in &variants {
            let mut cfg = ClusterConfig::paper_default(*system);
            cfg.servers = 8;
            cfg.cores_per_server = cores;
            cfg.clients = 4;
            cfg.update_mode_override = *mode;
            let mut cluster = Cluster::new(cfg);
            cluster.preload_dir(&ns.dir_path(0));
            let mut builder = WorkloadBuilder::new(ns.clone(), 3);
            let items = builder.uniform(OpKind::Create, scale.ops());
            let report = cluster.run_workload(items, 256, None);
            row = row
                .col(format!("{label} Kops/s"), report.kops)
                .col(format!("{label} mean us"), report.mean_latency_us());
        }
        rows.push(row);
    }
    rows
}

/// §7.3.2: impact of dirty-set overflow — create throughput/latency with
/// inserts forced to fail versus the normal path.
pub fn overflow(scale: ExperimentScale) -> Vec<Row> {
    let ns = NamespaceSpec::single_large_dir(0);
    let mut rows = Vec::new();
    for (label, force) in [("inserts succeed", false), ("inserts overflow", true)] {
        let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
        cfg.servers = 8;
        cfg.clients = 4;
        cfg.force_dirty_overflow = force;
        let mut cluster = Cluster::new(cfg);
        cluster.preload_dir(&ns.dir_path(0));
        let mut builder = WorkloadBuilder::new(ns.clone(), 5);
        let items = builder.uniform(OpKind::Create, scale.ops());
        let report = cluster.run_workload(items, 256, None);
        rows.push(
            Row::new(label)
                .col("create Kops/s", report.kops)
                .col("mean us", report.mean_latency_us()),
        );
    }
    rows
}

/// Fig. 15: tracking directory state on a dedicated server vs in the switch:
/// per-operation latency and `statdir` scalability.
pub fn fig15(scale: ExperimentScale) -> Vec<Row> {
    let ns = NamespaceSpec::multi_dir(scale.dirs(), 0);
    let mut rows = Vec::new();
    for (label, tracking) in [
        ("programmable switch", TrackingChoice::InNetwork),
        ("dedicated server", TrackingChoice::DedicatedServer),
    ] {
        for kind in [OpKind::Create, OpKind::Statdir] {
            let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
            cfg.servers = 8;
            cfg.clients = 1;
            cfg.tracking = tracking;
            let mut cluster = Cluster::new(cfg);
            let mut ns2 = ns.clone();
            ns2.files_per_dir = 8;
            preload_namespace(&mut cluster, &ns2, ns2.dirs * 8);
            let mut builder = WorkloadBuilder::new(ns2, 9);
            let items = builder.uniform(kind, scale.ops() / 4);
            let report = cluster.run_workload(items, 1, None);
            rows.push(
                Row::new(format!("{label} {}", kind.name()))
                    .col("mean us", report.mean_latency_us()),
            );
        }
        // Throughput of statdir with many in-flight requests.
        let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
        cfg.servers = 8;
        cfg.clients = 4;
        cfg.tracking = tracking;
        let mut cluster = Cluster::new(cfg);
        let mut ns2 = ns.clone();
        ns2.files_per_dir = 8;
        preload_namespace(&mut cluster, &ns2, ns2.dirs * 8);
        let mut builder = WorkloadBuilder::new(ns2, 9);
        let items = builder.uniform(OpKind::Statdir, scale.ops());
        let report = cluster.run_workload(items, 256, None);
        rows.push(Row::new(format!("{label} statdir throughput")).col("Kops/s", report.kops));
    }
    rows
}

/// Fig. 16: tracking directory state on the owner server — create latency
/// distribution under medium and heavy load.
pub fn fig16(scale: ExperimentScale) -> Vec<Row> {
    let ns = NamespaceSpec::multi_dir(scale.dirs(), 0);
    let mut rows = Vec::new();
    for (label, tracking) in [
        ("SwitchFS (in-network)", TrackingChoice::InNetwork),
        ("owner-server variant", TrackingChoice::OwnerServer),
    ] {
        for (load_label, in_flight) in [("medium load", 16usize), ("heavy load", 128)] {
            let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
            cfg.servers = 8;
            cfg.clients = 4;
            cfg.tracking = tracking;
            let mut cluster = Cluster::new(cfg);
            for d in 0..ns.dirs {
                cluster.preload_dir(&ns.dir_path(d));
            }
            let mut builder = WorkloadBuilder::new(ns.clone(), 13);
            let items = builder.uniform(OpKind::Create, scale.ops());
            let mut report = cluster.run_workload(items, in_flight, None);
            rows.push(
                Row::new(format!("{label}, {load_label}"))
                    .col("mean us", report.mean_latency_us())
                    .col("p90 us", report.latency.percentile(90.0).as_micros_f64())
                    .col("p99 us", report.latency.percentile(99.0).as_micros_f64()),
            );
        }
    }
    rows
}

/// Fig. 17: create throughput under operation bursts.
pub fn fig17(scale: ExperimentScale, in_flight: usize) -> Vec<Row> {
    let systems = [
        SystemKind::EmulatedInfiniFs,
        SystemKind::EmulatedCfs,
        SystemKind::SwitchFs,
    ];
    let mut rows = Vec::new();
    for burst in [10usize, 20, 50, 100, 1000] {
        let mut row = Row::new(format!("burst {burst}"));
        for system in systems {
            let mut cluster = cluster_for(system, 8, 4);
            let ns = NamespaceSpec::multi_dir(64, 0);
            for d in ns.all_dirs() {
                cluster.preload_dir(&d);
            }
            let mut builder = WorkloadBuilder::new(ns, 17);
            let items = builder.create_bursts(burst, scale.ops());
            let report = cluster.run_workload(items, in_flight, None);
            row = row.col(format!("{} Kops/s", system.label()), report.kops);
        }
        rows.push(row);
    }
    rows
}

/// Fig. 18: `statdir` latency after a run of preceding creates (aggregation
/// overhead), versus the number of creates and versus the server count.
pub fn fig18(scale: ExperimentScale) -> Vec<Row> {
    let mut rows = Vec::new();
    let creates_axis = [1usize, 10, 100, 1000, 10_000];
    for creates in creates_axis {
        if creates > scale.ops() * 5 {
            continue;
        }
        let mut cluster = cluster_for(SystemKind::SwitchFs, 8, 4);
        let ns = NamespaceSpec::single_large_dir(0);
        cluster.preload_dir(&ns.dir_path(0));
        let mut builder = WorkloadBuilder::new(ns, 19);
        let items = builder.creates_then_statdir(creates);
        let report = cluster.run_workload(items, 64, None);
        let statdir_us = report.op(OpKind::Statdir).map(|o| o.mean_us).unwrap_or(0.0);
        rows.push(Row::new(format!("{creates} preceding creates")).col("statdir us", statdir_us));
    }
    for servers in [4usize, 8, 12, 16] {
        let mut cluster = cluster_for(SystemKind::SwitchFs, servers, 4);
        let ns = NamespaceSpec::single_large_dir(0);
        cluster.preload_dir(&ns.dir_path(0));
        let mut builder = WorkloadBuilder::new(ns, 19);
        let items = builder.creates_then_statdir(100);
        let report = cluster.run_workload(items, 64, None);
        let statdir_us = report.op(OpKind::Statdir).map(|o| o.mean_us).unwrap_or(0.0);
        rows.push(
            Row::new(format!("{servers} servers, 100 creates")).col("statdir us", statdir_us),
        );
    }
    rows
}

/// Fig. 19 / Tab. 5: end-to-end throughput on the synthetic data-center,
/// CNN-training and thumbnail workloads.
pub fn fig19(scale: ExperimentScale) -> Vec<Row> {
    let mut rows = Vec::new();
    let data_latency = Some(SimDuration::micros(30));
    let workloads: [(&str, bool); 3] = [
        ("synthetic", false),
        ("cnn-training", true),
        ("thumbnail", true),
    ];
    for (wl, with_data) in workloads {
        let mut row = Row::new(wl);
        for system in [
            SystemKind::CephFsLike,
            SystemKind::EmulatedInfiniFs,
            SystemKind::EmulatedCfs,
            SystemKind::SwitchFs,
        ] {
            let mut cluster = cluster_for(system, 8, 4);
            let ns = NamespaceSpec::multi_dir(scale.dirs(), 0);
            let mut ns2 = ns.clone();
            ns2.files_per_dir = 8;
            preload_namespace(&mut cluster, &ns2, ns2.dirs * 8);
            let mut builder = WorkloadBuilder::new(ns2, 23).with_skew(0.8, 0.2);
            let items = match wl {
                "synthetic" => builder.mixed(&OpMix::datacenter_services(), scale.ops()),
                "cnn-training" => builder.cnn_training_trace(scale.ops() / 4, 1),
                _ => builder.thumbnail_trace(scale.ops() / 5),
            };
            let report =
                cluster.run_workload(items, 256, if with_data { data_latency } else { None });
            row = row.col(format!("{} Kops/s", system.label()), report.kops);
        }
        rows.push(row);
    }
    rows
}

/// §7.7-style availability figure: create throughput in three windows —
/// healthy, with one metadata server crashed (requests to it time out and
/// retry), and after its recovery — plus the recovery work itself. The dip
/// and the post-recovery restoration are the availability story the chaos
/// subsystem sweeps at scale.
pub fn availability(scale: ExperimentScale) -> Vec<Row> {
    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 8;
    cfg.clients = 4;
    let mut cluster = Cluster::new(cfg);
    let ns = NamespaceSpec::multi_dir(64, 0);
    for d in ns.all_dirs() {
        cluster.preload_dir(&d);
    }
    // Preloads bypass the WAL; checkpoint so the crash below cannot erase
    // the namespace the workload runs against.
    cluster.checkpoint_all();
    let mut builder = WorkloadBuilder::new(ns, 31);
    let window_ops = scale.ops() / 2;

    let healthy = cluster.run_workload(builder.uniform(OpKind::Create, window_ops), 256, None);
    cluster.crash_server(0);
    let degraded = cluster.run_workload(builder.uniform(OpKind::Create, window_ops), 256, None);
    let report = cluster.recover_server(0);
    let recovered = cluster.run_workload(builder.uniform(OpKind::Create, window_ops), 256, None);

    vec![
        Row::new("healthy")
            .col("create Kops/s", healthy.kops)
            .col("errors", healthy.errors as f64),
        Row::new("one server down")
            .col("create Kops/s", degraded.kops)
            .col("errors", degraded.errors as f64),
        Row::new("after recovery")
            .col("create Kops/s", recovered.kops)
            .col("errors", recovered.errors as f64),
        Row::new("recovery work")
            .col("WAL records replayed", report.wal_records_replayed as f64)
            .col("WAL KB replayed", report.wal_bytes_replayed as f64 / 1024.0)
            .col("inodes recovered", report.inodes_recovered as f64)
            .col("virtual ms", report.duration_ns as f64 / 1e6),
    ]
}

/// Elastic scale-out: throughput while a loaded cluster absorbs a new
/// server through live shard migration (epoch-versioned placement). The
/// shards-moved column demonstrates bounded movement: only ~1/(N+1) of the
/// virtual shards migrate, where the old modulo placement would have
/// reshuffled nearly every key.
pub fn rebalance(scale: ExperimentScale) -> Vec<Row> {
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 8;
    cfg.clients = 4;
    let mut cluster = Cluster::new(cfg);
    let ns = NamespaceSpec::multi_dir(64, 0);
    for d in ns.all_dirs() {
        cluster.preload_dir(&d);
    }
    cluster.checkpoint_all();
    let mut builder = WorkloadBuilder::new(ns, 37);
    let window_ops = scale.ops() / 2;

    let healthy = cluster.run_workload(builder.uniform(OpKind::Create, window_ops), 256, None);

    // Provision the ninth server and rebalance onto it *while* the next
    // workload window runs: the migration and the load interleave inside
    // one simulation run.
    let before_shards = cluster.placement().num_shards();
    cluster.add_server();
    let moved: Rc<RefCell<Option<usize>>> = Rc::new(RefCell::new(None));
    {
        let placement = cluster.placement();
        let servers = cluster.servers().to_vec();
        let moved = moved.clone();
        cluster.sim.spawn(async move {
            let n = switchfs_core::run_rebalance(&placement, &servers).await;
            *moved.borrow_mut() = Some(n);
        });
    }
    let degraded = cluster.run_workload(builder.uniform(OpKind::Create, window_ops), 256, None);
    // Let a migration that outlived the window finish before measuring the
    // settled cluster.
    while moved.borrow().is_none() {
        cluster.settle(SimDuration::millis(5));
    }
    let shards_moved = moved.borrow().expect("rebalance completed");
    let absorbed = cluster.run_workload(builder.uniform(OpKind::Create, window_ops), 256, None);

    vec![
        Row::new("healthy (8 servers)")
            .col("create Kops/s", healthy.kops)
            .col("errors", healthy.errors as f64),
        Row::new("during rebalance (+1 server)")
            .col("create Kops/s", degraded.kops)
            .col("errors", degraded.errors as f64),
        Row::new("after rebalance (9 servers)")
            .col("create Kops/s", absorbed.kops)
            .col("errors", absorbed.errors as f64),
        Row::new("shard movement")
            .col("shards moved", shards_moved as f64)
            .col("total shards", before_shards as f64)
            .col("moved fraction", shards_moved as f64 / before_shards as f64)
            .col("map epoch", cluster.placement().epoch() as f64),
    ]
}

/// Elastic shrink: throughput while a loaded cluster gracefully
/// decommissions one of its servers — every shard the victim owns drains to
/// the survivors in one bucketing scan, its change-logs flush, the map
/// retires the id, and the victim becomes a WrongOwner redirect tombstone.
/// The errors columns demonstrate that clients ride the shrink without a
/// single failed operation (freeze-window drops are absorbed by
/// retransmission; stale maps refresh via WrongOwner).
pub fn decommission(scale: ExperimentScale) -> Vec<Row> {
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 8;
    cfg.clients = 4;
    let mut cluster = Cluster::new(cfg);
    let ns = NamespaceSpec::multi_dir(64, 0);
    for d in ns.all_dirs() {
        cluster.preload_dir(&d);
    }
    cluster.checkpoint_all();
    let mut builder = WorkloadBuilder::new(ns, 41);
    let window_ops = scale.ops() / 2;

    let healthy = cluster.run_workload(builder.uniform(OpKind::Create, window_ops), 256, None);

    // Decommission server 0 *while* the next workload window runs: the
    // drain and the load interleave inside one simulation run.
    let victim = 0usize;
    let victim_id = switchfs_proto::ServerId(victim as u32);
    let total_shards = cluster.placement().num_shards();
    let owned_before = cluster.placement().shards_owned(victim_id);
    let outcome: Rc<RefCell<Option<switchfs_core::DecommissionReport>>> =
        Rc::new(RefCell::new(None));
    {
        let placement = cluster.placement();
        let servers = cluster.servers().to_vec();
        let outcome = outcome.clone();
        cluster.sim.spawn(async move {
            let report = switchfs_core::run_decommission(&placement, &servers, victim).await;
            *outcome.borrow_mut() = Some(report);
        });
    }
    let during = cluster.run_workload(builder.uniform(OpKind::Create, window_ops), 256, None);
    // Let a drain that outlived the window finish before measuring the
    // settled (smaller) cluster.
    while outcome.borrow().is_none() {
        cluster.settle(SimDuration::millis(5));
    }
    let report = outcome.borrow().expect("decommission completed");
    if report.completed {
        cluster.finalize_decommission(victim);
    }
    let after = cluster.run_workload(builder.uniform(OpKind::Create, window_ops), 256, None);

    vec![
        Row::new("healthy (8 servers)")
            .col("create Kops/s", healthy.kops)
            .col("errors", healthy.errors as f64),
        Row::new("during decommission (-1 server)")
            .col("create Kops/s", during.kops)
            .col("errors", during.errors as f64),
        Row::new("after decommission (7 servers)")
            .col("create Kops/s", after.kops)
            .col("errors", after.errors as f64),
        Row::new("drain")
            .col("shards drained", report.shards_moved as f64)
            .col("victim shards before", owned_before as f64)
            .col("total shards", total_shards as f64)
            .col("completed", f64::from(u8::from(report.completed)))
            .col("map epoch", cluster.placement().epoch() as f64),
    ]
}

/// §7.7: crash-recovery time after a server failure and a switch failure.
pub fn recovery(scale: ExperimentScale) -> Vec<Row> {
    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 8;
    cfg.clients = 4;
    let mut cluster = Cluster::new(cfg);
    let ns = NamespaceSpec::multi_dir(64, 0);
    for d in ns.all_dirs() {
        cluster.preload_dir(&d);
    }
    let mut builder = WorkloadBuilder::new(ns, 29);
    let items = builder.uniform(OpKind::Create, scale.ops());
    cluster.run_workload(items, 256, None);

    cluster.crash_server(0);
    let report = cluster.recover_server(0);
    let switch_time = cluster.crash_and_recover_switch();
    vec![
        Row::new("server recovery")
            .col("WAL records replayed", report.wal_records_replayed as f64)
            .col("inodes recovered", report.inodes_recovered as f64)
            .col(
                "change-log entries recovered",
                report.changelog_entries_recovered as f64,
            )
            .col("virtual seconds", report.duration_ns as f64 / 1e9),
        Row::new("switch recovery").col("virtual seconds", switch_time.as_secs_f64()),
    ]
}

/// Unified metrics registry: one named row per registered metric, from a
/// small SwitchFS run with the flight recorder *enabled* — so this
/// experiment doubles as the CI proof that a tracing-enabled run completes.
/// Values are workload-dependent; `ci/check_perf.py` checks presence of the
/// core names and basic sanity (ops issued, WAL flushed ≤ appended), not
/// exact values.
pub fn metrics(scale: ExperimentScale) -> Vec<Row> {
    let mut cfg = ClusterConfig::paper_default(SystemKind::SwitchFs);
    cfg.servers = 4;
    cfg.clients = 2;
    cfg.trace_capacity = Some(switchfs_obs::DEFAULT_RING_CAPACITY);
    let mut cluster = Cluster::new(cfg);
    let ns = NamespaceSpec::multi_dir(16, 0);
    for d in ns.all_dirs() {
        cluster.preload_dir(&d);
    }
    let mut builder = WorkloadBuilder::new(ns, 41);
    let items = builder.uniform(OpKind::Create, scale.ops() / 4);
    cluster.run_workload(items, 64, None);
    cluster
        .metrics_snapshot()
        .snapshot()
        .into_iter()
        .map(|(name, value)| Row::new(name).col("value", value.scalar()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab2_reports_the_pigeonhole_bound() {
        let rows = tab2();
        assert_eq!(rows.len(), 3);
        let bound = rows[2].values[0].1;
        assert!(bound > 85.0, "lower bound {bound} should exceed 85%");
    }

    #[test]
    fn row_builder_collects_columns() {
        let r = Row::new("x").col("a", 1.0).col("b", 2.0);
        assert_eq!(r.values.len(), 2);
        assert_eq!(r.values[1].0, "b");
    }

    #[test]
    fn overflow_penalty_is_visible_even_at_tiny_scale() {
        let rows = overflow(ExperimentScale::Quick);
        let normal = rows[0].values[0].1;
        let overflowed = rows[1].values[0].1;
        assert!(
            overflowed < normal,
            "forced overflow ({overflowed} Kops/s) must not beat the normal path ({normal} Kops/s)"
        );
    }
}
