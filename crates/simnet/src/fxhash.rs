//! A fast, deterministic hasher for the simulation's hot maps.
//!
//! The simulator spends a measurable share of host CPU hashing small keys
//! (node ids, operation ids, metadata keys) through std's SipHash. This
//! FxHash-style multiply-xor hasher is ~5× cheaper and — unlike
//! `RandomState` — seed-free, so map iteration orders are identical across
//! processes, which strengthens the determinism story rather than weakening
//! it. (Collision hardening is irrelevant here: keys come from the
//! simulation itself, never from an adversary.)

// switchfs-lint: allow(determinism) alias definition site; the aliases below pin the explicit FxBuildHasher
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash-style hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Deterministic `BuildHasher` for [`FxHashMap`] / [`FxHashSet`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast deterministic hasher.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_and_spread() {
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(7), h(7), "same input, same hash");
        let distinct: HashSet<u64> = (0..1000).map(h).collect();
        assert_eq!(distinct.len(), 1000, "no trivial collisions on small ints");
    }

    #[test]
    fn string_keys_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("ab".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.get("ab"), Some(&2));
    }

    #[test]
    fn partial_chunks_do_not_collide_with_padding() {
        let h = |b: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        };
        // A short key must not hash like its zero-padded 8-byte form.
        assert_ne!(h(b"abc"), h(b"abc\0\0\0\0\0"));
    }
}
