//! Deterministic discrete-event simulation substrate for SwitchFS.
//!
//! The SwitchFS paper evaluates an 8–16 node metadata cluster connected by a
//! Tofino programmable switch over 100 GbE. This crate provides the
//! laptop-scale substitute: a single-threaded, virtual-time, asynchronous
//! runtime in which every SwitchFS component (clients, metadata servers, the
//! programmable switch) runs as a cooperative task, and in which CPU time,
//! lock contention and network round-trips are charged to a simulated clock.
//!
//! The crate provides:
//!
//! * [`Sim`] / [`SimHandle`] — the virtual-time executor. Tasks are ordinary
//!   Rust futures; `await` points correspond to simulated waits.
//! * [`time::SimTime`] and [`time::SimDuration`] — nanosecond-resolution
//!   virtual time.
//! * [`sync`] — FIFO-fair simulation-aware synchronization primitives
//!   (mutex, rwlock, semaphore, oneshot and mpsc channels, notify).
//! * [`cpu::CpuPool`] — an *N*-core processor model with FIFO run-queue
//!   semantics; server code paths charge calibrated service times to it.
//! * [`net`] — a message-passing network with per-hop latency, programmable
//!   switch hooks, loss / duplication / reordering injection, and single-rack
//!   or leaf–spine topologies.
//! * [`metrics`] — latency histograms and throughput meters used by the
//!   evaluation harness.
//!
//! Determinism: given the same seed and the same sequence of operations, a
//! simulation produces bit-identical schedules, which makes the protocol
//! tests and the figures harness reproducible.
//!
//! # Examples
//!
//! ```
//! use switchfs_simnet::{Sim, SimDuration};
//!
//! let sim = Sim::new(7);
//! let h = sim.handle();
//! sim.spawn(async move {
//!     h.sleep(SimDuration::micros(3)).await;
//!     assert_eq!(h.now().as_nanos(), 3_000);
//! });
//! sim.run();
//! ```

pub mod cpu;
pub mod executor;
pub mod fxhash;
pub mod metrics;
pub mod net;
pub mod sync;
pub mod time;

pub use cpu::CpuPool;
pub use executor::{timeout, Sim, SimHandle, TaskId};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use metrics::{LatencyHistogram, ThroughputMeter};
pub use net::{
    Endpoint, NetFaults, Network, NodeId, Packet, SwitchAction, SwitchId, SwitchLogic, Topology,
};
pub use time::{SimDuration, SimTime};
