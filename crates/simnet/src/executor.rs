//! The virtual-time task executor.
//!
//! A [`Sim`] owns a set of cooperative tasks (ordinary `Future`s), a ready
//! queue, and a timer wheel ordered by virtual time. Tasks run until they
//! block on a simulation primitive (a timer, a channel, a lock, a CPU core,
//! a network delivery); when no task is runnable, the clock jumps to the next
//! timer deadline. The executor is single-threaded and deterministic: task
//! wake-ups are processed in FIFO order and ties between timers are broken by
//! registration order.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sync::oneshot;
use crate::time::{SimDuration, SimTime};

/// Identifier of a spawned task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// The queue of tasks that have been woken and are ready to be polled.
///
/// This is the only piece of executor state shared with [`Waker`]s, which
/// must be `Send + Sync`; everything else lives behind a single-threaded
/// `RefCell`.
type ReadyQueue = Arc<Mutex<VecDeque<TaskId>>>;

struct TaskWaker {
    task: TaskId,
    ready: ReadyQueue,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(self.task);
    }
}

struct TimerEntry {
    deadline: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct SimState {
    now: SimTime,
    next_task: u64,
    next_timer_seq: u64,
    tasks: HashMap<TaskId, LocalFuture>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    rng: StdRng,
    spawned_total: u64,
    polls_total: u64,
}

/// A deterministic virtual-time simulation.
///
/// Construct one per experiment or test, spawn the component tasks on it, and
/// call [`Sim::run`] (or [`Sim::run_until`]) to execute them to completion.
pub struct Sim {
    state: Rc<RefCell<SimState>>,
    ready: ReadyQueue,
}

/// A cheap, cloneable handle to a [`Sim`].
///
/// Handles are what component code holds: they can read the clock, spawn
/// tasks, sleep, and draw deterministic random numbers.
#[derive(Clone)]
pub struct SimHandle {
    state: Rc<RefCell<SimState>>,
    ready: ReadyQueue,
}

/// Statistics describing a completed [`Sim::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Virtual time at which the run stopped.
    pub end_time: SimTime,
    /// Total tasks spawned over the simulation's lifetime.
    pub tasks_spawned: u64,
    /// Total number of future polls performed.
    pub polls: u64,
    /// Tasks still blocked when the run stopped (deadlocked or waiting on a
    /// timer beyond the deadline).
    pub tasks_pending: usize,
}

impl Sim {
    /// Creates a new simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        let state = Rc::new(RefCell::new(SimState {
            now: SimTime::ZERO,
            next_task: 0,
            next_timer_seq: 0,
            tasks: HashMap::new(),
            timers: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(seed),
            spawned_total: 0,
            polls_total: 0,
        }));
        Sim {
            state,
            ready: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Returns a handle that component code can hold on to.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            state: self.state.clone(),
            ready: self.ready.clone(),
        }
    }

    /// Spawns a task onto the simulation.
    pub fn spawn<F>(&self, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        self.handle().spawn(fut)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.state.borrow().now
    }

    /// Runs the simulation until no task is runnable and no timer is pending.
    pub fn run(&self) -> RunStats {
        self.run_until(SimTime::MAX)
    }

    /// Runs the simulation until quiescence or until the clock would pass
    /// `deadline`, whichever comes first. The clock is left at
    /// `min(deadline, quiescence time)`.
    pub fn run_until(&self, deadline: SimTime) -> RunStats {
        loop {
            // Drain the ready queue, polling tasks in FIFO wake order.
            loop {
                let task_id = {
                    let mut q = self.ready.lock().expect("ready queue poisoned");
                    match q.pop_front() {
                        Some(t) => t,
                        None => break,
                    }
                };
                self.poll_task(task_id);
            }

            // No runnable task: advance the clock to the next timer.
            let next_deadline = {
                let state = self.state.borrow();
                state.timers.peek().map(|Reverse(e)| e.deadline)
            };
            match next_deadline {
                Some(t) if t <= deadline => {
                    self.fire_timers_at(t);
                }
                Some(_) | None => {
                    // Either quiescent or the next event is beyond the
                    // requested deadline.
                    let mut state = self.state.borrow_mut();
                    if deadline != SimTime::MAX && state.now < deadline && next_deadline.is_some() {
                        state.now = deadline;
                    }
                    return RunStats {
                        end_time: state.now,
                        tasks_spawned: state.spawned_total,
                        polls: state.polls_total,
                        tasks_pending: state.tasks.len(),
                    };
                }
            }
        }
    }

    fn fire_timers_at(&self, t: SimTime) {
        let mut fired = Vec::new();
        {
            let mut state = self.state.borrow_mut();
            state.now = t;
            while let Some(Reverse(entry)) = state.timers.peek() {
                if entry.deadline > t {
                    break;
                }
                let Reverse(entry) = state.timers.pop().expect("peeked");
                fired.push(entry.waker);
            }
        }
        for w in fired {
            w.wake();
        }
    }

    fn poll_task(&self, task_id: TaskId) {
        // Remove the task from the table before polling so that code inside
        // the future can freely spawn new tasks (which mutates the table).
        let fut = {
            let mut state = self.state.borrow_mut();
            state.polls_total += 1;
            state.tasks.remove(&task_id)
        };
        let Some(mut fut) = fut else {
            // Already completed; a stale wake-up.
            return;
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            task: task_id,
            ready: self.ready.clone(),
        }));
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {}
            Poll::Pending => {
                self.state.borrow_mut().tasks.insert(task_id, fut);
            }
        }
    }
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.state.borrow().now
    }

    /// Spawns a task; it becomes runnable immediately.
    pub fn spawn<F>(&self, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        let id = {
            let mut state = self.state.borrow_mut();
            let id = TaskId(state.next_task);
            state.next_task += 1;
            state.spawned_total += 1;
            state.tasks.insert(id, Box::pin(fut));
            id
        };
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
        id
    }

    /// Spawns a task that produces a value and returns a handle to await it.
    pub fn spawn_with_result<F, T>(&self, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let (tx, rx) = oneshot::channel();
        self.spawn(async move {
            let value = fut.await;
            // The receiver may have been dropped; that is not an error.
            let _ = tx.send(value);
        });
        JoinHandle { rx }
    }

    /// Sleeps until the given instant.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            handle: self.clone(),
            deadline,
        }
    }

    /// Sleeps for the given duration of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        let deadline = self.now() + d;
        self.sleep_until(deadline)
    }

    /// Yields once, allowing other ready tasks to run at the same instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Draws a uniformly distributed `u64` from the simulation RNG.
    pub fn rand_u64(&self) -> u64 {
        self.state.borrow_mut().rng.gen()
    }

    /// Draws a uniform float in `[0, 1)` from the simulation RNG.
    pub fn rand_f64(&self) -> f64 {
        self.state.borrow_mut().rng.gen::<f64>()
    }

    /// Draws a uniform integer in `[0, n)` from the simulation RNG.
    pub fn rand_below(&self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.state.borrow_mut().rng.gen_range(0..n)
        }
    }

    /// Registers a waker to be woken at `deadline`. Used by simulation
    /// primitives that need timer semantics (e.g. retransmission timeouts).
    pub(crate) fn register_timer(&self, deadline: SimTime, waker: Waker) {
        let mut state = self.state.borrow_mut();
        let seq = state.next_timer_seq;
        state.next_timer_seq += 1;
        state.timers.push(Reverse(TimerEntry {
            deadline,
            seq,
            waker,
        }));
    }
}

/// Future returned by [`SimHandle::sleep`] and friends.
pub struct Sleep {
    handle: SimHandle,
    deadline: SimTime,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.handle.now() >= self.deadline {
            Poll::Ready(())
        } else {
            self.handle
                .register_timer(self.deadline, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Runs `fut` with a virtual-time deadline: returns `Some(output)` if the
/// future completes before `after` elapses, `None` otherwise.
///
/// Used to implement retransmission timeouts (§5.4.1): a sender waits for a
/// response with `timeout` and resends on `None`.
pub async fn timeout<F: Future>(
    handle: &SimHandle,
    after: SimDuration,
    fut: F,
) -> Option<F::Output> {
    let sleep = handle.sleep(after);
    let mut fut = Box::pin(fut);
    let mut sleep = Box::pin(sleep);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = fut.as_mut().poll(cx) {
            return Poll::Ready(Some(v));
        }
        if sleep.as_mut().poll(cx).is_ready() {
            return Poll::Ready(None);
        }
        Poll::Pending
    })
    .await
}

/// Future returned by [`SimHandle::yield_now`]: pending exactly once, which
/// pushes the task to the back of the ready queue at the current instant.
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Handle to a value produced by a task spawned with
/// [`SimHandle::spawn_with_result`].
pub struct JoinHandle<T> {
    rx: oneshot::Receiver<T>,
}

impl<T: 'static> JoinHandle<T> {
    /// Waits for the task to finish and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the task itself panicked or was dropped without completing.
    pub async fn join(self) -> T {
        self.rx.recv().await.expect("joined task did not complete")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn clock_starts_at_zero_and_advances_with_sleep() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let observed = Rc::new(Cell::new(0u64));
        let obs = observed.clone();
        sim.spawn(async move {
            assert_eq!(h.now(), SimTime::ZERO);
            h.sleep(SimDuration::micros(10)).await;
            obs.set(h.now().as_nanos());
        });
        let stats = sim.run();
        assert_eq!(observed.get(), 10_000);
        assert_eq!(stats.end_time, SimTime::from_micros(10));
        assert_eq!(stats.tasks_pending, 0);
    }

    #[test]
    fn tasks_interleave_in_time_order() {
        let sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, delay) in [30u64, 10, 20].iter().enumerate() {
            let h = sim.handle();
            let order = order.clone();
            let delay = *delay;
            sim.spawn(async move {
                h.sleep(SimDuration::micros(delay)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![1, 2, 0]);
    }

    #[test]
    fn nested_spawn_runs() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let hit = Rc::new(Cell::new(false));
        let hit2 = hit.clone();
        sim.spawn(async move {
            let inner = h.clone();
            h.spawn(async move {
                inner.sleep(SimDuration::micros(1)).await;
                hit2.set(true);
            });
        });
        sim.run();
        assert!(hit.get());
    }

    #[test]
    fn spawn_with_result_joins() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let out = Rc::new(Cell::new(0u32));
        let out2 = out.clone();
        sim.spawn(async move {
            let jh = h.spawn_with_result({
                let h = h.clone();
                async move {
                    h.sleep(SimDuration::micros(5)).await;
                    42u32
                }
            });
            out2.set(jh.join().await);
        });
        sim.run();
        assert_eq!(out.get(), 42);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let done = Rc::new(Cell::new(false));
        let done2 = done.clone();
        sim.spawn(async move {
            h.sleep(SimDuration::millis(10)).await;
            done2.set(true);
        });
        let stats = sim.run_until(SimTime::from_millis(1));
        assert!(!done.get());
        assert_eq!(stats.tasks_pending, 1);
        // Continuing the run completes the task.
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn yield_now_allows_same_time_interleaving() {
        let sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2 {
            let h = sim.handle();
            let order = order.clone();
            sim.spawn(async move {
                order.borrow_mut().push((i, 0));
                h.yield_now().await;
                order.borrow_mut().push((i, 1));
            });
        }
        sim.run();
        let o = order.borrow();
        // Both tasks get their first step before either gets its second.
        assert_eq!(o[0], (0, 0));
        assert_eq!(o[1], (1, 0));
        assert_eq!(o.len(), 4);
    }

    #[test]
    fn rng_is_deterministic_across_runs() {
        let draw = |seed| {
            let sim = Sim::new(seed);
            let h = sim.handle();
            (0..8).map(|_| h.rand_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(99), draw(99));
        assert_ne!(draw(99), draw(100));
    }

    #[test]
    fn timeout_returns_none_when_deadline_passes() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let out = Rc::new(RefCell::new(Vec::new()));
        let out2 = out.clone();
        sim.spawn(async move {
            // A future that completes in time.
            let fast = timeout(&h, SimDuration::micros(10), h.sleep(SimDuration::micros(2))).await;
            out2.borrow_mut().push(fast.is_some());
            // A future that does not.
            let slow = timeout(&h, SimDuration::micros(10), h.sleep(SimDuration::millis(5))).await;
            out2.borrow_mut().push(slow.is_some());
        });
        sim.run();
        assert_eq!(*out.borrow(), vec![true, false]);
    }

    #[test]
    fn rand_below_zero_is_zero() {
        let sim = Sim::new(3);
        assert_eq!(sim.handle().rand_below(0), 0);
        assert!(sim.handle().rand_below(5) < 5);
    }
}
