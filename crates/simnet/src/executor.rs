//! The virtual-time task executor.
//!
//! A [`Sim`] owns a set of cooperative tasks (ordinary `Future`s), a ready
//! queue, and a timer wheel ordered by virtual time. Tasks run until they
//! block on a simulation primitive (a timer, a channel, a lock, a CPU core,
//! a network delivery); when no task is runnable, the clock jumps to the next
//! timer deadline. The executor is single-threaded and deterministic: task
//! wake-ups are processed in FIFO order and ties between timers are broken by
//! registration order.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sync::oneshot;
use crate::time::{SimDuration, SimTime};

/// Identifier of a spawned task (unique over the simulation's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// The queue of `(slot, task id)` pairs that have been woken and are ready
/// to be polled. The id disambiguates stale wake-ups after a slot is reused.
///
/// This is the only piece of executor state shared with [`Waker`]s, which
/// must be `Send + Sync`; everything else lives behind a single-threaded
/// `RefCell`.
type ReadyQueue = Arc<Mutex<VecDeque<(u32, u64)>>>;

struct TaskWaker {
    slot: u32,
    id: u64,
    ready: ReadyQueue,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back((self.slot, self.id));
    }
}

/// One live task: its future (taken out while being polled) and its waker,
/// created once at spawn and reused for every poll — polling allocates
/// nothing.
struct Task {
    id: u64,
    fut: Option<LocalFuture>,
    waker: Waker,
}

/// Shared waker slot of one registered timer. The owning [`Sleep`] clears
/// it on drop (cancellation) or completion; a cleared slot's heap entry
/// still advances the clock when popped but wakes nobody. Spent slots are
/// pooled and reused, so steady-state sleeping allocates nothing.
type TimerSlot = Rc<RefCell<Option<Waker>>>;

/// Upper bound on pooled timer slots (a memory cap, not a correctness knob).
const SLOT_POOL_CAP: usize = 4096;

struct TimerEntry {
    deadline: SimTime,
    seq: u64,
    slot: TimerSlot,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct SimState {
    now: SimTime,
    next_task: u64,
    next_timer_seq: u64,
    /// Slab of live tasks; `free_slots` lists vacant indices for reuse.
    tasks: Vec<Option<Task>>,
    free_slots: Vec<u32>,
    live_tasks: usize,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    /// Scratch buffer reused by `fire_timers_at`.
    fired_scratch: Vec<TimerSlot>,
    /// Pool of spent timer slots, recycled to keep sleeps alloc-free.
    slot_pool: Vec<TimerSlot>,
    rng: StdRng,
    spawned_total: u64,
    polls_total: u64,
}

/// A deterministic virtual-time simulation.
///
/// Construct one per experiment or test, spawn the component tasks on it, and
/// call [`Sim::run`] (or [`Sim::run_until`]) to execute them to completion.
pub struct Sim {
    state: Rc<RefCell<SimState>>,
    ready: ReadyQueue,
}

/// A cheap, cloneable handle to a [`Sim`].
///
/// Handles are what component code holds: they can read the clock, spawn
/// tasks, sleep, and draw deterministic random numbers.
#[derive(Clone)]
pub struct SimHandle {
    state: Rc<RefCell<SimState>>,
    ready: ReadyQueue,
}

/// Statistics describing a completed [`Sim::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Virtual time at which the run stopped.
    pub end_time: SimTime,
    /// Total tasks spawned over the simulation's lifetime.
    pub tasks_spawned: u64,
    /// Total number of future polls performed.
    pub polls: u64,
    /// Tasks still blocked when the run stopped (deadlocked or waiting on a
    /// timer beyond the deadline).
    pub tasks_pending: usize,
}

impl Sim {
    /// Creates a new simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        let state = Rc::new(RefCell::new(SimState {
            now: SimTime::ZERO,
            next_task: 0,
            next_timer_seq: 0,
            tasks: Vec::new(),
            free_slots: Vec::new(),
            live_tasks: 0,
            timers: BinaryHeap::new(),
            fired_scratch: Vec::new(),
            slot_pool: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            spawned_total: 0,
            polls_total: 0,
        }));
        Sim {
            state,
            ready: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Returns a handle that component code can hold on to.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            state: self.state.clone(),
            ready: self.ready.clone(),
        }
    }

    /// Spawns a task onto the simulation.
    pub fn spawn<F>(&self, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        self.handle().spawn(fut)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.state.borrow().now
    }

    /// Runs the simulation until no task is runnable and no timer is pending.
    pub fn run(&self) -> RunStats {
        self.run_until(SimTime::MAX)
    }

    /// Runs the simulation until quiescence or until the clock would pass
    /// `deadline`, whichever comes first. The clock is left at
    /// `min(deadline, quiescence time)`.
    pub fn run_until(&self, deadline: SimTime) -> RunStats {
        loop {
            // Drain the ready queue, polling tasks in FIFO wake order.
            loop {
                let (slot, id) = {
                    let mut q = self.ready.lock().expect("ready queue poisoned");
                    match q.pop_front() {
                        Some(t) => t,
                        None => break,
                    }
                };
                self.poll_task(slot, id);
            }

            // No runnable task: advance the clock to the next timer.
            let next_deadline = {
                let state = self.state.borrow();
                state.timers.peek().map(|Reverse(e)| e.deadline)
            };
            match next_deadline {
                Some(t) if t <= deadline => {
                    self.fire_timers_at(t);
                }
                Some(_) | None => {
                    // Either quiescent or the next event is beyond the
                    // requested deadline.
                    let mut state = self.state.borrow_mut();
                    if deadline != SimTime::MAX && state.now < deadline && next_deadline.is_some() {
                        state.now = deadline;
                    }
                    return RunStats {
                        end_time: state.now,
                        tasks_spawned: state.spawned_total,
                        polls: state.polls_total,
                        tasks_pending: state.live_tasks,
                    };
                }
            }
        }
    }

    fn fire_timers_at(&self, t: SimTime) {
        let mut fired = {
            let mut state = self.state.borrow_mut();
            state.now = t;
            let mut fired = std::mem::take(&mut state.fired_scratch);
            while let Some(Reverse(entry)) = state.timers.peek() {
                if entry.deadline > t {
                    break;
                }
                let Reverse(entry) = state.timers.pop().expect("peeked");
                fired.push(entry.slot);
            }
            fired
        };
        for slot in &fired {
            // A cancelled timer (slot already cleared) advances the clock
            // but wakes nobody.
            let waker = slot.borrow_mut().take();
            if let Some(w) = waker {
                w.wake();
            }
        }
        {
            let mut state = self.state.borrow_mut();
            // Recycle slots whose `Sleep` has already gone away; the rest
            // are returned by the `Sleep`'s drop.
            for slot in fired.drain(..) {
                if Rc::strong_count(&slot) == 1 && state.slot_pool.len() < SLOT_POOL_CAP {
                    state.slot_pool.push(slot);
                }
            }
            state.fired_scratch = fired;
        }
    }

    fn poll_task(&self, slot: u32, id: u64) {
        // Take the future out of its slot before polling so that code inside
        // it can freely spawn new tasks (which mutates the slab); the slot
        // itself stays occupied, so it cannot be reused mid-poll.
        let (mut fut, waker) = {
            let mut state = self.state.borrow_mut();
            let Some(task) = state.tasks.get_mut(slot as usize).and_then(Option::as_mut) else {
                return;
            };
            if task.id != id {
                // The slot was reused; this wake-up targets a dead task.
                return;
            }
            let Some(fut) = task.fut.take() else {
                // Already being polled higher up the stack; the wake-up that
                // queued us again will be re-observed through the waker.
                return;
            };
            let waker = task.waker.clone();
            state.polls_total += 1;
            (fut, waker)
        };
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                let mut state = self.state.borrow_mut();
                state.tasks[slot as usize] = None;
                state.free_slots.push(slot);
                state.live_tasks -= 1;
            }
            Poll::Pending => {
                let mut state = self.state.borrow_mut();
                if let Some(task) = state.tasks.get_mut(slot as usize).and_then(Option::as_mut) {
                    task.fut = Some(fut);
                }
            }
        }
    }
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.state.borrow().now
    }

    /// Spawns a task; it becomes runnable immediately.
    pub fn spawn<F>(&self, fut: F) -> TaskId
    where
        F: Future<Output = ()> + 'static,
    {
        let (slot, id) = {
            let mut state = self.state.borrow_mut();
            let id = state.next_task;
            state.next_task += 1;
            state.spawned_total += 1;
            state.live_tasks += 1;
            let slot = match state.free_slots.pop() {
                Some(s) => s,
                None => {
                    state.tasks.push(None);
                    (state.tasks.len() - 1) as u32
                }
            };
            let waker = Waker::from(Arc::new(TaskWaker {
                slot,
                id,
                ready: self.ready.clone(),
            }));
            state.tasks[slot as usize] = Some(Task {
                id,
                fut: Some(Box::pin(fut)),
                waker,
            });
            (slot, id)
        };
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back((slot, id));
        TaskId(id)
    }

    /// Spawns a task that produces a value and returns a handle to await it.
    pub fn spawn_with_result<F, T>(&self, fut: F) -> JoinHandle<T>
    where
        F: Future<Output = T> + 'static,
        T: 'static,
    {
        let (tx, rx) = oneshot::channel();
        self.spawn(async move {
            let value = fut.await;
            // The receiver may have been dropped; that is not an error.
            let _ = tx.send(value);
        });
        JoinHandle { rx }
    }

    /// Sleeps until the given instant.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            handle: self.clone(),
            deadline,
            slot: None,
        }
    }

    /// Sleeps for the given duration of virtual time.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        let deadline = self.now() + d;
        self.sleep_until(deadline)
    }

    /// Yields once, allowing other ready tasks to run at the same instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Draws a uniformly distributed `u64` from the simulation RNG.
    pub fn rand_u64(&self) -> u64 {
        self.state.borrow_mut().rng.gen()
    }

    /// Draws a uniform float in `[0, 1)` from the simulation RNG.
    pub fn rand_f64(&self) -> f64 {
        self.state.borrow_mut().rng.gen::<f64>()
    }

    /// Draws a uniform integer in `[0, n)` from the simulation RNG.
    pub fn rand_below(&self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.state.borrow_mut().rng.gen_range(0..n)
        }
    }

    /// Registers a timer to be woken at `deadline` and returns its shared
    /// waker slot (drawn from the slot pool when possible). Used by
    /// simulation primitives that need timer semantics (e.g. retransmission
    /// timeouts).
    pub(crate) fn register_timer(&self, deadline: SimTime, waker: Waker) -> TimerSlot {
        let mut state = self.state.borrow_mut();
        let slot = match state.slot_pool.pop() {
            Some(slot) => {
                *slot.borrow_mut() = Some(waker);
                slot
            }
            None => Rc::new(RefCell::new(Some(waker))),
        };
        let seq = state.next_timer_seq;
        state.next_timer_seq += 1;
        state.timers.push(Reverse(TimerEntry {
            deadline,
            seq,
            slot: Rc::clone(&slot),
        }));
        slot
    }

    /// Returns a spent slot to the pool once nothing else references it.
    pub(crate) fn recycle_slot(&self, slot: TimerSlot) {
        if Rc::strong_count(&slot) == 1 {
            let mut state = self.state.borrow_mut();
            if state.slot_pool.len() < SLOT_POOL_CAP {
                state.slot_pool.push(slot);
            }
        }
    }
}

/// Future returned by [`SimHandle::sleep`] and friends.
///
/// Registers exactly one heap entry, however many times it is polled, and
/// cancels that entry when dropped (e.g. when a `timeout` races a response
/// that arrives first) — a completed RPC leaves no pending wake-up behind.
pub struct Sleep {
    handle: SimHandle,
    deadline: SimTime,
    slot: Option<TimerSlot>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.handle.now() >= self.deadline {
            if let Some(slot) = self.slot.take() {
                slot.borrow_mut().take();
                self.handle.recycle_slot(slot);
            }
            return Poll::Ready(());
        }
        match &self.slot {
            Some(slot) => {
                // Re-polled before the deadline: refresh the waker in place.
                *slot.borrow_mut() = Some(cx.waker().clone());
            }
            None => {
                self.slot = Some(
                    self.handle
                        .register_timer(self.deadline, cx.waker().clone()),
                );
            }
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            // Lazy cancellation: clear the waker; the heap entry fires as a
            // no-op and the slot returns to the pool.
            slot.borrow_mut().take();
            self.handle.recycle_slot(slot);
        }
    }
}

/// Runs `fut` with a virtual-time deadline: returns `Some(output)` if the
/// future completes before `after` elapses, `None` otherwise.
///
/// Used to implement retransmission timeouts (§5.4.1): a sender waits for a
/// response with `timeout` and resends on `None`.
pub async fn timeout<F: Future>(
    handle: &SimHandle,
    after: SimDuration,
    fut: F,
) -> Option<F::Output> {
    // Stack-pinned: a timeout allocates nothing of its own.
    let mut sleep = std::pin::pin!(handle.sleep(after));
    let mut fut = std::pin::pin!(fut);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = fut.as_mut().poll(cx) {
            return Poll::Ready(Some(v));
        }
        if sleep.as_mut().poll(cx).is_ready() {
            return Poll::Ready(None);
        }
        Poll::Pending
    })
    .await
}

/// Future returned by [`SimHandle::yield_now`]: pending exactly once, which
/// pushes the task to the back of the ready queue at the current instant.
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Handle to a value produced by a task spawned with
/// [`SimHandle::spawn_with_result`].
pub struct JoinHandle<T> {
    rx: oneshot::Receiver<T>,
}

impl<T: 'static> JoinHandle<T> {
    /// Waits for the task to finish and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the task itself panicked or was dropped without completing.
    pub async fn join(self) -> T {
        self.rx.recv().await.expect("joined task did not complete")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn clock_starts_at_zero_and_advances_with_sleep() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let observed = Rc::new(Cell::new(0u64));
        let obs = observed.clone();
        sim.spawn(async move {
            assert_eq!(h.now(), SimTime::ZERO);
            h.sleep(SimDuration::micros(10)).await;
            obs.set(h.now().as_nanos());
        });
        let stats = sim.run();
        assert_eq!(observed.get(), 10_000);
        assert_eq!(stats.end_time, SimTime::from_micros(10));
        assert_eq!(stats.tasks_pending, 0);
    }

    #[test]
    fn tasks_interleave_in_time_order() {
        let sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, delay) in [30u64, 10, 20].iter().enumerate() {
            let h = sim.handle();
            let order = order.clone();
            let delay = *delay;
            sim.spawn(async move {
                h.sleep(SimDuration::micros(delay)).await;
                order.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![1, 2, 0]);
    }

    #[test]
    fn nested_spawn_runs() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let hit = Rc::new(Cell::new(false));
        let hit2 = hit.clone();
        sim.spawn(async move {
            let inner = h.clone();
            h.spawn(async move {
                inner.sleep(SimDuration::micros(1)).await;
                hit2.set(true);
            });
        });
        sim.run();
        assert!(hit.get());
    }

    #[test]
    fn spawn_with_result_joins() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let out = Rc::new(Cell::new(0u32));
        let out2 = out.clone();
        sim.spawn(async move {
            let jh = h.spawn_with_result({
                let h = h.clone();
                async move {
                    h.sleep(SimDuration::micros(5)).await;
                    42u32
                }
            });
            out2.set(jh.join().await);
        });
        sim.run();
        assert_eq!(out.get(), 42);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let done = Rc::new(Cell::new(false));
        let done2 = done.clone();
        sim.spawn(async move {
            h.sleep(SimDuration::millis(10)).await;
            done2.set(true);
        });
        let stats = sim.run_until(SimTime::from_millis(1));
        assert!(!done.get());
        assert_eq!(stats.tasks_pending, 1);
        // Continuing the run completes the task.
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn yield_now_allows_same_time_interleaving() {
        let sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..2 {
            let h = sim.handle();
            let order = order.clone();
            sim.spawn(async move {
                order.borrow_mut().push((i, 0));
                h.yield_now().await;
                order.borrow_mut().push((i, 1));
            });
        }
        sim.run();
        let o = order.borrow();
        // Both tasks get their first step before either gets its second.
        assert_eq!(o[0], (0, 0));
        assert_eq!(o[1], (1, 0));
        assert_eq!(o.len(), 4);
    }

    #[test]
    fn rng_is_deterministic_across_runs() {
        let draw = |seed| {
            let sim = Sim::new(seed);
            let h = sim.handle();
            (0..8).map(|_| h.rand_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(99), draw(99));
        assert_ne!(draw(99), draw(100));
    }

    #[test]
    fn timeout_returns_none_when_deadline_passes() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let out = Rc::new(RefCell::new(Vec::new()));
        let out2 = out.clone();
        sim.spawn(async move {
            // A future that completes in time.
            let fast = timeout(&h, SimDuration::micros(10), h.sleep(SimDuration::micros(2))).await;
            out2.borrow_mut().push(fast.is_some());
            // A future that does not.
            let slow = timeout(&h, SimDuration::micros(10), h.sleep(SimDuration::millis(5))).await;
            out2.borrow_mut().push(slow.is_some());
        });
        sim.run();
        assert_eq!(*out.borrow(), vec![true, false]);
    }

    #[test]
    fn rand_below_zero_is_zero() {
        let sim = Sim::new(3);
        assert_eq!(sim.handle().rand_below(0), 0);
        assert!(sim.handle().rand_below(5) < 5);
    }
}
