//! The simulated datacenter network.
//!
//! Nodes (clients, metadata servers, the dedicated coordinator of §7.3.3)
//! exchange typed messages through a [`Network`]. Every packet traverses a
//! configurable route of switches; each switch runs a [`SwitchLogic`]
//! program, which for the programmable ToR/spine switch is the SwitchFS data
//! plane (parser + router + dirty set) from the `switchfs-switch` crate and
//! for ordinary switches is plain L2 forwarding.
//!
//! The network is UDP-like, matching §5.4.1 of the paper: packets can be
//! lost, duplicated and reordered according to a [`NetFaults`] policy, and
//! higher layers are responsible for timeouts, retransmission and duplicate
//! suppression.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::executor::SimHandle;
use crate::fxhash::FxHashMap;
use crate::sync::mpsc;
use crate::time::{SimDuration, SimTime};

/// Identifier of an end host (client, metadata server, data node, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a switch in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(pub u32);

/// A packet in flight: source, destination and a typed payload.
///
/// The payload plays the role of the UDP datagram of the real system: the
/// programmable switch only ever inspects the (optional) dirty-set operation
/// header inside it, never the full filesystem request.
#[derive(Debug, Clone)]
pub struct Packet<M> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node (the L2 destination address).
    pub dst: NodeId,
    /// Typed payload.
    pub payload: M,
}

/// A forwarding decision made by a switch for one incoming packet.
#[derive(Debug, Clone)]
pub enum SwitchAction<M> {
    /// Forward a (possibly rewritten) packet towards `dst`.
    Forward {
        /// New destination node.
        dst: NodeId,
        /// Possibly rewritten payload (e.g. with the dirty-set `RET` field
        /// filled in).
        payload: M,
    },
    /// Drop the packet.
    Drop,
}

/// A packet-processing program attached to a switch.
///
/// The default implementation used for non-programmable switches forwards
/// every packet unchanged to its destination.
pub trait SwitchLogic<M> {
    /// Processes one packet arriving at this switch at time `now` and returns
    /// the forwarding decisions (possibly several, for multicast; possibly
    /// none, equivalent to a drop). The packet is passed by value so the
    /// common single-`Forward` case can move the payload through the switch
    /// instead of cloning it per hop.
    fn process(&mut self, now: SimTime, pkt: Packet<M>) -> Vec<SwitchAction<M>>;

    /// Human-readable name used in traces.
    fn name(&self) -> &str {
        "switch"
    }
}

/// Plain L2 forwarding: send the packet to its destination unchanged.
#[derive(Debug, Default, Clone, Copy)]
pub struct L2Forward;

impl<M: Clone> SwitchLogic<M> for L2Forward {
    fn process(&mut self, _now: SimTime, pkt: Packet<M>) -> Vec<SwitchAction<M>> {
        vec![SwitchAction::Forward {
            dst: pkt.dst,
            payload: pkt.payload,
        }]
    }

    fn name(&self) -> &str {
        "l2-forward"
    }
}

/// Packet loss / duplication / reordering policy, applied per transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaults {
    /// Probability that a packet is silently dropped.
    pub drop_prob: f64,
    /// Probability that a packet is delivered twice.
    pub duplicate_prob: f64,
    /// Maximum extra random delay added to a delivery, producing reordering
    /// between packets of different operations.
    pub reorder_jitter: SimDuration,
}

impl Default for NetFaults {
    fn default() -> Self {
        NetFaults {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_jitter: SimDuration::ZERO,
        }
    }
}

impl NetFaults {
    /// A perfectly reliable network.
    pub fn reliable() -> Self {
        Self::default()
    }

    /// A lossy network with the given drop and duplication probabilities and
    /// reordering jitter.
    pub fn lossy(drop_prob: f64, duplicate_prob: f64, reorder_jitter: SimDuration) -> Self {
        NetFaults {
            drop_prob,
            duplicate_prob,
            reorder_jitter,
        }
    }
}

/// Latency parameters of the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// One-way latency of a single link (host↔switch or switch↔switch).
    pub link_latency: SimDuration,
    /// Packet processing latency inside a switch.
    pub switch_latency: SimDuration,
}

impl Default for LinkParams {
    fn default() -> Self {
        // Calibrated so that a host→switch→host one-way trip costs ~1.5 µs,
        // i.e. a ~3 µs RTT as measured in Fig. 15(a) of the paper.
        LinkParams {
            link_latency: SimDuration::nanos(550),
            switch_latency: SimDuration::nanos(400),
        }
    }
}

/// The physical arrangement of switches.
#[derive(Debug, Clone)]
pub enum Topology {
    /// A single rack: every packet traverses the one (programmable) ToR
    /// switch, `SwitchId(0)`.
    SingleRack,
    /// A leaf–spine fabric: hosts attach to per-rack ToR switches
    /// (`SwitchId(1000 + rack)` by convention, plain L2), and cross-rack
    /// traffic traverses one of the programmable spine switches
    /// (`SwitchId(spine)` for `spine < spine_count`), selected by the
    /// provided map from source node to rack and a per-packet spine selector
    /// installed via [`Network::set_spine_selector`].
    LeafSpine {
        /// Rack index of every node.
        node_rack: FxHashMap<NodeId, u32>,
        /// Number of programmable spine switches.
        spine_count: u32,
    },
}

/// Statistics counters maintained by the network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets handed to the network by endpoints.
    pub sent: u64,
    /// Packets delivered into destination mailboxes.
    pub delivered: u64,
    /// Packets dropped by fault injection.
    pub dropped_faults: u64,
    /// Packets duplicated by fault injection.
    pub duplicated: u64,
    /// Packets dropped because the destination node was down.
    pub dropped_node_down: u64,
    /// Packets dropped by switch programs (e.g. no forwarding action).
    pub dropped_by_switch: u64,
    /// Packets dropped because a network partition separated the endpoints.
    pub dropped_partition: u64,
}

/// Picks which spine switch a packet traverses in a leaf–spine topology,
/// given the payload and the number of spines.
pub type SpineSelector<M> = Rc<dyn Fn(&M, u32) -> u32>;

struct NetworkInner<M> {
    handle: SimHandle,
    mailboxes: FxHashMap<NodeId, mpsc::Sender<Packet<M>>>,
    node_down: FxHashMap<NodeId, bool>,
    /// Partition group of each node; packets between different groups are
    /// dropped. Nodes absent from the map belong to group 0. `None` means no
    /// partition is active (the common case — checked with one branch).
    partition: Option<FxHashMap<NodeId, u32>>,
    switches: FxHashMap<SwitchId, Box<dyn SwitchLogic<M>>>,
    topology: Topology,
    params: LinkParams,
    faults: NetFaults,
    rng: StdRng,
    stats: NetStats,
    spine_selector: Option<SpineSelector<M>>,
}

/// The simulated network fabric.
pub struct Network<M> {
    inner: Rc<RefCell<NetworkInner<M>>>,
}

impl<M> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            inner: self.inner.clone(),
        }
    }
}

impl<M: Clone + 'static> Network<M> {
    /// Creates a single-rack network whose ToR switch runs plain L2
    /// forwarding. Use [`Network::install_switch`] to replace it with the
    /// SwitchFS data plane.
    pub fn new(handle: SimHandle, params: LinkParams, faults: NetFaults, seed: u64) -> Self {
        let mut switches: FxHashMap<SwitchId, Box<dyn SwitchLogic<M>>> = FxHashMap::default();
        switches.insert(SwitchId(0), Box::new(L2Forward));
        Network {
            inner: Rc::new(RefCell::new(NetworkInner {
                handle,
                mailboxes: FxHashMap::default(),
                node_down: FxHashMap::default(),
                partition: None,
                switches,
                topology: Topology::SingleRack,
                params,
                faults,
                rng: StdRng::seed_from_u64(seed ^ 0x5157_4654_4353_u64),
                stats: NetStats::default(),
                spine_selector: None,
            })),
        }
    }

    /// Switches the fabric to the given topology. Any switch referenced by
    /// the topology but not yet installed defaults to L2 forwarding.
    pub fn set_topology(&self, topology: Topology) {
        let mut inner = self.inner.borrow_mut();
        if let Topology::LeafSpine {
            node_rack,
            spine_count,
        } = &topology
        {
            for spine in 0..*spine_count {
                inner
                    .switches
                    .entry(SwitchId(spine))
                    .or_insert_with(|| Box::new(L2Forward));
            }
            // BTreeSet: racks are iterated below, and switch-install order
            // must not depend on hash order.
            let racks: std::collections::BTreeSet<u32> = node_rack.values().copied().collect();
            for rack in racks {
                inner
                    .switches
                    .entry(SwitchId(1000 + rack))
                    .or_insert_with(|| Box::new(L2Forward));
            }
        }
        inner.topology = topology;
    }

    /// Installs (or replaces) the program of a switch.
    pub fn install_switch(&self, id: SwitchId, logic: Box<dyn SwitchLogic<M>>) {
        self.inner.borrow_mut().switches.insert(id, logic);
    }

    /// Sets the function that selects which spine switch a packet uses in a
    /// leaf–spine topology; it receives the payload and the spine count.
    pub fn set_spine_selector(&self, f: SpineSelector<M>) {
        self.inner.borrow_mut().spine_selector = Some(f);
    }

    /// Updates the fault-injection policy.
    pub fn set_faults(&self, faults: NetFaults) {
        self.inner.borrow_mut().faults = faults;
    }

    /// Registers a node and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the node is already registered.
    pub fn register(&self, node: NodeId) -> Endpoint<M> {
        let (tx, rx) = mpsc::channel();
        let mut inner = self.inner.borrow_mut();
        assert!(
            !inner.mailboxes.contains_key(&node),
            "node {node} registered twice"
        );
        inner.mailboxes.insert(node, tx);
        inner.node_down.insert(node, false);
        Endpoint {
            node,
            network: self.clone(),
            rx,
        }
    }

    /// Marks a node as down (its packets are dropped) or back up. Used to
    /// simulate server crashes (§5.4.2).
    pub fn set_node_down(&self, node: NodeId, down: bool) {
        self.inner.borrow_mut().node_down.insert(node, down);
    }

    /// Installs a network partition: every node is assigned a group (nodes
    /// not listed default to group 0) and packets whose endpoints sit in
    /// different groups are dropped at delivery time — in-flight packets are
    /// cut too, like a yanked cable. Replaces any previous partition.
    pub fn set_partition(&self, groups: impl IntoIterator<Item = (NodeId, u32)>) {
        let map: FxHashMap<NodeId, u32> = groups.into_iter().collect();
        self.inner.borrow_mut().partition = Some(map);
    }

    /// Convenience: isolates `nodes` (group 1) from the rest of the cluster
    /// (group 0).
    pub fn isolate(&self, nodes: &[NodeId]) {
        self.set_partition(nodes.iter().map(|n| (*n, 1)));
    }

    /// Heals any active partition.
    pub fn heal_partition(&self) {
        self.inner.borrow_mut().partition = None;
    }

    /// True if a partition is currently active.
    pub fn is_partitioned(&self) -> bool {
        self.inner.borrow().partition.is_some()
    }

    /// Returns the accumulated network statistics.
    pub fn stats(&self) -> NetStats {
        self.inner.borrow().stats
    }

    /// Injects a packet into the fabric.
    pub fn send(&self, pkt: Packet<M>) {
        let handle = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.sent += 1;
            if *inner.node_down.get(&pkt.src).unwrap_or(&false) {
                inner.stats.dropped_node_down += 1;
                return;
            }
            inner.handle.clone()
        };
        let copies = {
            let mut inner = self.inner.borrow_mut();
            let mut copies = Vec::with_capacity(2);
            if inner.rng.gen::<f64>() < inner.faults.drop_prob {
                inner.stats.dropped_faults += 1;
            } else {
                copies.push(SimDuration::ZERO);
            }
            if inner.faults.duplicate_prob > 0.0
                && inner.rng.gen::<f64>() < inner.faults.duplicate_prob
            {
                inner.stats.duplicated += 1;
                let jitter = inner.params.link_latency;
                copies.push(jitter);
            }
            // Reordering jitter applies to every copy independently.
            let jitter_max = inner.faults.reorder_jitter.as_nanos();
            if jitter_max > 0 {
                for c in &mut copies {
                    let extra = inner.rng.gen_range(0..=jitter_max);
                    *c += SimDuration::nanos(extra);
                }
            }
            copies
        };
        // Move the packet into the last copy's delivery task; only fault
        // duplication pays for a clone.
        let mut pkt = Some(pkt);
        let last = copies.len().saturating_sub(1);
        for (i, extra_delay) in copies.into_iter().enumerate() {
            let net = self.clone();
            let pkt = if i == last {
                pkt.take().expect("one packet per copy")
            } else {
                pkt.clone().expect("one packet per copy")
            };
            handle.spawn(async move {
                net.deliver(pkt, extra_delay).await;
            });
        }
    }

    /// Runs one packet through its route: link → switch(es) → link → mailbox.
    ///
    /// The single-packet flow (no multicast) stays entirely alloc-free: the
    /// route lives in a fixed array and the packet travels in an `Option`;
    /// only a multicasting switch spills into a vector.
    async fn deliver(&self, pkt: Packet<M>, extra_delay: SimDuration) {
        let (handle, link_latency, switch_latency, route, hops) = {
            let inner = self.inner.borrow();
            let (route, hops) = self.route_for(&inner, &pkt);
            (
                inner.handle.clone(),
                inner.params.link_latency,
                inner.params.switch_latency,
                route,
                hops,
            )
        };
        if !extra_delay.is_zero() {
            handle.sleep(extra_delay).await;
        }
        // The packet set currently travelling this route. Switch programs
        // can multicast, so this can grow. Only `single`/`multi` live across
        // the sleeps: the switch-processing block is a plain function, so
        // its scratch never inflates this future's state machine.
        let mut single = Some(pkt);
        let mut multi: Vec<Packet<M>> = Vec::new();
        for switch_id in route.into_iter().take(hops) {
            handle.sleep(link_latency).await;
            let now = handle.now();
            (single, multi) = self.process_at_switch(switch_id, now, single, multi);
            if single.is_none() && multi.is_empty() {
                return;
            }
            handle.sleep(switch_latency).await;
        }
        handle.sleep(link_latency).await;
        let mut inner = self.inner.borrow_mut();
        for p in single.into_iter().chain(multi) {
            if *inner.node_down.get(&p.dst).unwrap_or(&false) {
                inner.stats.dropped_node_down += 1;
                continue;
            }
            if let Some(groups) = &inner.partition {
                let src_group = groups.get(&p.src).copied().unwrap_or(0);
                let dst_group = groups.get(&p.dst).copied().unwrap_or(0);
                if src_group != dst_group {
                    inner.stats.dropped_partition += 1;
                    continue;
                }
            }
            let delivered = inner
                .mailboxes
                .get(&p.dst)
                .is_some_and(|tx| tx.send(p).is_ok());
            if delivered {
                inner.stats.delivered += 1;
            } else {
                inner.stats.dropped_node_down += 1;
            }
        }
    }

    /// Runs every in-flight packet through one switch, preserving arrival
    /// order. Returns the surviving packets in the same single/multi shape
    /// `deliver` carries them in.
    #[allow(clippy::type_complexity)]
    fn process_at_switch(
        &self,
        switch_id: SwitchId,
        now: SimTime,
        single: Option<Packet<M>>,
        mut multi: Vec<Packet<M>>,
    ) -> (Option<Packet<M>>, Vec<Packet<M>>) {
        let mut inner = self.inner.borrow_mut();
        let mut out_single = None;
        let mut out_multi: Vec<Packet<M>> = Vec::new();
        let mut emit = |p: Packet<M>, out_multi: &mut Vec<Packet<M>>| match out_single.take() {
            None if out_multi.is_empty() => out_single = Some(p),
            None => out_multi.push(p),
            Some(first) => {
                out_multi.push(first);
                out_multi.push(p);
            }
        };
        for p in single.into_iter().chain(multi.drain(..)) {
            let Some(logic) = inner.switches.get_mut(&switch_id) else {
                // Unknown switch: behave like a plain wire.
                emit(p, &mut out_multi);
                continue;
            };
            let src = p.src;
            let actions = logic.process(now, p);
            if actions.is_empty() {
                inner.stats.dropped_by_switch += 1;
            }
            for action in actions {
                match action {
                    SwitchAction::Forward { dst, payload } => {
                        emit(Packet { src, dst, payload }, &mut out_multi)
                    }
                    SwitchAction::Drop => {
                        inner.stats.dropped_by_switch += 1;
                    }
                }
            }
        }
        (out_single, out_multi)
    }

    /// The switches a packet traverses, as a fixed-size array plus hop
    /// count — computed per packet, so it must not allocate.
    fn route_for(&self, inner: &NetworkInner<M>, pkt: &Packet<M>) -> ([SwitchId; 3], usize) {
        match &inner.topology {
            Topology::SingleRack => ([SwitchId(0), SwitchId(0), SwitchId(0)], 1),
            Topology::LeafSpine {
                node_rack,
                spine_count,
            } => {
                let src_rack = node_rack.get(&pkt.src).copied().unwrap_or(0);
                let dst_rack = node_rack.get(&pkt.dst).copied().unwrap_or(0);
                let spine = match &inner.spine_selector {
                    Some(f) => f(&pkt.payload, *spine_count) % (*spine_count).max(1),
                    None => (pkt.src.0 ^ pkt.dst.0) % (*spine_count).max(1),
                };
                if src_rack == dst_rack {
                    // Even same-rack traffic traverses the spine in the
                    // paper's multi-rack deployment so that the programmable
                    // spine switch keeps its global view (§6.4).
                    ([SwitchId(1000 + src_rack), SwitchId(spine), SwitchId(0)], 2)
                } else {
                    (
                        [
                            SwitchId(1000 + src_rack),
                            SwitchId(spine),
                            SwitchId(1000 + dst_rack),
                        ],
                        3,
                    )
                }
            }
        }
    }
}

/// A node's attachment point to the network.
pub struct Endpoint<M> {
    node: NodeId,
    network: Network<M>,
    rx: mpsc::Receiver<Packet<M>>,
}

impl<M: Clone + 'static> Endpoint<M> {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends a payload to `dst`.
    pub fn send(&self, dst: NodeId, payload: M) {
        self.network.send(Packet {
            src: self.node,
            dst,
            payload,
        });
    }

    /// Waits for the next packet addressed to this node.
    pub async fn recv(&self) -> Option<Packet<M>> {
        self.rx.recv().await
    }

    /// Returns a queued packet if one is available.
    pub fn try_recv(&self) -> Option<Packet<M>> {
        self.rx.try_recv()
    }

    /// Number of packets waiting in the mailbox.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    /// Discards every packet currently queued in the mailbox. Used when a
    /// node restarts after a crash: in-flight requests addressed to the old
    /// incarnation are dropped, as they would be by a rebooted DPDK process.
    pub fn drain(&self) -> usize {
        let mut n = 0;
        while self.rx.try_recv().is_some() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimTime;
    use std::cell::Cell;

    fn mk(seed: u64, faults: NetFaults) -> (Sim, Network<u32>) {
        let sim = Sim::new(seed);
        let net = Network::new(sim.handle(), LinkParams::default(), faults, seed);
        (sim, net)
    }

    #[test]
    fn one_way_delivery_latency_is_about_1_5_us() {
        let (sim, net) = mk(1, NetFaults::reliable());
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let t = Rc::new(Cell::new(SimTime::ZERO));
        let t2 = t.clone();
        let h = sim.handle();
        sim.spawn(async move {
            a.send(NodeId(2), 7);
        });
        sim.spawn(async move {
            let p = b.recv().await.unwrap();
            assert_eq!(p.payload, 7);
            assert_eq!(p.src, NodeId(1));
            t2.set(h.now());
        });
        sim.run();
        // link + switch + link = 550 + 400 + 550 = 1.5us.
        assert_eq!(t.get(), SimTime::from_nanos(1_500));
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn packets_between_same_pair_preserve_order_without_jitter() {
        let (sim, net) = mk(1, NetFaults::reliable());
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let got = Rc::new(RefCell::new(Vec::new()));
        let got2 = got.clone();
        sim.spawn(async move {
            for i in 0..10u32 {
                a.send(NodeId(2), i);
            }
        });
        sim.spawn(async move {
            for _ in 0..10 {
                let p = b.recv().await.unwrap().payload;
                got2.borrow_mut().push(p);
            }
        });
        sim.run();
        assert_eq!(*got.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_probability_one_loses_everything() {
        let (sim, net) = mk(1, NetFaults::lossy(1.0, 0.0, SimDuration::ZERO));
        let a = net.register(NodeId(1));
        let _b = net.register(NodeId(2));
        sim.spawn(async move {
            a.send(NodeId(2), 1);
            a.send(NodeId(2), 2);
        });
        sim.run();
        assert_eq!(net.stats().dropped_faults, 2);
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn duplication_delivers_twice() {
        let (sim, net) = mk(1, NetFaults::lossy(0.0, 1.0, SimDuration::ZERO));
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let count = Rc::new(Cell::new(0));
        let c2 = count.clone();
        sim.spawn(async move {
            a.send(NodeId(2), 9);
        });
        sim.spawn(async move {
            while let Some(_p) = b.recv().await {
                c2.set(c2.get() + 1);
            }
        });
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(count.get(), 2);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn down_node_drops_traffic() {
        let (sim, net) = mk(1, NetFaults::reliable());
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        net.set_node_down(NodeId(2), true);
        sim.spawn(async move {
            a.send(NodeId(2), 1);
        });
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(b.pending(), 0);
        assert_eq!(net.stats().dropped_node_down, 1);
    }

    struct CountingSwitch {
        seen: Rc<Cell<u32>>,
    }
    impl SwitchLogic<u32> for CountingSwitch {
        fn process(&mut self, _now: SimTime, pkt: Packet<u32>) -> Vec<SwitchAction<u32>> {
            self.seen.set(self.seen.get() + 1);
            if pkt.payload == 0 {
                vec![SwitchAction::Drop]
            } else {
                vec![SwitchAction::Forward {
                    dst: pkt.dst,
                    payload: pkt.payload * 10,
                }]
            }
        }
    }

    #[test]
    fn custom_switch_logic_rewrites_and_drops() {
        let (sim, net) = mk(1, NetFaults::reliable());
        let seen = Rc::new(Cell::new(0));
        net.install_switch(SwitchId(0), Box::new(CountingSwitch { seen: seen.clone() }));
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let got = Rc::new(RefCell::new(Vec::new()));
        let got2 = got.clone();
        sim.spawn(async move {
            a.send(NodeId(2), 0);
            a.send(NodeId(2), 3);
        });
        sim.spawn(async move {
            let p = b.recv().await.unwrap().payload;
            got2.borrow_mut().push(p);
        });
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(seen.get(), 2);
        assert_eq!(*got.borrow(), vec![30]);
        assert_eq!(net.stats().dropped_by_switch, 1);
    }

    #[test]
    fn leaf_spine_routes_cross_rack_traffic() {
        let (sim, net) = mk(1, NetFaults::reliable());
        let mut node_rack = FxHashMap::default();
        node_rack.insert(NodeId(1), 0);
        node_rack.insert(NodeId(2), 1);
        net.set_topology(Topology::LeafSpine {
            node_rack,
            spine_count: 2,
        });
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let t = Rc::new(Cell::new(SimTime::ZERO));
        let t2 = t.clone();
        let h = sim.handle();
        sim.spawn(async move {
            a.send(NodeId(2), 5);
        });
        sim.spawn(async move {
            b.recv().await.unwrap();
            t2.set(h.now());
        });
        sim.run();
        // 4 links + 3 switches = 4*550 + 3*400 = 3.4us.
        assert_eq!(t.get(), SimTime::from_nanos(3_400));
    }

    #[test]
    fn drain_discards_queued_packets() {
        let (sim, net) = mk(1, NetFaults::reliable());
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        sim.spawn(async move {
            for i in 0..4 {
                a.send(NodeId(2), i);
            }
        });
        sim.run();
        assert_eq!(b.pending(), 4);
        assert_eq!(b.drain(), 4);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let (_sim, net) = mk(1, NetFaults::reliable());
        let _a = net.register(NodeId(1));
        let _b = net.register(NodeId(1));
    }

    #[test]
    fn partition_drops_cross_group_traffic_and_heals() {
        let (sim, net) = mk(1, NetFaults::reliable());
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let c = net.register(NodeId(3));
        net.isolate(&[NodeId(2)]);
        assert!(net.is_partitioned());
        sim.spawn(async move {
            a.send(NodeId(2), 1); // crosses the partition: dropped
            a.send(NodeId(3), 2); // same group: delivered
        });
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(b.pending(), 0);
        assert_eq!(c.pending(), 1);
        assert_eq!(net.stats().dropped_partition, 1);
        net.heal_partition();
        assert!(!net.is_partitioned());
        let b2 = Rc::new(Cell::new(0u32));
        let b2c = b2.clone();
        sim.spawn(async move {
            c.send(NodeId(2), 9);
            let p = b.recv().await.unwrap();
            b2c.set(p.payload);
        });
        sim.run_until(SimTime::from_millis(2));
        assert_eq!(b2.get(), 9);
    }

    #[test]
    fn partition_cuts_packets_already_in_flight() {
        let (sim, net) = mk(1, NetFaults::reliable());
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let net2 = net.clone();
        let h = sim.handle();
        sim.spawn(async move {
            a.send(NodeId(2), 5);
            // The partition lands while the packet is still traversing the
            // fabric (one-way trip is 1.5 us).
            h.sleep(SimDuration::nanos(100)).await;
            net2.isolate(&[NodeId(2)]);
        });
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(b.pending(), 0);
        assert_eq!(net.stats().dropped_partition, 1);
    }
}
