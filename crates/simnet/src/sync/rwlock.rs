//! A FIFO-fair asynchronous reader–writer lock.
//!
//! Metadata servers take read locks on directory inodes for `statdir` /
//! `readdir` and write locks for updates (§5.2). The lock is fair in the
//! sense that a waiting writer blocks later readers, preventing writer
//! starvation under the read-heavy aggregation workloads of Fig. 18.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Read,
    Write,
}

struct Waiter {
    mode: Mode,
    granted: Rc<Cell<bool>>,
    waker: Option<Waker>,
}

struct Inner<T> {
    readers: usize,
    writer: bool,
    waiters: VecDeque<Waiter>,
    value: T,
}

/// An asynchronous, FIFO-fair reader–writer lock protecting a value of type
/// `T`.
pub struct SimRwLock<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T> Clone for SimRwLock<T> {
    fn clone(&self) -> Self {
        SimRwLock {
            inner: self.inner.clone(),
        }
    }
}

impl<T> SimRwLock<T> {
    /// Creates a new unlocked lock.
    pub fn new(value: T) -> Self {
        SimRwLock {
            inner: Rc::new(RefCell::new(Inner {
                readers: 0,
                writer: false,
                waiters: VecDeque::new(),
                value,
            })),
        }
    }

    /// Acquires a shared (read) lock.
    pub fn read(&self) -> Acquire<T> {
        Acquire {
            lock: self.clone(),
            mode: Mode::Read,
            granted: None,
        }
    }

    /// Acquires an exclusive (write) lock.
    pub fn write(&self) -> Acquire<T> {
        Acquire {
            lock: self.clone(),
            mode: Mode::Write,
            granted: None,
        }
    }

    /// Number of tasks currently waiting.
    pub fn waiters(&self) -> usize {
        self.inner.borrow().waiters.len()
    }

    /// True if a writer currently holds the lock.
    pub fn is_write_locked(&self) -> bool {
        self.inner.borrow().writer
    }

    /// Number of readers currently holding the lock.
    pub fn reader_count(&self) -> usize {
        self.inner.borrow().readers
    }

    fn can_grant(inner: &Inner<T>, mode: Mode, is_front: bool) -> bool {
        match mode {
            Mode::Read => !inner.writer && (is_front || inner.waiters.is_empty()),
            Mode::Write => !inner.writer && inner.readers == 0,
        }
    }

    fn release_read(&self) {
        let mut wakers = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            inner.readers -= 1;
            Self::grant_from_queue(&mut inner, &mut wakers);
        }
        for w in wakers {
            w.wake();
        }
    }

    fn release_write(&self) {
        let mut wakers = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            inner.writer = false;
            Self::grant_from_queue(&mut inner, &mut wakers);
        }
        for w in wakers {
            w.wake();
        }
    }

    fn grant_from_queue(inner: &mut Inner<T>, wakers: &mut Vec<Waker>) {
        loop {
            let Some(front) = inner.waiters.front() else {
                return;
            };
            match front.mode {
                Mode::Write => {
                    if inner.readers == 0 && !inner.writer {
                        let mut w = inner.waiters.pop_front().expect("front exists");
                        inner.writer = true;
                        w.granted.set(true);
                        if let Some(wk) = w.waker.take() {
                            wakers.push(wk);
                        }
                    }
                    return;
                }
                Mode::Read => {
                    if inner.writer {
                        return;
                    }
                    let mut w = inner.waiters.pop_front().expect("front exists");
                    inner.readers += 1;
                    w.granted.set(true);
                    if let Some(wk) = w.waker.take() {
                        wakers.push(wk);
                    }
                    // Keep granting consecutive readers.
                }
            }
        }
    }
}

/// Future returned by [`SimRwLock::read`] and [`SimRwLock::write`].
pub struct Acquire<T> {
    lock: SimRwLock<T>,
    mode: Mode,
    granted: Option<Rc<Cell<bool>>>,
}

impl<T> Future for Acquire<T> {
    type Output = Guard<T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(granted) = self.granted.clone() {
            if granted.get() {
                let mode = self.mode;
                // Clear the flag so dropping the finished future does not
                // release the lock a second time.
                self.granted = None;
                return Poll::Ready(Guard {
                    lock: self.lock.clone(),
                    mode,
                    released: false,
                });
            }
            let mut inner = self.lock.inner.borrow_mut();
            if let Some(w) = inner
                .waiters
                .iter_mut()
                .find(|w| Rc::ptr_eq(&w.granted, &granted))
            {
                w.waker = Some(cx.waker().clone());
            }
            return Poll::Pending;
        }
        let mut inner = self.lock.inner.borrow_mut();
        if SimRwLock::can_grant(&inner, self.mode, false) {
            match self.mode {
                Mode::Read => inner.readers += 1,
                Mode::Write => inner.writer = true,
            }
            drop(inner);
            return Poll::Ready(Guard {
                lock: self.lock.clone(),
                mode: self.mode,
                released: false,
            });
        }
        let granted = Rc::new(Cell::new(false));
        inner.waiters.push_back(Waiter {
            mode: self.mode,
            granted: granted.clone(),
            waker: Some(cx.waker().clone()),
        });
        drop(inner);
        self.granted = Some(granted);
        Poll::Pending
    }
}

impl<T> Drop for Acquire<T> {
    fn drop(&mut self) {
        if let Some(granted) = &self.granted {
            if granted.get() {
                match self.mode {
                    Mode::Read => self.lock.release_read(),
                    Mode::Write => self.lock.release_write(),
                }
            } else {
                let mut inner = self.lock.inner.borrow_mut();
                inner.waiters.retain(|w| !Rc::ptr_eq(&w.granted, granted));
            }
        }
    }
}

/// RAII guard for either lock mode; releases on drop.
pub struct Guard<T> {
    lock: SimRwLock<T>,
    mode: Mode,
    released: bool,
}

/// Shared-access guard type alias.
pub type SimRwLockReadGuard<T> = Guard<T>;
/// Exclusive-access guard type alias.
pub type SimRwLockWriteGuard<T> = Guard<T>;

impl<T> Guard<T> {
    /// Runs a closure with shared access to the protected value.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.lock.inner.borrow().value)
    }

    /// Runs a closure with exclusive access to the protected value.
    ///
    /// # Panics
    ///
    /// Panics if this guard was acquired in read mode.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        assert!(
            self.mode == Mode::Write,
            "with_mut requires a write-mode guard"
        );
        f(&mut self.lock.inner.borrow_mut().value)
    }
}

impl<T> Drop for Guard<T> {
    fn drop(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        match self.mode {
            Mode::Read => self.lock.release_read(),
            Mode::Write => self.lock.release_write(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::{SimDuration, SimTime};
    use std::cell::Cell;

    #[test]
    fn multiple_readers_share() {
        let sim = Sim::new(1);
        let lock = SimRwLock::new(5u32);
        let active = Rc::new(Cell::new(0usize));
        let max_active = Rc::new(Cell::new(0usize));
        for _ in 0..3 {
            let lock = lock.clone();
            let h = sim.handle();
            let active = active.clone();
            let max_active = max_active.clone();
            sim.spawn(async move {
                let g = lock.read().await;
                active.set(active.get() + 1);
                max_active.set(max_active.get().max(active.get()));
                h.sleep(SimDuration::micros(10)).await;
                g.with(|v| assert_eq!(*v, 5));
                active.set(active.get() - 1);
            });
        }
        sim.run();
        assert_eq!(max_active.get(), 3);
    }

    #[test]
    fn writer_excludes_readers_and_writers() {
        let sim = Sim::new(1);
        let lock = SimRwLock::new(0u32);
        {
            let lock = lock.clone();
            let h = sim.handle();
            sim.spawn(async move {
                let g = lock.write().await;
                h.sleep(SimDuration::micros(10)).await;
                g.with_mut(|v| *v += 1);
            });
        }
        {
            let lock = lock.clone();
            let h = sim.handle();
            let done_at = Rc::new(Cell::new(SimTime::ZERO));
            let d = done_at.clone();
            sim.spawn(async move {
                h.sleep(SimDuration::micros(1)).await;
                let g = lock.read().await;
                g.with(|v| assert_eq!(*v, 1));
                d.set(h.now());
            });
            sim.run();
            assert!(done_at.get() >= SimTime::from_micros(10));
        }
    }

    #[test]
    fn waiting_writer_blocks_later_readers() {
        let sim = Sim::new(1);
        let lock = SimRwLock::new(Vec::<&'static str>::new());
        // Reader 0 holds the lock for 20us.
        {
            let lock = lock.clone();
            let h = sim.handle();
            sim.spawn(async move {
                let _g = lock.read().await;
                h.sleep(SimDuration::micros(20)).await;
            });
        }
        // Writer arrives at t=1us.
        {
            let lock = lock.clone();
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimDuration::micros(1)).await;
                let g = lock.write().await;
                g.with_mut(|v| v.push("writer"));
            });
        }
        // Reader 2 arrives at t=2us; must wait behind the writer.
        {
            let lock = lock.clone();
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimDuration::micros(2)).await;
                let g = lock.read().await;
                g.with(|v| assert_eq!(v.as_slice(), ["writer"]));
            });
        }
        sim.run();
    }

    #[test]
    fn write_guard_with_mut_panics_for_read_guard() {
        let sim = Sim::new(1);
        let lock = SimRwLock::new(0u32);
        let lock2 = lock.clone();
        sim.spawn(async move {
            let g = lock2.read().await;
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                g.with_mut(|v| *v += 1);
            }));
            assert!(res.is_err());
        });
        sim.run();
    }
}
