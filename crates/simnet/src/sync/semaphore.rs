//! A FIFO-fair counting semaphore.
//!
//! The semaphore underlies the [`crate::cpu::CpuPool`] core model (N permits
//! = N cores) and is also used by clients to bound the number of in-flight
//! requests, mirroring the "up to 512 concurrent requests" load generator of
//! the paper's evaluation (§7.2.1).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Waiter {
    need: usize,
    granted: Rc<Cell<bool>>,
    waker: Option<Waker>,
}

struct Inner {
    permits: usize,
    waiters: VecDeque<Waiter>,
}

/// An asynchronous, FIFO-fair counting semaphore.
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<Inner>>,
}

impl Semaphore {
    /// Creates a semaphore with `permits` available permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(Inner {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Acquires one permit, waiting in FIFO order.
    pub fn acquire(&self) -> Acquire {
        self.acquire_many(1)
    }

    /// Acquires `n` permits atomically, waiting in FIFO order.
    pub fn acquire_many(&self, n: usize) -> Acquire {
        Acquire {
            semaphore: self.clone(),
            need: n,
            granted: None,
        }
    }

    /// Attempts to acquire one permit without waiting.
    pub fn try_acquire(&self) -> Option<SemaphorePermit> {
        let mut inner = self.inner.borrow_mut();
        if inner.waiters.is_empty() && inner.permits >= 1 {
            inner.permits -= 1;
            drop(inner);
            Some(SemaphorePermit {
                semaphore: self.clone(),
                count: 1,
            })
        } else {
            None
        }
    }

    /// Number of currently available permits.
    pub fn available(&self) -> usize {
        self.inner.borrow().permits
    }

    /// Number of tasks waiting for permits.
    pub fn waiters(&self) -> usize {
        self.inner.borrow().waiters.len()
    }

    /// Adds `n` permits, waking waiters that can now proceed. The common
    /// single-waiter hand-off stays alloc-free; only a multi-waiter wake
    /// spills into a vector.
    pub fn release(&self, n: usize) {
        let mut first: Option<Waker> = None;
        let mut rest: Vec<Waker> = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            inner.permits += n;
            while let Some(front) = inner.waiters.front() {
                if front.need > inner.permits {
                    break;
                }
                let mut w = inner.waiters.pop_front().expect("front exists");
                inner.permits -= w.need;
                w.granted.set(true);
                if let Some(wk) = w.waker.take() {
                    if first.is_none() {
                        first = Some(wk);
                    } else {
                        rest.push(wk);
                    }
                }
            }
        }
        if let Some(w) = first {
            w.wake();
        }
        for w in rest {
            w.wake();
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    semaphore: Semaphore,
    need: usize,
    granted: Option<Rc<Cell<bool>>>,
}

impl Future for Acquire {
    type Output = SemaphorePermit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(granted) = self.granted.clone() {
            if granted.get() {
                self.granted = None;
                return Poll::Ready(SemaphorePermit {
                    semaphore: self.semaphore.clone(),
                    count: self.need,
                });
            }
            let mut inner = self.semaphore.inner.borrow_mut();
            if let Some(w) = inner
                .waiters
                .iter_mut()
                .find(|w| Rc::ptr_eq(&w.granted, &granted))
            {
                w.waker = Some(cx.waker().clone());
            }
            return Poll::Pending;
        }
        let mut inner = self.semaphore.inner.borrow_mut();
        if inner.waiters.is_empty() && inner.permits >= self.need {
            inner.permits -= self.need;
            drop(inner);
            return Poll::Ready(SemaphorePermit {
                semaphore: self.semaphore.clone(),
                count: self.need,
            });
        }
        let granted = Rc::new(Cell::new(false));
        inner.waiters.push_back(Waiter {
            need: self.need,
            granted: granted.clone(),
            waker: Some(cx.waker().clone()),
        });
        drop(inner);
        self.granted = Some(granted);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(granted) = &self.granted {
            if granted.get() {
                self.semaphore.release(self.need);
            } else {
                let mut inner = self.semaphore.inner.borrow_mut();
                inner.waiters.retain(|w| !Rc::ptr_eq(&w.granted, granted));
            }
        }
    }
}

/// RAII permit returning its permits to the semaphore on drop.
pub struct SemaphorePermit {
    semaphore: Semaphore,
    count: usize,
}

impl SemaphorePermit {
    /// Releases the permit without waiting for drop (consumes it).
    pub fn release(self) {}

    /// Forgets the permit so the permits are permanently removed from the
    /// semaphore. Used when modelling a crashed core/server.
    pub fn forget(mut self) {
        self.count = 0;
    }
}

impl Drop for SemaphorePermit {
    fn drop(&mut self) {
        if self.count > 0 {
            self.semaphore.release(self.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn limits_concurrency() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(2);
        let active = Rc::new(Cell::new(0usize));
        let max_active = Rc::new(Cell::new(0usize));
        for _ in 0..6 {
            let sem = sem.clone();
            let h = sim.handle();
            let active = active.clone();
            let max_active = max_active.clone();
            sim.spawn(async move {
                let _p = sem.acquire().await;
                active.set(active.get() + 1);
                max_active.set(max_active.get().max(active.get()));
                h.sleep(SimDuration::micros(10)).await;
                active.set(active.get() - 1);
            });
        }
        sim.run();
        assert_eq!(max_active.get(), 2);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn serialization_takes_expected_time() {
        // Six 10us jobs on two permits should take 30us of virtual time.
        let sim = Sim::new(1);
        let sem = Semaphore::new(2);
        for _ in 0..6 {
            let sem = sem.clone();
            let h = sim.handle();
            sim.spawn(async move {
                let _p = sem.acquire().await;
                h.sleep(SimDuration::micros(10)).await;
            });
        }
        let stats = sim.run();
        assert_eq!(stats.end_time, SimTime::from_micros(30));
    }

    #[test]
    fn acquire_many_waits_for_batch() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(3);
        let sem2 = sem.clone();
        let h = sim.handle();
        sim.spawn(async move {
            let p1 = sem2.acquire_many(2).await;
            assert_eq!(sem2.available(), 1);
            // A request for 3 must wait until the first permit batch returns.
            let want3 = sem2.acquire_many(3);
            h.spawn({
                let h = h.clone();
                async move {
                    h.sleep(SimDuration::micros(5)).await;
                    drop(p1);
                }
            });
            let _p2 = want3.await;
            assert!(h.now() >= SimTime::from_micros(5));
        });
        sim.run();
        assert_eq!(sem.available(), 3);
    }

    #[test]
    fn try_acquire_respects_waiters() {
        let sem = Semaphore::new(1);
        let p = sem.try_acquire().unwrap();
        assert!(sem.try_acquire().is_none());
        drop(p);
        assert!(sem.try_acquire().is_some());
    }

    #[test]
    fn forget_removes_permits() {
        let sem = Semaphore::new(2);
        let p = sem.try_acquire().unwrap();
        p.forget();
        assert_eq!(sem.available(), 1);
    }
}
