//! An unbounded multi-producer, single-consumer channel.
//!
//! Used as the mailbox of every simulated node: the network delivers packets
//! by sending into the node's channel and the node task receives them in
//! arrival order.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Inner<T> {
    queue: VecDeque<T>,
    waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half; cloneable.
pub struct Sender<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

/// Receiving half.
pub struct Receiver<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

/// Error returned by [`Sender::send`] when the receiver has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

/// Creates an unbounded channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(RefCell::new(Inner {
        queue: VecDeque::new(),
        waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut inner = self.inner.borrow_mut();
            inner.senders -= 1;
            if inner.senders == 0 {
                inner.waker.take()
            } else {
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a message, waking the receiver if it is waiting.
    pub fn send(&self, value: T) -> Result<(), SendError> {
        let waker = {
            let mut inner = self.inner.borrow_mut();
            if !inner.receiver_alive {
                return Err(SendError);
            }
            inner.queue.push_back(value);
            inner.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Waits for the next message. Returns `None` when every sender has been
    /// dropped and the queue is empty.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Returns the next message if one is already queued.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// True if no message is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.borrow_mut().receiver_alive = false;
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.receiver.inner.borrow_mut();
        if let Some(v) = inner.queue.pop_front() {
            Poll::Ready(Some(v))
        } else if inner.senders == 0 {
            Poll::Ready(None)
        } else {
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn messages_arrive_in_order() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        let out = Rc::new(RefCell::new(Vec::new()));
        let out2 = out.clone();
        sim.spawn(async move {
            while let Some(v) = rx.recv().await {
                out2.borrow_mut().push(v);
            }
        });
        sim.spawn({
            let h = sim.handle();
            async move {
                for i in 0..5 {
                    h.sleep(SimDuration::micros(1)).await;
                    tx.send(i).unwrap();
                }
            }
        });
        sim.run();
        assert_eq!(*out.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_returns_none_when_all_senders_dropped() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        let tx2 = tx.clone();
        let finished = Rc::new(Cell::new(false));
        let fin = finished.clone();
        sim.spawn(async move {
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, None);
            fin.set(true);
        });
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        sim.run();
        assert!(finished.get());
    }

    #[test]
    fn send_after_receiver_dropped_errors() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError));
    }

    #[test]
    fn try_recv_and_len() {
        let (tx, rx) = channel::<u32>();
        assert!(rx.is_empty());
        tx.send(5).unwrap();
        tx.send(6).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.try_recv(), Some(5));
        assert_eq!(rx.try_recv(), Some(6));
        assert_eq!(rx.try_recv(), None);
    }
}
