//! A single-producer, single-consumer, single-value channel.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Inner<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_dropped: bool,
}

/// Sending half of a oneshot channel.
pub struct Sender<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

/// Receiving half of a oneshot channel.
pub struct Receiver<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

/// Error returned by [`Receiver::recv`] when the sender was dropped without
/// sending a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Creates a connected oneshot sender/receiver pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(RefCell::new(Inner {
        value: None,
        waker: None,
        sender_dropped: false,
    }));
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Sends a value, waking the receiver if it is waiting.
    ///
    /// Returns the value back if the receiver has already been dropped.
    pub fn send(self, value: T) -> Result<(), T> {
        // Only one receiver exists; if the Rc strong count is 1 the receiver
        // is gone and nobody will ever observe the value.
        if Rc::strong_count(&self.inner) == 1 {
            return Err(value);
        }
        let waker = {
            let mut inner = self.inner.borrow_mut();
            inner.value = Some(value);
            inner.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
        Ok(())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut inner = self.inner.borrow_mut();
            inner.sender_dropped = true;
            inner.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Receiver<T> {
    /// Waits for the value.
    pub fn recv(self) -> Recv<T> {
        Recv { inner: self.inner }
    }

    /// Returns the value if it has already been sent, without waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.borrow_mut().value.take()
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T> Future for Recv<T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.inner.borrow_mut();
        if let Some(v) = inner.value.take() {
            Poll::Ready(Ok(v))
        } else if inner.sender_dropped {
            Poll::Ready(Err(RecvError))
        } else {
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;
    use std::cell::Cell;

    #[test]
    fn value_is_delivered() {
        let sim = Sim::new(1);
        let h = sim.handle();
        let (tx, rx) = channel::<u32>();
        let out = Rc::new(Cell::new(0));
        let out2 = out.clone();
        sim.spawn(async move {
            out2.set(rx.recv().await.unwrap());
        });
        sim.spawn({
            let h = h.clone();
            async move {
                h.sleep(SimDuration::micros(2)).await;
                tx.send(7).unwrap();
            }
        });
        sim.run();
        assert_eq!(out.get(), 7);
    }

    #[test]
    fn dropped_sender_yields_error() {
        let sim = Sim::new(1);
        let (tx, rx) = channel::<u32>();
        let got_err = Rc::new(Cell::new(false));
        let ge = got_err.clone();
        sim.spawn(async move {
            ge.set(rx.recv().await.is_err());
        });
        drop(tx);
        sim.run();
        assert!(got_err.get());
    }

    #[test]
    fn send_to_dropped_receiver_returns_value() {
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(9));
    }

    #[test]
    fn try_recv_before_and_after_send() {
        let (tx, rx) = channel::<u32>();
        assert_eq!(rx.try_recv(), None);
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Some(3));
    }
}
