//! Simulation-aware synchronization primitives.
//!
//! All primitives are single-threaded (the simulation executor never runs
//! tasks in parallel) and FIFO-fair: waiters are granted the resource in the
//! order they started waiting, which keeps simulated queueing behaviour
//! faithful to the first-come-first-served service disciplines the SwitchFS
//! paper assumes for locks and CPU run queues.

pub mod mpsc;
pub mod mutex;
pub mod notify;
pub mod oneshot;
pub mod rwlock;
pub mod semaphore;

pub use mpsc::{channel, Receiver, Sender};
pub use mutex::{SimMutex, SimMutexGuard};
pub use notify::Notify;
pub use rwlock::{SimRwLock, SimRwLockReadGuard, SimRwLockWriteGuard};
pub use semaphore::{Semaphore, SemaphorePermit};
