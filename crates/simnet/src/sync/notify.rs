//! A task notification primitive, similar in spirit to `tokio::sync::Notify`.
//!
//! Used by the metadata server to block directory reads while an aggregation
//! for the same fingerprint group is in flight (§5.2.2), and by proactive
//! aggregation timers.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

#[derive(Default)]
struct Inner {
    /// Permits stored by `notify_one` calls that arrived before any waiter.
    stored_permits: usize,
    waiters: VecDeque<(u64, Option<Waker>, Rc<std::cell::Cell<bool>>)>,
    next_id: u64,
}

/// A notification primitive: tasks wait for a signal delivered by
/// [`Notify::notify_one`] or [`Notify::notify_waiters`].
#[derive(Clone, Default)]
pub struct Notify {
    inner: Rc<RefCell<Inner>>,
}

impl Notify {
    /// Creates a new notifier with no stored permits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Waits until notified.
    pub fn notified(&self) -> Notified {
        Notified {
            notify: self.clone(),
            id: None,
        }
    }

    /// Wakes a single waiter, or stores a permit if none is waiting.
    pub fn notify_one(&self) {
        let waker = {
            let mut inner = self.inner.borrow_mut();
            if let Some((_, waker, flag)) = inner.waiters.pop_front() {
                flag.set(true);
                waker
            } else {
                inner.stored_permits += 1;
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Wakes every current waiter. Does not store a permit.
    pub fn notify_waiters(&self) {
        let wakers: Vec<_> = {
            let mut inner = self.inner.borrow_mut();
            inner
                .waiters
                .drain(..)
                .map(|(_, waker, flag)| {
                    flag.set(true);
                    waker
                })
                .collect()
        };
        for w in wakers.into_iter().flatten() {
            w.wake();
        }
    }

    /// Number of tasks currently waiting.
    pub fn waiters(&self) -> usize {
        self.inner.borrow().waiters.len()
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    notify: Notify,
    id: Option<(u64, Rc<std::cell::Cell<bool>>)>,
}

impl Future for Notified {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if let Some((id, flag)) = self.id.clone() {
            if flag.get() {
                self.id = None;
                return Poll::Ready(());
            }
            let mut inner = self.notify.inner.borrow_mut();
            if let Some(w) = inner.waiters.iter_mut().find(|(wid, _, _)| *wid == id) {
                w.1 = Some(cx.waker().clone());
            }
            return Poll::Pending;
        }
        let mut inner = self.notify.inner.borrow_mut();
        if inner.stored_permits > 0 {
            inner.stored_permits -= 1;
            return Poll::Ready(());
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let flag = Rc::new(std::cell::Cell::new(false));
        inner
            .waiters
            .push_back((id, Some(cx.waker().clone()), flag.clone()));
        drop(inner);
        self.id = Some((id, flag));
        Poll::Pending
    }
}

impl Drop for Notified {
    fn drop(&mut self) {
        if let Some((id, flag)) = &self.id {
            if !flag.get() {
                let mut inner = self.notify.inner.borrow_mut();
                inner.waiters.retain(|(wid, _, _)| wid != id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::{SimDuration, SimTime};
    use std::cell::Cell;

    #[test]
    fn notify_one_wakes_single_waiter() {
        let sim = Sim::new(1);
        let notify = Notify::new();
        let woken = Rc::new(Cell::new(0u32));
        for _ in 0..2 {
            let notify = notify.clone();
            let woken = woken.clone();
            sim.spawn(async move {
                notify.notified().await;
                woken.set(woken.get() + 1);
            });
        }
        {
            let notify = notify.clone();
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimDuration::micros(1)).await;
                notify.notify_one();
            });
        }
        sim.run_until(SimTime::from_micros(10));
        assert_eq!(woken.get(), 1);
        notify.notify_waiters();
        sim.run();
        assert_eq!(woken.get(), 2);
    }

    #[test]
    fn stored_permit_wakes_future_waiter() {
        let sim = Sim::new(1);
        let notify = Notify::new();
        notify.notify_one();
        let woken = Rc::new(Cell::new(false));
        let w = woken.clone();
        let notify2 = notify.clone();
        sim.spawn(async move {
            notify2.notified().await;
            w.set(true);
        });
        sim.run();
        assert!(woken.get());
    }

    #[test]
    fn notify_waiters_does_not_store() {
        let sim = Sim::new(1);
        let notify = Notify::new();
        notify.notify_waiters();
        let woken = Rc::new(Cell::new(false));
        let w = woken.clone();
        let notify2 = notify.clone();
        sim.spawn(async move {
            notify2.notified().await;
            w.set(true);
        });
        sim.run_until(SimTime::from_micros(10));
        assert!(!woken.get());
    }
}
