//! A FIFO-fair asynchronous mutex with owned guards.
//!
//! The SwitchFS metadata servers serialize conflicting operations on
//! per-inode and per-change-log locks (§5.2). FIFO fairness matters for the
//! evaluation: contention experiments (Fig. 2, Fig. 14) depend on waiters
//! being served in arrival order, like the first-come-first-served lock
//! queues of the paper's implementation.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Waiter {
    granted: Rc<Cell<bool>>,
    waker: Option<Waker>,
}

struct Inner<T> {
    locked: bool,
    waiters: VecDeque<Waiter>,
    value: T,
}

/// An asynchronous, FIFO-fair mutex protecting a value of type `T`.
pub struct SimMutex<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T> Clone for SimMutex<T> {
    fn clone(&self) -> Self {
        SimMutex {
            inner: self.inner.clone(),
        }
    }
}

impl<T> SimMutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        SimMutex {
            inner: Rc::new(RefCell::new(Inner {
                locked: false,
                waiters: VecDeque::new(),
                value,
            })),
        }
    }

    /// Acquires the lock, waiting in FIFO order.
    pub fn lock(&self) -> Acquire<T> {
        Acquire {
            mutex: self.clone(),
            granted: None,
        }
    }

    /// Attempts to acquire the lock without waiting.
    pub fn try_lock(&self) -> Option<SimMutexGuard<T>> {
        let mut inner = self.inner.borrow_mut();
        if inner.locked {
            None
        } else {
            inner.locked = true;
            drop(inner);
            Some(SimMutexGuard {
                mutex: self.clone(),
            })
        }
    }

    /// True if the lock is currently held.
    pub fn is_locked(&self) -> bool {
        self.inner.borrow().locked
    }

    /// Number of tasks currently waiting for the lock.
    pub fn waiters(&self) -> usize {
        self.inner.borrow().waiters.len()
    }

    fn unlock(&self) {
        let waker = {
            let mut inner = self.inner.borrow_mut();
            if let Some(mut w) = inner.waiters.pop_front() {
                // Direct handoff: the lock stays held on behalf of the next
                // waiter, which preserves FIFO order.
                w.granted.set(true);
                w.waker.take()
            } else {
                inner.locked = false;
                None
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Future returned by [`SimMutex::lock`].
pub struct Acquire<T> {
    mutex: SimMutex<T>,
    granted: Option<Rc<Cell<bool>>>,
}

impl<T> Future for Acquire<T> {
    type Output = SimMutexGuard<T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(granted) = self.granted.clone() {
            if granted.get() {
                // Clear the flag so dropping the (now finished) future does
                // not release the lock a second time.
                self.granted = None;
                return Poll::Ready(SimMutexGuard {
                    mutex: self.mutex.clone(),
                });
            }
            // Refresh the stored waker in case the task was moved.
            let mut inner = self.mutex.inner.borrow_mut();
            if let Some(w) = inner
                .waiters
                .iter_mut()
                .find(|w| Rc::ptr_eq(&w.granted, &granted))
            {
                w.waker = Some(cx.waker().clone());
            }
            return Poll::Pending;
        }
        let mut inner = self.mutex.inner.borrow_mut();
        if !inner.locked {
            inner.locked = true;
            drop(inner);
            return Poll::Ready(SimMutexGuard {
                mutex: self.mutex.clone(),
            });
        }
        let granted = Rc::new(Cell::new(false));
        inner.waiters.push_back(Waiter {
            granted: granted.clone(),
            waker: Some(cx.waker().clone()),
        });
        drop(inner);
        self.granted = Some(granted);
        Poll::Pending
    }
}

impl<T> Drop for Acquire<T> {
    fn drop(&mut self) {
        // If the future is dropped after being granted the lock but before
        // being observed, release the lock so it is not leaked.
        if let Some(granted) = &self.granted {
            if granted.get() {
                self.mutex.unlock();
            } else {
                let mut inner = self.mutex.inner.borrow_mut();
                inner.waiters.retain(|w| !Rc::ptr_eq(&w.granted, granted));
            }
        }
    }
}

/// RAII guard releasing the mutex on drop.
pub struct SimMutexGuard<T> {
    mutex: SimMutex<T>,
}

impl<T> SimMutexGuard<T> {
    /// Runs a closure with shared access to the protected value.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.mutex.inner.borrow().value)
    }

    /// Runs a closure with exclusive access to the protected value.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.mutex.inner.borrow_mut().value)
    }
}

impl<T> Drop for SimMutexGuard<T> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimDuration;

    #[test]
    fn mutual_exclusion_and_fifo_order() {
        let sim = Sim::new(1);
        let mutex = SimMutex::new(Vec::<u32>::new());
        for i in 0..4u32 {
            let h = sim.handle();
            let mutex = mutex.clone();
            sim.spawn(async move {
                // Stagger arrival so the wait order is deterministic.
                h.sleep(SimDuration::nanos(i as u64 * 10)).await;
                let guard = mutex.lock().await;
                h.sleep(SimDuration::micros(5)).await;
                guard.with_mut(|v| v.push(i));
            });
        }
        sim.run();
        let guard = mutex.try_lock().unwrap();
        guard.with(|v| assert_eq!(*v, vec![0, 1, 2, 3]));
    }

    #[test]
    fn try_lock_fails_while_held() {
        let mutex = SimMutex::new(());
        let g = mutex.try_lock().unwrap();
        assert!(mutex.try_lock().is_none());
        assert!(mutex.is_locked());
        drop(g);
        assert!(!mutex.is_locked());
        assert!(mutex.try_lock().is_some());
    }

    #[test]
    fn contended_waiters_count() {
        let sim = Sim::new(1);
        let mutex = SimMutex::new(());
        {
            let mutex = mutex.clone();
            let h = sim.handle();
            sim.spawn(async move {
                let _g = mutex.lock().await;
                h.sleep(SimDuration::micros(100)).await;
            });
        }
        for _ in 0..3 {
            let mutex = mutex.clone();
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(SimDuration::micros(1)).await;
                let _g = mutex.lock().await;
            });
        }
        sim.run_until(crate::time::SimTime::from_micros(50));
        assert_eq!(mutex.waiters(), 3);
        sim.run();
        assert_eq!(mutex.waiters(), 0);
        assert!(!mutex.is_locked());
    }
}
