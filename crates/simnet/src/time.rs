//! Virtual time: nanosecond-resolution instants and durations.
//!
//! The simulation clock never advances while any task is runnable; it jumps
//! directly to the next timer deadline, which is what makes simulating
//! microsecond-scale RPC protocols over minutes of virtual time cheap.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 as f64 / 1_000.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 as f64 / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!((t - SimTime::from_micros(10)).as_micros(), 5);
        assert_eq!((SimDuration::micros(2) * 3).as_micros(), 6);
        assert_eq!((SimDuration::micros(6) / 2).as_micros(), 3);
        // Subtraction saturates rather than panicking.
        assert_eq!(
            (SimTime::from_micros(1) - SimTime::from_micros(5)).as_nanos(),
            0
        );
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(b.duration_since(a).as_micros(), 4);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn fractional_micros() {
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_micros_f64(-3.0).as_nanos(), 0);
        assert!((SimDuration::nanos(2_500).as_micros_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SimTime::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::nanos(1_500)), "1.500us");
    }
}
