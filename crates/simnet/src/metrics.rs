//! Measurement helpers used by the evaluation harness: latency histograms
//! (mean / median / p25 / p75 / p90 / p99, as reported in Fig. 13 and
//! Fig. 16) and throughput meters (Kops/s / Mops/s, as reported in Fig. 12,
//! Fig. 17 and Fig. 19).

use crate::time::{SimDuration, SimTime};

/// A latency recorder with percentile queries.
///
/// Samples are stored exactly (nanosecond resolution); experiments record at
/// most a few hundred thousand samples per data point so memory is not a
/// concern, and exact percentiles keep the harness output reproducible.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        SimDuration::nanos((sum / self.samples.len() as u128) as u64)
    }

    /// Largest recorded latency.
    pub fn max(&self) -> SimDuration {
        SimDuration::nanos(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Smallest recorded latency.
    pub fn min(&self) -> SimDuration {
        SimDuration::nanos(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// The `p`-th percentile (0.0–100.0), using nearest-rank interpolation.
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        SimDuration::nanos(self.samples[rank])
    }

    /// Median latency.
    pub fn median(&mut self) -> SimDuration {
        self.percentile(50.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// A one-line summary used in harness output.
    pub fn summary(&mut self) -> String {
        if self.is_empty() {
            return "no samples".to_string();
        }
        format!(
            "mean={:.1}us p50={:.1}us p90={:.1}us p99={:.1}us max={:.1}us n={}",
            self.mean().as_micros_f64(),
            self.percentile(50.0).as_micros_f64(),
            self.percentile(90.0).as_micros_f64(),
            self.percentile(99.0).as_micros_f64(),
            self.max().as_micros_f64(),
            self.count()
        )
    }
}

/// A throughput meter: counts completed operations over a virtual-time span.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputMeter {
    count: u64,
    start: SimTime,
    end: SimTime,
    started: bool,
}

impl ThroughputMeter {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the start of the measured interval.
    pub fn start(&mut self, now: SimTime) {
        self.start = now;
        self.end = now;
        self.count = 0;
        self.started = true;
    }

    /// Records one completed operation at time `now`.
    pub fn record(&mut self, now: SimTime) {
        if !self.started {
            self.start(now);
        }
        self.count += 1;
        if now > self.end {
            self.end = now;
        }
    }

    /// Number of operations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total measured virtual time.
    pub fn elapsed(&self) -> SimDuration {
        self.end - self.start
    }

    /// Throughput in operations per second of virtual time.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.count as f64 / secs
        }
    }

    /// Throughput in thousands of operations per second.
    pub fn kops_per_sec(&self) -> f64 {
        self.ops_per_sec() / 1e3
    }

    /// Throughput in millions of operations per second.
    pub fn mops_per_sec(&self) -> f64 {
        self.ops_per_sec() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(SimDuration::micros(i));
        }
        assert_eq!(h.count(), 100);
        // Nearest-rank on an even sample count lands on the upper neighbour.
        assert_eq!(h.median().as_micros(), 51);
        assert_eq!(h.percentile(99.0).as_micros(), 99);
        assert_eq!(h.percentile(0.0).as_micros(), 1);
        assert_eq!(h.percentile(100.0).as_micros(), 100);
        assert_eq!(h.min().as_micros(), 1);
        assert_eq!(h.max().as_micros(), 100);
        assert_eq!(h.mean().as_nanos(), 50_500);
    }

    #[test]
    fn single_sample_answers_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::micros(7));
        assert_eq!(h.count(), 1);
        // With one sample there is only one rank: p0, the median and p100
        // all collapse onto it, as do min/max/mean.
        assert_eq!(h.percentile(0.0).as_micros(), 7);
        assert_eq!(h.median().as_micros(), 7);
        assert_eq!(h.percentile(100.0).as_micros(), 7);
        assert_eq!(h.min().as_micros(), 7);
        assert_eq!(h.max().as_micros(), 7);
        assert_eq!(h.mean().as_micros(), 7);
    }

    #[test]
    fn p0_and_p100_are_clamped_extremes() {
        let mut h = LatencyHistogram::new();
        for v in [30u64, 10, 20] {
            h.record(SimDuration::micros(v));
        }
        // Out-of-range percentiles clamp to the extremes rather than
        // indexing out of bounds.
        assert_eq!(h.percentile(-5.0).as_micros(), 10);
        assert_eq!(h.percentile(0.0).as_micros(), 10);
        assert_eq!(h.percentile(100.0).as_micros(), 30);
        assert_eq!(h.percentile(250.0).as_micros(), 30);
    }

    #[test]
    fn duplicate_samples_keep_nearest_rank_exact() {
        let mut h = LatencyHistogram::new();
        // 5 identical low samples and one outlier: every rank below the
        // last returns the duplicated value exactly (nearest-rank never
        // interpolates between neighbours).
        for _ in 0..5 {
            h.record(SimDuration::micros(4));
        }
        h.record(SimDuration::micros(400));
        assert_eq!(h.median().as_micros(), 4);
        assert_eq!(h.percentile(75.0).as_micros(), 4);
        assert_eq!(h.percentile(99.0).as_micros(), 400);
        assert_eq!(h.percentile(100.0).as_micros(), 400);
        // The mean, unlike the ranks, does see the outlier.
        assert_eq!(h.mean().as_micros(), 70);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
        assert_eq!(h.summary(), "no samples");
    }

    #[test]
    fn histogram_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::micros(1));
        b.record(SimDuration::micros(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean().as_micros(), 2);
    }

    #[test]
    fn throughput_meter_math() {
        let mut m = ThroughputMeter::new();
        m.start(SimTime::ZERO);
        for i in 1..=1000u64 {
            m.record(SimTime::from_micros(i));
        }
        // 1000 ops over 1 ms = 1 Mops/s.
        assert_eq!(m.count(), 1000);
        assert!((m.mops_per_sec() - 1.0).abs() < 1e-9);
        assert!((m.kops_per_sec() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn throughput_meter_zero_elapsed() {
        let mut m = ThroughputMeter::new();
        m.record(SimTime::from_micros(5));
        assert_eq!(m.ops_per_sec(), 0.0);
    }
}
