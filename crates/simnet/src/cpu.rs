//! A processor model: *N* cores with a FIFO run queue.
//!
//! The SwitchFS evaluation varies the number of cores per metadata server
//! (Fig. 2(d), Fig. 14) to show intra-server parallelism. Every server-side
//! code path in this repository charges calibrated service times through a
//! [`CpuPool`]; when all cores are busy the work queues, which is what makes
//! throughput saturate and latency grow under load exactly as on a real
//! multi-core server.

use crate::executor::SimHandle;
use crate::sync::semaphore::Semaphore;
use crate::time::SimDuration;
use std::cell::Cell;
use std::rc::Rc;

/// An *N*-core processor with FIFO queueing.
#[derive(Clone)]
pub struct CpuPool {
    handle: SimHandle,
    cores: Semaphore,
    num_cores: usize,
    busy_ns: Rc<Cell<u64>>,
}

impl CpuPool {
    /// Creates a pool with `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(handle: SimHandle, num_cores: usize) -> Self {
        assert!(num_cores > 0, "a CPU pool needs at least one core");
        CpuPool {
            handle,
            cores: Semaphore::new(num_cores),
            num_cores,
            busy_ns: Rc::new(Cell::new(0)),
        }
    }

    /// Number of cores in this pool.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Occupies one core for `work` of virtual time (queueing first if all
    /// cores are busy), then releases it.
    pub async fn run(&self, work: SimDuration) {
        if work.is_zero() {
            return;
        }
        let _permit = self.cores.acquire().await;
        self.busy_ns.set(self.busy_ns.get() + work.as_nanos());
        self.handle.sleep(work).await;
    }

    /// Occupies one core while executing `f` "instantaneously" plus `work` of
    /// modelled service time. This is the common pattern for server handlers:
    /// the real data-structure manipulation happens in `f`, and `work` is the
    /// calibrated cost charged to the simulated clock.
    pub async fn run_with<R>(&self, work: SimDuration, f: impl FnOnce() -> R) -> R {
        let _permit = self.cores.acquire().await;
        self.busy_ns.set(self.busy_ns.get() + work.as_nanos());
        let r = f();
        if !work.is_zero() {
            self.handle.sleep(work).await;
        }
        r
    }

    /// Total busy core-time accumulated so far, in nanoseconds. Used to
    /// report CPU utilization in the evaluation harness.
    pub fn busy_nanos(&self) -> u64 {
        self.busy_ns.get()
    }

    /// Current number of requests waiting for a core.
    pub fn queued(&self) -> usize {
        self.cores.waiters()
    }

    /// Current number of idle cores.
    pub fn idle_cores(&self) -> usize {
        self.cores.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use crate::time::SimTime;

    #[test]
    fn single_core_serializes_work() {
        let sim = Sim::new(1);
        let cpu = CpuPool::new(sim.handle(), 1);
        for _ in 0..4 {
            let cpu = cpu.clone();
            sim.spawn(async move {
                cpu.run(SimDuration::micros(10)).await;
            });
        }
        let stats = sim.run();
        assert_eq!(stats.end_time, SimTime::from_micros(40));
        assert_eq!(cpu.busy_nanos(), 40_000);
    }

    #[test]
    fn more_cores_increase_parallelism() {
        let sim = Sim::new(1);
        let cpu = CpuPool::new(sim.handle(), 4);
        for _ in 0..4 {
            let cpu = cpu.clone();
            sim.spawn(async move {
                cpu.run(SimDuration::micros(10)).await;
            });
        }
        let stats = sim.run();
        assert_eq!(stats.end_time, SimTime::from_micros(10));
    }

    #[test]
    fn run_with_returns_value_and_charges_time() {
        let sim = Sim::new(1);
        let cpu = CpuPool::new(sim.handle(), 1);
        let cpu2 = cpu.clone();
        sim.spawn(async move {
            let v = cpu2.run_with(SimDuration::micros(3), || 21 * 2).await;
            assert_eq!(v, 42);
        });
        let stats = sim.run();
        assert_eq!(stats.end_time, SimTime::from_micros(3));
    }

    #[test]
    fn zero_work_is_free() {
        let sim = Sim::new(1);
        let cpu = CpuPool::new(sim.handle(), 1);
        let cpu2 = cpu.clone();
        sim.spawn(async move {
            cpu2.run(SimDuration::ZERO).await;
        });
        let stats = sim.run();
        assert_eq!(stats.end_time, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let sim = Sim::new(1);
        let _ = CpuPool::new(sim.handle(), 0);
    }
}
