//! Property-based round-trip coverage for the binary wire layer.
//!
//! Generates arbitrary [`DirtySetHeader`]s and [`NetMsg`]s — including every
//! `Body` variant a datagram can carry — and asserts that
//! `encode → decode` is the identity over `proto::wire`, and that encoded
//! sizes match the documented layout (Fig. 9 / §6.1).

use proptest::prelude::*;

use switchfs_proto::changelog::{ChangeLogEntry, ChangeOp};
use switchfs_proto::ids::{ClientId, DirId, Fingerprint, OpId, ServerId, TraceId};
use switchfs_proto::message::{
    Body, ClientRequest, ClientResponse, CoordMsg, MetaOp, NetMsg, OpResult, PacketSeq, ParentRef,
    ServerMsg, SyncFallback,
};
use switchfs_proto::schema::{DirEntry, FileType, InodeAttrs, MetaKey, Permissions, Timestamps};
use switchfs_proto::wire::{
    decode_dirty_header, decode_net_msg, encode_dirty_header, encode_net_msg, DIRTY_HEADER_LEN,
    NET_MSG_FIXED_LEN,
};
use switchfs_proto::{DirtyRet, DirtySetHeader, DirtySetOp, DirtyState, FsError};

fn arb_op() -> impl Strategy<Value = DirtySetOp> {
    prop_oneof![
        Just(DirtySetOp::Insert),
        Just(DirtySetOp::Query),
        Just(DirtySetOp::Remove),
    ]
}

fn arb_ret() -> impl Strategy<Value = DirtyRet> {
    prop_oneof![
        Just(DirtyRet::Unset),
        Just(DirtyRet::State(DirtyState::Normal)),
        Just(DirtyRet::State(DirtyState::Scattered)),
        Just(DirtyRet::Inserted),
        Just(DirtyRet::Overflowed),
        Just(DirtyRet::Removed),
    ]
}

fn arb_fingerprint() -> impl Strategy<Value = Fingerprint> {
    // `from_raw` masks to the 49 significant bits, so any u64 is legal input
    // and the boundary values of the mask get exercised.
    any::<u64>().prop_map(Fingerprint::from_raw)
}

fn arb_header() -> impl Strategy<Value = DirtySetHeader> {
    (
        arb_op(),
        arb_fingerprint(),
        any::<u64>(),
        (
            arb_ret(),
            prop_oneof![Just(None), any::<u32>().prop_map(Some)],
        ),
    )
        .prop_map(
            |(op, fingerprint, remove_seq, (ret, alt_dst))| DirtySetHeader {
                op,
                fingerprint,
                remove_seq,
                ret,
                alt_dst,
            },
        )
}

/// Directory-entry names restricted to JSON-transportable strings; the
/// compat generator already mixes ASCII, accented and astral characters.
fn arb_name() -> impl Strategy<Value = String> {
    any::<String>()
}

fn arb_dir_id() -> impl Strategy<Value = DirId> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
        .prop_map(|(a, b, c, d)| DirId([a, b, c, d]))
}

fn arb_key() -> impl Strategy<Value = MetaKey> {
    (arb_dir_id(), arb_name()).prop_map(|(pid, name)| MetaKey::new(pid, name))
}

fn arb_perm() -> impl Strategy<Value = Permissions> {
    (any::<u16>(), any::<u32>(), any::<u32>()).prop_map(|(mode, uid, gid)| Permissions {
        mode,
        uid,
        gid,
    })
}

fn arb_op_id() -> impl Strategy<Value = OpId> {
    (any::<u32>(), any::<u64>()).prop_map(|(c, seq)| OpId {
        client: ClientId(c),
        seq,
    })
}

fn arb_meta_op() -> impl Strategy<Value = MetaOp> {
    prop_oneof![
        arb_key().prop_map(|key| MetaOp::Lookup { key }),
        (arb_key(), arb_perm()).prop_map(|(key, perm)| MetaOp::Create { key, perm }),
        arb_key().prop_map(|key| MetaOp::Delete { key }),
        (arb_key(), arb_perm()).prop_map(|(key, perm)| MetaOp::Mkdir { key, perm }),
        arb_key().prop_map(|key| MetaOp::Rmdir { key }),
        arb_key().prop_map(|key| MetaOp::Stat { key }),
        arb_key().prop_map(|key| MetaOp::Statdir { key }),
        arb_key().prop_map(|key| MetaOp::Readdir { key }),
        arb_key().prop_map(|key| MetaOp::Open { key }),
        (arb_key(), any::<u16>()).prop_map(|(key, mode)| MetaOp::Chmod { key, mode }),
        (arb_key(), arb_key(), arb_parent_opt()).prop_map(|(src, dst, dst_parent)| {
            MetaOp::Rename {
                src,
                dst,
                dst_parent,
            }
        }),
    ]
}

fn arb_parent() -> impl Strategy<Value = ParentRef> {
    (arb_key(), arb_dir_id(), arb_fingerprint()).prop_map(|(key, id, fp)| ParentRef { key, id, fp })
}

fn arb_parent_opt() -> impl Strategy<Value = Option<ParentRef>> {
    prop_oneof![Just(None), arb_parent().prop_map(Some)]
}

fn arb_request() -> impl Strategy<Value = ClientRequest> {
    (
        arb_op_id(),
        arb_meta_op(),
        prop::collection::vec(arb_dir_id(), 0..4),
        (arb_parent_opt(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(op_id, op, ancestors, (parent, epoch, acked_below))| ClientRequest {
                op_id,
                op,
                ancestors,
                parent,
                epoch,
                acked_below,
            },
        )
}

fn arb_fs_error() -> impl Strategy<Value = FsError> {
    prop_oneof![
        Just(FsError::NotFound),
        Just(FsError::AlreadyExists),
        Just(FsError::NotEmpty),
        Just(FsError::StaleCache),
        Just(FsError::Unavailable),
        Just(FsError::PermissionDenied),
    ]
}

fn arb_attrs() -> impl Strategy<Value = InodeAttrs> {
    (
        arb_dir_id(),
        (any::<u64>(), any::<u32>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        arb_perm(),
    )
        .prop_map(
            |(id, (size, nlink), (atime, mtime, ctime), perm)| InodeAttrs {
                file_type: if size % 2 == 0 {
                    FileType::File
                } else {
                    FileType::Directory
                },
                id,
                size,
                nlink,
                times: Timestamps {
                    atime,
                    mtime,
                    ctime,
                },
                perm,
            },
        )
}

fn arb_result() -> impl Strategy<Value = OpResult> {
    prop_oneof![
        Just(OpResult::Done),
        arb_attrs().prop_map(OpResult::Attrs),
        (
            arb_attrs(),
            prop::collection::vec(
                (arb_name(), any::<u16>()).prop_map(|(name, mode)| DirEntry {
                    name,
                    file_type: FileType::File,
                    mode,
                }),
                0..4,
            ),
        )
            .prop_map(|(attrs, entries)| OpResult::Listing {
                attrs,
                entries: std::rc::Rc::new(entries),
            }),
        any::<bool>().prop_map(|dir| OpResult::RenameDstExists {
            dst_type: if dir {
                FileType::Directory
            } else {
                FileType::File
            },
        }),
        arb_fs_error().prop_map(OpResult::Err),
        arb_shard_map().prop_map(|map| OpResult::WrongOwner { map }),
    ]
}

fn arb_shard_map() -> impl Strategy<Value = switchfs_proto::ShardMap> {
    // Epoch-0 maps plus a few deterministic reassignments: exercises both
    // the initial layout and post-migration maps on the wire.
    (1usize..6, 0u32..8).prop_map(|(servers, flips)| {
        let mut map = switchfs_proto::ShardMap::initial(
            switchfs_proto::PartitionPolicy::PerFileHash,
            servers,
        );
        if flips > 0 {
            let newcomer = map.add_server();
            for shard in 0..flips.min(map.num_shards() as u32) {
                map.assign(shard, newcomer);
            }
        }
        map
    })
}

fn arb_response() -> impl Strategy<Value = ClientResponse> {
    (arb_op_id(), arb_result(), any::<u32>()).prop_map(|(op_id, result, server)| ClientResponse {
        op_id,
        result,
        server: ServerId(server),
    })
}

fn arb_changelog_entry() -> impl Strategy<Value = ChangeLogEntry> {
    (
        arb_op_id(),
        arb_dir_id(),
        arb_name(),
        (any::<bool>(), any::<u16>(), any::<u64>(), any::<i64>()),
    )
        .prop_map(
            |(entry_id, dir, name, (ins, mode, timestamp, size_delta))| ChangeLogEntry {
                entry_id,
                dir,
                name,
                op: if ins {
                    ChangeOp::Insert {
                        file_type: FileType::File,
                        mode,
                    }
                } else {
                    ChangeOp::Remove
                },
                timestamp,
                size_delta,
            },
        )
}

fn arb_server_msg() -> impl Strategy<Value = ServerMsg> {
    prop_oneof![
        (arb_response(), any::<u32>(), any::<u64>(), arb_fallback()).prop_map(
            |(response, origin, op_token, fallback)| ServerMsg::AsyncCommit {
                response,
                origin: ServerId(origin),
                op_token,
                fallback,
            }
        ),
        (
            arb_key(),
            any::<u64>(),
            arb_changelog_entry(),
            prop::collection::vec(arb_op_id(), 0..3),
        )
            .prop_map(|(dir_key, req_id, entry, discard_confirm)| {
                ServerMsg::RemoteDirUpdate {
                    req_id,
                    dir_key,
                    entry,
                    discard_confirm,
                }
            }),
        (arb_key(), prop::collection::vec(arb_op_id(), 0..3))
            .prop_map(|(dir_key, applied)| { ServerMsg::ChangeLogPushAck { dir_key, applied } }),
        // Proactive push with piggybacked discard confirmations: entries
        // and confirms generated independently so a field swap in the
        // codec cannot round-trip by accident.
        (
            (arb_key(), arb_fingerprint(), any::<u32>()),
            prop::collection::vec(arb_changelog_entry(), 0..3),
            prop::collection::vec(arb_op_id(), 0..3),
        )
            .prop_map(|((dir_key, fp, from), entries, discard_confirm)| {
                ServerMsg::ChangeLogPush {
                    dir_key,
                    fp,
                    from: ServerId(from),
                    entries,
                    discard_confirm,
                }
            }),
        (
            arb_fingerprint(),
            (any::<u64>(), any::<u32>(), any::<u32>()),
            prop::collection::vec(arb_changelog_entry(), 0..3),
            prop::collection::vec(arb_op_id(), 0..3),
        )
            .prop_map(|(fp, (agg_id, owner, from), entries, discard_confirm)| {
                ServerMsg::AggregationEntries {
                    agg: switchfs_proto::message::AggregationPayload {
                        fp,
                        agg_id,
                        owner: ServerId(owner),
                    },
                    from: ServerId(from),
                    entries,
                    discard_confirm,
                }
            }),
        // Live-migration stream: the messages the elastic-placement
        // protocol depends on must round-trip with full payloads.
        (
            (any::<u64>(), any::<u32>()),
            prop::collection::vec((arb_key(), arb_attrs()), 0..3),
            prop::collection::vec((arb_dir_id(), arb_key()), 0..3),
            (
                prop::collection::vec((arb_dir_id(), arb_key(), arb_changelog_entry()), 0..3,),
                prop::collection::vec(arb_op_id(), 0..3),
                prop::collection::vec(arb_response(), 0..3),
            ),
        )
            .prop_map(
                |((req_id, shard), inodes, dir_index, (pending, applied_entry_ids, completed))| {
                    // The retired set is generated independently of the
                    // applied set (a deterministic transform of different
                    // op ids), so swapping the two fields in the codec
                    // cannot round-trip by accident.
                    let retired_entry_ids: Vec<OpId> = applied_entry_ids
                        .iter()
                        .map(|id| OpId {
                            client: id.client,
                            seq: id.seq.wrapping_add(1_000_000),
                        })
                        .collect();
                    ServerMsg::ShardInstall {
                        req_id,
                        shard,
                        inodes,
                        entries: Vec::new(),
                        dir_index,
                        retired_entry_ids,
                        pending,
                        applied_entry_ids,
                        completed,
                    }
                },
            ),
        any::<u64>().prop_map(|req_id| ServerMsg::ShardInstallAck { req_id }),
    ]
}

fn arb_fallback() -> impl Strategy<Value = SyncFallback> {
    (arb_key(), arb_changelog_entry(), any::<u32>()).prop_map(|(dir_key, entry, client_node)| {
        SyncFallback {
            dir_key,
            entry,
            client_node,
        }
    })
}

fn arb_coord_msg() -> impl Strategy<Value = CoordMsg> {
    prop_oneof![
        (any::<u64>(), arb_op(), arb_fingerprint(), any::<u64>())
            .prop_map(|(token, op, fp, seq)| CoordMsg::Request { token, op, fp, seq }),
        (any::<u64>(), arb_ret()).prop_map(|(token, ret)| CoordMsg::Reply { token, ret }),
    ]
}

fn arb_body() -> impl Strategy<Value = Body> {
    prop_oneof![
        Just(Body::Empty),
        arb_request().prop_map(|r| Body::Request(std::rc::Rc::new(r))),
        arb_response().prop_map(Body::Response),
        arb_server_msg().prop_map(Body::Server),
        arb_coord_msg().prop_map(Body::Coord),
    ]
}

fn arb_trace() -> impl Strategy<Value = Option<TraceId>> {
    // Trace ids on the wire are always derived from op ids, so generate
    // them the same way instead of from raw u64s.
    prop_oneof![
        Just(None),
        arb_op_id().prop_map(|op| Some(TraceId::of_op(op))),
    ]
}

fn arb_net_msg() -> impl Strategy<Value = NetMsg> {
    (
        any::<u16>(),
        (any::<u32>(), any::<u64>()),
        prop_oneof![Just(None), arb_header().prop_map(Some)],
        (arb_trace(), arb_body()),
    )
        .prop_map(|(dst_port, (sender, seq), dirty, (trace, body))| NetMsg {
            dst_port,
            pkt_seq: PacketSeq { sender, seq },
            dirty,
            trace,
            body,
        })
}

/// Encodes a frame in the pre-tracing wire format: identical layout except
/// the flag byte only ever holds 0 or 1 and no trace id is present. Used to
/// pin backward compatibility — old frames must keep decoding.
fn encode_old_format(msg: &NetMsg) -> Vec<u8> {
    assert!(msg.trace.is_none(), "old format cannot carry a trace id");
    let body = serde_json::to_string(&msg.body).unwrap();
    let mut buf = Vec::new();
    buf.extend_from_slice(&msg.dst_port.to_le_bytes());
    buf.extend_from_slice(&msg.pkt_seq.sender.to_le_bytes());
    buf.extend_from_slice(&msg.pkt_seq.seq.to_le_bytes());
    match &msg.dirty {
        Some(h) => {
            buf.push(1);
            buf.extend_from_slice(&switchfs_proto::wire::encode_dirty_header(h));
        }
        None => buf.push(0),
    }
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(body.as_bytes());
    buf
}

proptest! {
    #[test]
    fn dirty_header_roundtrips(h in arb_header()) {
        let bytes = encode_dirty_header(&h);
        prop_assert_eq!(bytes.len(), DIRTY_HEADER_LEN);
        let back = decode_dirty_header(&bytes).unwrap();
        prop_assert_eq!(h, back);
    }

    #[test]
    fn dirty_header_decode_never_panics_on_arbitrary_bytes(
        raw in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        // Decoding must be total: any byte soup yields Ok or a WireError.
        let _ = decode_dirty_header(&raw);
    }

    #[test]
    fn net_msg_roundtrips(m in arb_net_msg()) {
        let bytes = encode_net_msg(&m);
        prop_assert!(bytes.len() >= NET_MSG_FIXED_LEN);
        let back = decode_net_msg(&bytes).unwrap();
        prop_assert_eq!(m, back);
    }

    #[test]
    fn net_msg_encoding_is_deterministic(m in arb_net_msg()) {
        prop_assert_eq!(encode_net_msg(&m), encode_net_msg(&m));
    }

    #[test]
    fn net_msg_truncation_never_panics(m in arb_net_msg(), cut in any::<u64>()) {
        let bytes = encode_net_msg(&m);
        let len = (cut as usize) % bytes.len();
        let _ = decode_net_msg(&bytes[..len]);
    }

    #[test]
    fn old_format_frames_still_decode(
        dst_port in any::<u16>(),
        sender in any::<u32>(),
        seq in any::<u64>(),
        dirty in prop_oneof![Just(None), arb_header().prop_map(Some)],
        body in arb_body(),
    ) {
        // Frames encoded before the trace-id field existed (flag byte 0/1,
        // no trace bytes) must decode to the same message with trace=None.
        let mut msg = match dirty {
            Some(h) => NetMsg::with_dirty(PacketSeq { sender, seq }, h, body),
            None => NetMsg::plain(PacketSeq { sender, seq }, body),
        };
        msg.dst_port = dst_port;
        let old_bytes = encode_old_format(&msg);
        let back = decode_net_msg(&old_bytes).unwrap();
        prop_assert_eq!(&msg, &back);
        prop_assert_eq!(back.trace, None);
        // And the new encoder emits byte-identical frames when no trace id
        // is attached: the format change is invisible until used.
        prop_assert_eq!(encode_net_msg(&msg).as_ref(), &old_bytes[..]);
    }

    #[test]
    fn traced_frames_roundtrip_and_cost_exactly_eight_bytes(
        m in arb_net_msg(), op in arb_op_id(),
    ) {
        let mut untraced = m;
        untraced.trace = None;
        let traced = untraced.clone().traced(TraceId::of_op(op));
        let plain_len = encode_net_msg(&untraced).len();
        let bytes = encode_net_msg(&traced);
        prop_assert_eq!(bytes.len(), plain_len + 8);
        prop_assert_eq!(decode_net_msg(&bytes).unwrap(), traced);
    }
}
