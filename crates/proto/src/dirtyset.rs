//! The dirty-set operation header parsed by the programmable switch (§6.1).
//!
//! SwitchFS packets are ordinary UDP datagrams; packets carrying a dirty-set
//! operation use a reserved destination port and start with this header so
//! the switch parser can extract the operation without touching the DFS
//! request that follows.

use crate::ids::Fingerprint;
use serde::{Deserialize, Serialize};

/// Operation requested from the in-network dirty set (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DirtySetOp {
    /// Insert the fingerprint (directory becomes *scattered*).
    Insert,
    /// Query whether the fingerprint is present.
    Query,
    /// Remove the fingerprint (directory returns to *normal*).
    Remove,
}

/// Directory state as tracked by the dirty set (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DirtyState {
    /// All returned updates have been applied to the directory inode.
    Normal,
    /// One or more change-logs hold not-yet-applied updates.
    Scattered,
}

/// The `RET` field: result of the dirty-set operation, written by the switch
/// before the packet is forwarded onwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DirtyRet {
    /// Not yet processed by the switch.
    #[default]
    Unset,
    /// Query result: the directory's state.
    State(DirtyState),
    /// Insert succeeded (fingerprint stored or already present).
    Inserted,
    /// Insert failed because the set (all stages of the indexed set) is
    /// full; the switch redirects the packet to the alternative address for
    /// synchronous fallback handling (§5.2.1, §6.2).
    Overflowed,
    /// Remove processed (idempotent; also returned for stale duplicates).
    Removed,
}

/// The dirty-set operation header (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirtySetHeader {
    /// Requested operation (`OP` field).
    pub op: DirtySetOp,
    /// The 49-bit directory fingerprint.
    pub fingerprint: Fingerprint,
    /// Remove-sequence number (`SEQ` field), used to discard duplicate
    /// `remove` requests that arrive after the aggregation completed
    /// (§5.4.1). Ignored for `insert`/`query`.
    pub remove_seq: u64,
    /// Result written by the switch (`RET` field).
    pub ret: DirtyRet,
    /// Alternative destination (the "alternative MAC address") used by the
    /// address rewriter when an insert overflows: the raw node id of the
    /// server owning the parent directory's inode.
    pub alt_dst: Option<u32>,
}

impl DirtySetHeader {
    /// Builds an `insert` header.
    pub fn insert(fingerprint: Fingerprint, alt_dst: u32) -> Self {
        DirtySetHeader {
            op: DirtySetOp::Insert,
            fingerprint,
            remove_seq: 0,
            ret: DirtyRet::Unset,
            alt_dst: Some(alt_dst),
        }
    }

    /// Builds a `query` header.
    pub fn query(fingerprint: Fingerprint) -> Self {
        DirtySetHeader {
            op: DirtySetOp::Query,
            fingerprint,
            remove_seq: 0,
            ret: DirtyRet::Unset,
            alt_dst: None,
        }
    }

    /// Builds a `remove` header carrying the per-server remove sequence
    /// number.
    pub fn remove(fingerprint: Fingerprint, remove_seq: u64) -> Self {
        DirtySetHeader {
            op: DirtySetOp::Remove,
            fingerprint,
            remove_seq,
            ret: DirtyRet::Unset,
            alt_dst: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let fp = Fingerprint::from_raw(0xabcd);
        let i = DirtySetHeader::insert(fp, 7);
        assert_eq!(i.op, DirtySetOp::Insert);
        assert_eq!(i.alt_dst, Some(7));
        assert_eq!(i.ret, DirtyRet::Unset);
        let q = DirtySetHeader::query(fp);
        assert_eq!(q.op, DirtySetOp::Query);
        assert_eq!(q.alt_dst, None);
        let r = DirtySetHeader::remove(fp, 42);
        assert_eq!(r.op, DirtySetOp::Remove);
        assert_eq!(r.remove_seq, 42);
    }

    #[test]
    fn default_ret_is_unset() {
        assert_eq!(DirtyRet::default(), DirtyRet::Unset);
    }
}
