//! Typed messages exchanged between clients, metadata servers, the
//! programmable switch and the dedicated coordinator.
//!
//! A [`NetMsg`] models one SwitchFS UDP datagram (§6.1): a destination port
//! (which tells the switch whether a dirty-set operation header is present),
//! an optional [`DirtySetHeader`], and a body that only end hosts interpret.
//! The switch never looks at [`Body`], mirroring the real data plane, which
//! parses only the fixed-format header.

use std::rc::Rc;

use crate::changelog::ChangeLogEntry;
use crate::dirtyset::{DirtyRet, DirtySetHeader, DirtySetOp};
use crate::error::FsError;
use crate::ids::{DirId, Fingerprint, OpId, ServerId, TraceId};
use crate::schema::{DirEntry, FileType, InodeAttrs, MetaKey, Permissions};
use serde::{Deserialize, Serialize};

/// Reserved UDP ports (§6.1): one for packets carrying a dirty-set operation
/// header, one for plain SwitchFS packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpPorts;

impl UdpPorts {
    /// Destination port of packets that begin with a [`DirtySetHeader`].
    pub const DIRTY_SET: u16 = 5310;
    /// Destination port of plain SwitchFS packets.
    pub const PLAIN: u16 = 5311;
}

/// Per-packet sender sequencing, used by receivers to detect duplicates
/// introduced by retransmission (§5.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct PacketSeq {
    /// Raw node id of the sender.
    pub sender: u32,
    /// Monotonically increasing per-sender sequence number.
    pub seq: u64,
}

/// A client-visible metadata operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetaOp {
    /// Resolve one path component: return the inode stored under `key`.
    Lookup {
        /// `(pid, name)` of the component.
        key: MetaKey,
    },
    /// Create a regular file.
    Create {
        /// `(pid, name)` of the new file.
        key: MetaKey,
        /// Permissions of the new file.
        perm: Permissions,
    },
    /// Delete a regular file.
    Delete {
        /// `(pid, name)` of the file.
        key: MetaKey,
    },
    /// Create a directory.
    Mkdir {
        /// `(pid, name)` of the new directory.
        key: MetaKey,
        /// Permissions of the new directory.
        perm: Permissions,
    },
    /// Remove an (empty) directory.
    Rmdir {
        /// `(pid, name)` of the directory.
        key: MetaKey,
    },
    /// Read a file's attributes.
    Stat {
        /// `(pid, name)` of the file.
        key: MetaKey,
    },
    /// Read a directory's attributes.
    Statdir {
        /// `(pid, name)` of the directory.
        key: MetaKey,
    },
    /// List a directory.
    Readdir {
        /// `(pid, name)` of the directory.
        key: MetaKey,
    },
    /// Open a file (permission check + location lookup).
    Open {
        /// `(pid, name)` of the file.
        key: MetaKey,
    },
    /// Close a file.
    Close {
        /// `(pid, name)` of the file.
        key: MetaKey,
    },
    /// Change permission bits of a file or directory.
    Chmod {
        /// `(pid, name)` of the object.
        key: MetaKey,
        /// New mode bits.
        mode: u16,
    },
    /// Rename (and possibly move) a file or directory.
    Rename {
        /// Source `(pid, name)`.
        src: MetaKey,
        /// Destination `(pid, name)`.
        dst: MetaKey,
        /// Reference to the destination's parent directory, resolved by the
        /// client alongside the destination path. The rename transaction
        /// (§5.2) needs it to route the destination-directory update to the
        /// server owning that directory's content replica. LibFS always
        /// fills it in (the root counts as its children's parent); on a
        /// `None` from another sender the coordinator falls back to treating
        /// the destination as sitting directly under the root.
        dst_parent: Option<ParentRef>,
    },
}

impl MetaOp {
    /// The primary key the operation targets (the destination key for
    /// `rename`), which determines the server the client sends it to.
    pub fn primary_key(&self) -> &MetaKey {
        match self {
            MetaOp::Lookup { key }
            | MetaOp::Create { key, .. }
            | MetaOp::Delete { key }
            | MetaOp::Mkdir { key, .. }
            | MetaOp::Rmdir { key }
            | MetaOp::Stat { key }
            | MetaOp::Statdir { key }
            | MetaOp::Readdir { key }
            | MetaOp::Open { key }
            | MetaOp::Close { key }
            | MetaOp::Chmod { key, .. } => key,
            MetaOp::Rename { src, .. } => src,
        }
    }

    /// True for double-inode operations that update the parent directory
    /// (§5.2: `create`, `delete`, `mkdir`, `rmdir`).
    pub fn is_double_inode(&self) -> bool {
        matches!(
            self,
            MetaOp::Create { .. }
                | MetaOp::Delete { .. }
                | MetaOp::Mkdir { .. }
                | MetaOp::Rmdir { .. }
        )
    }

    /// True for operations that read directory metadata (`statdir`,
    /// `readdir`) and therefore must check the dirty set.
    pub fn is_dir_read(&self) -> bool {
        matches!(self, MetaOp::Statdir { .. } | MetaOp::Readdir { .. })
    }

    /// Short operation name, used in metrics and harness output.
    pub fn name(&self) -> &'static str {
        match self {
            MetaOp::Lookup { .. } => "lookup",
            MetaOp::Create { .. } => "create",
            MetaOp::Delete { .. } => "delete",
            MetaOp::Mkdir { .. } => "mkdir",
            MetaOp::Rmdir { .. } => "rmdir",
            MetaOp::Stat { .. } => "stat",
            MetaOp::Statdir { .. } => "statdir",
            MetaOp::Readdir { .. } => "readdir",
            MetaOp::Open { .. } => "open",
            MetaOp::Close { .. } => "close",
            MetaOp::Chmod { .. } => "chmod",
            MetaOp::Rename { .. } => "rename",
        }
    }
}

/// Information about the parent directory of an operation's target, resolved
/// by the client during path resolution and needed by the server to log the
/// deferred parent update and to address the switch (Fig. 4: the commit
/// packet "contains the fingerprint of the parent directory").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParentRef {
    /// The parent directory's own `(pid, name)` key.
    pub key: MetaKey,
    /// The parent directory's id.
    pub id: DirId,
    /// The parent directory's fingerprint.
    pub fp: Fingerprint,
}

/// A metadata request from a client to a metadata server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientRequest {
    /// Operation id (client + per-client sequence number).
    pub op_id: OpId,
    /// The requested operation.
    pub op: MetaOp,
    /// Directory ids of every path component the client resolved from its
    /// cache, checked by the server against its invalidation list (§5.2.1).
    pub ancestors: Vec<DirId>,
    /// Parent-directory reference for double-inode operations; `None` for
    /// operations whose target is the root directory itself.
    pub parent: Option<ParentRef>,
    /// Epoch of the shard map the client routed this request with. A server
    /// whose map is newer re-checks ownership and answers
    /// [`OpResult::WrongOwner`] if the target shard moved away.
    pub epoch: u64,
    /// Duplicate-suppression watermark: the client has received responses
    /// for every one of its operations with `seq < acked_below` and will
    /// never retransmit them, so the server may prune their cached
    /// responses (bounding the per-client dedup state by the in-flight
    /// window instead of the connection's lifetime).
    pub acked_below: u64,
}

/// The result of a metadata operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpResult {
    /// The operation succeeded and returns no payload.
    Done,
    /// The operation succeeded and returns inode attributes.
    Attrs(InodeAttrs),
    /// The operation succeeded and returns a directory listing together with
    /// the directory's attributes. The entry list is behind an `Rc` so the
    /// server's response cache, the in-flight packet copies and the client
    /// all share one allocation instead of deep-copying the listing.
    Listing {
        /// Directory attributes after applying any pending updates.
        attrs: InodeAttrs,
        /// Directory entries (shared, not cloned, across response copies).
        entries: Rc<Vec<DirEntry>>,
    },
    /// `rename` was rejected at prepare time because the destination key is
    /// already occupied by an inode the rename may not overwrite. Carries
    /// that inode's type so the client can derive the POSIX error
    /// (`EISDIR` / `ENOTDIR`) without probing the destination first — the
    /// coordinator re-checks authoritatively anyway, so the client's
    /// advisory `stat`/`statdir` round-trips are pure overhead.
    RenameDstExists {
        /// Type of the inode occupying the destination key.
        dst_type: FileType,
    },
    /// The request was routed with a stale shard map: the target shard is no
    /// longer owned by the addressed server. Carries the server's current
    /// map so the client can refresh its cache and retry against the new
    /// owner without a separate map-fetch round trip.
    WrongOwner {
        /// The addressed server's current shard map.
        map: crate::placement::ShardMap,
    },
    /// The operation failed.
    Err(FsError),
}

impl OpResult {
    /// True unless the result is an error.
    pub fn is_ok(&self) -> bool {
        !matches!(
            self,
            OpResult::Err(_) | OpResult::RenameDstExists { .. } | OpResult::WrongOwner { .. }
        )
    }

    /// The error, if any. A typed rename reject maps to the POSIX error a
    /// destination probe would have produced; a `WrongOwner` reject maps to
    /// the retryable `Unavailable` for callers that do not refresh the map
    /// themselves (LibFs intercepts it before this mapping applies).
    pub fn err(&self) -> Option<FsError> {
        match self {
            OpResult::Err(e) => Some(*e),
            OpResult::RenameDstExists { dst_type } => Some(match dst_type {
                FileType::Directory => FsError::IsADirectory,
                FileType::File => FsError::NotADirectory,
            }),
            OpResult::WrongOwner { .. } => Some(FsError::Unavailable),
            _ => None,
        }
    }
}

/// A metadata response from a server (or the switch multicasting on a
/// server's behalf) to a client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientResponse {
    /// The operation this responds to.
    pub op_id: OpId,
    /// The result.
    pub result: OpResult,
    /// The server that executed the operation.
    pub server: ServerId,
}

/// Payload of a fallback synchronous directory update, used when a dirty-set
/// insert overflows and the switch redirects the commit notification to the
/// parent directory's owner server (§5.2.1, §6.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncFallback {
    /// Key of the parent directory to update synchronously.
    pub dir_key: MetaKey,
    /// The update to apply.
    pub entry: ChangeLogEntry,
    /// Network node id of the client waiting for the response.
    pub client_node: u32,
}

/// Data carried by an aggregation-related message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregationPayload {
    /// Fingerprint group being aggregated.
    pub fp: Fingerprint,
    /// Unique aggregation id chosen by the directory owner (used to match
    /// replies and acks and to make retries idempotent).
    pub agg_id: u64,
    /// The directory owner that issued the aggregation.
    pub owner: ServerId,
}

/// Server-to-server and server-to-switch protocol messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Commit notification of an asynchronous double-inode operation,
    /// carrying a dirty-set `insert`. On success the switch multicasts it to
    /// the client (operation completion) and back to the origin server
    /// (lock release); on overflow the address rewriter redirects it to the
    /// parent directory's owner for synchronous fallback (§5.2.1).
    AsyncCommit {
        /// Response destined for the client.
        response: ClientResponse,
        /// Server that executed the local half (to release its locks when
        /// the packet is mirrored back).
        origin: ServerId,
        /// Token identifying the pending operation on the origin server.
        op_token: u64,
        /// Fallback information for the overflow path.
        fallback: SyncFallback,
    },
    /// Aggregation request from a directory owner, carrying a dirty-set
    /// `remove`: the switch removes the fingerprint and multicasts the
    /// request to every other metadata server (§5.2.2, step 5).
    AggregationRequest {
        /// Aggregation identity.
        agg: AggregationPayload,
        /// For `rmdir`: the directory to append to every server's
        /// invalidation list before replying (§5.2.3, step 5).
        invalidate: Option<(DirId, MetaKey)>,
    },
    /// A server's change-log entries for the requested fingerprint group,
    /// sent back to the aggregation owner (§5.2.2, step 6).
    AggregationEntries {
        /// Aggregation identity (copied from the request).
        agg: AggregationPayload,
        /// Responding server.
        from: ServerId,
        /// All change-log entries of directories in the fingerprint group.
        entries: Vec<ChangeLogEntry>,
        /// Piggybacked discard confirmations: ids of entries this sender
        /// previously discarded after an owner acknowledgment. The owner may
        /// prune them from its duplicate-suppression set — the holder can
        /// never re-send them (see `ChangeLogPush::discard_confirm`).
        discard_confirm: Vec<OpId>,
    },
    /// Acknowledgment from the aggregation owner: the entries have been
    /// applied and logged; receivers unlock their change-logs and mark the
    /// entries "applied" in their WALs (§5.2.2, steps 9a/9b).
    AggregationAck {
        /// Aggregation identity.
        agg: AggregationPayload,
    },
    /// Proactive change-log push from a holder to the directory's owner
    /// (§5.3): entries are transferred without an explicit aggregation so a
    /// later read does not stall.
    ChangeLogPush {
        /// Key of the directory whose change-log is being pushed.
        dir_key: MetaKey,
        /// Fingerprint of the directory.
        fp: Fingerprint,
        /// Pushing server.
        from: ServerId,
        /// The pushed entries.
        entries: Vec<ChangeLogEntry>,
        /// Piggybacked discard confirmations: ids of entries this holder
        /// durably discarded after an earlier acknowledgment round trip. The
        /// receiver can prune them from its duplicate-suppression set (the
        /// holder will never re-send a discarded entry), which is what keeps
        /// `applied_entry_ids` bounded by the in-flight window instead of
        /// the server's lifetime. Riding on messages that already flow, the
        /// confirmation adds no packets and no modeled latency.
        discard_confirm: Vec<OpId>,
    },
    /// Acknowledgment of a `ChangeLogPush`; the pusher marks the entries
    /// applied.
    ChangeLogPushAck {
        /// Key of the directory.
        dir_key: MetaKey,
        /// Ids of the entries that were applied by the owner.
        applied: Vec<OpId>,
    },
    /// Synchronous remote directory update, used by the baselines
    /// (E-InfiniFS / E-CFS cross-server double-inode operations) and by the
    /// SwitchFS overflow fallback.
    RemoteDirUpdate {
        /// Request token for matching the acknowledgment.
        req_id: u64,
        /// Key of the directory to update.
        dir_key: MetaKey,
        /// The update.
        entry: ChangeLogEntry,
        /// Piggybacked discard confirmations (see
        /// `ChangeLogPush::discard_confirm`); lets the synchronous baseline
        /// path bound the receiver's duplicate-suppression set too.
        discard_confirm: Vec<OpId>,
    },
    /// Acknowledgment of a `RemoteDirUpdate`.
    RemoteDirUpdateAck {
        /// Token copied from the request.
        req_id: u64,
        /// Outcome.
        result: Result<(), FsError>,
    },
    /// Two-phase-commit prepare for `rename` (and baseline transactions).
    TxnPrepare {
        /// Transaction id.
        txn_id: u64,
        /// Coordinating server.
        coordinator: ServerId,
        /// Mutations this participant must apply at commit.
        ops: Vec<TxnOp>,
    },
    /// Participant vote.
    TxnVote {
        /// Transaction id.
        txn_id: u64,
        /// Voting server.
        from: ServerId,
        /// Whether the participant can commit.
        ok: bool,
        /// On a negative vote caused by an illegal inode overwrite: the type
        /// of the inode occupying the destination key, forwarded to the
        /// client as [`OpResult::RenameDstExists`] so it never has to probe
        /// the destination itself.
        dst_type: Option<FileType>,
    },
    /// Commit decision.
    TxnCommit {
        /// Transaction id.
        txn_id: u64,
    },
    /// Participant acknowledgment that a commit/abort decision was fully
    /// applied; the coordinator retransmits the decision until it arrives,
    /// so a committed rename is visible on every participant before the
    /// client sees `Done`, and an aborted one never strands prepared state.
    TxnDecisionAck {
        /// Transaction id.
        txn_id: u64,
        /// Acknowledging server.
        from: ServerId,
    },
    /// Abort decision.
    TxnAbort {
        /// Transaction id.
        txn_id: u64,
    },
    /// Recovery-time decision query (§5.4.2): a participant that crashed
    /// between prepare and decision asks the transaction's coordinator what
    /// became of it. The coordinator durably logs commit decisions before
    /// broadcasting them, so the answer is authoritative; a transaction the
    /// coordinator has no commit record of is presumed aborted.
    TxnDecisionQuery {
        /// Request token for matching the reply.
        req_id: u64,
        /// Transaction id being queried.
        txn_id: u64,
        /// The querying (recovering) participant.
        from: ServerId,
    },
    /// Reply to a [`ServerMsg::TxnDecisionQuery`].
    TxnDecisionReply {
        /// Token copied from the query.
        req_id: u64,
        /// `Some(true)` committed, `Some(false)` aborted (or presumed
        /// aborted), `None` still in the voting phase — the participant must
        /// keep its prepared state and ask again.
        commit: Option<bool>,
    },
    /// A client request re-routed between servers. Used by `rename` on a
    /// cold client cache: the client sends the request to the source's
    /// per-file-hash owner without probing the source's type; if the source
    /// turns out to be a directory (whose inode lives with its fingerprint
    /// group), the first server forwards the request to the group owner,
    /// which coordinates the transaction and replies to the client directly.
    ForwardedRequest {
        /// Raw node id of the client awaiting the response.
        client_node: u32,
        /// The original request, unchanged (same op id, so duplicate
        /// suppression works across the forward).
        req: Rc<ClientRequest>,
    },
    /// Broadcast appending a removed / renamed / re-permissioned directory
    /// to every server's invalidation list (§5.2, invalidation list).
    InvalidationBroadcast {
        /// Id of the invalidated directory.
        dir_id: DirId,
        /// Key of the invalidated directory.
        dir_key: MetaKey,
    },
    /// Broadcast retracting an invalidation-list entry: sent when an `rmdir`
    /// that already announced the directory's removal (through the
    /// aggregation multicast) fails its emptiness check and therefore does
    /// not remove the directory after all.
    InvalidationRevoke {
        /// Id of the directory whose invalidation is retracted.
        dir_id: DirId,
    },
    /// Request to clone the invalidation list during crash recovery
    /// (§5.4.2).
    RecoveryCloneInvalidation {
        /// Recovering server.
        from: ServerId,
    },
    /// Reply carrying the invalidation list.
    RecoveryInvalidationList {
        /// Entries of the responding server's invalidation list.
        list: Vec<(DirId, MetaKey)>,
    },
    /// Notification from the synchronous-fallback server back to the origin
    /// server that an overflowed asynchronous commit has been applied
    /// synchronously; the origin releases its locks and discards the
    /// corresponding change-log entry.
    FallbackDone {
        /// Token of the pending operation on the origin server.
        op_token: u64,
        /// Id of the change-log entry that was applied synchronously.
        entry_id: OpId,
    },
    /// Owner-server dirty tracking (§7.3.3 variant): ask the directory's
    /// owner to mark the directory dirty before an asynchronous commit
    /// returns.
    MarkDirty {
        /// Request token.
        req_id: u64,
        /// Fingerprint of the directory.
        fp: Fingerprint,
    },
    /// Acknowledgment of a `MarkDirty`.
    MarkDirtyAck {
        /// Token copied from the request.
        req_id: u64,
    },
    /// Baseline (P/C grouping) `mkdir`: initialize the new directory's
    /// content replica on its content server (the server that will hold the
    /// directory's entry list and its children's inodes).
    InitDirContent {
        /// Request token.
        req_id: u64,
        /// Id of the new directory.
        dir_id: DirId,
        /// Key under which the content replica is stored.
        key: MetaKey,
        /// Attributes of the new directory.
        attrs: InodeAttrs,
    },
    /// Acknowledgment of an `InitDirContent`.
    InitDirContentAck {
        /// Token copied from the request.
        req_id: u64,
    },
    /// A single synchronous remote mutation (used by the baseline `rmdir`
    /// to delete the access replica of a removed directory).
    RemoteTxnOp {
        /// Request token; acknowledged with `RemoteDirUpdateAck`.
        req_id: u64,
        /// The mutation to apply.
        op: TxnOp,
    },
    /// Asks the receiver whether it stores an inode under `key` and of what
    /// type. Used by the `delete` path under per-file-hash placement: the
    /// file owner does not store directory inodes, so an unlink of a
    /// directory must probe the fingerprint-group owner to distinguish
    /// `IsADirectory` from `NotFound` (POSIX `EISDIR` vs `ENOENT`).
    TypeProbe {
        /// Request token.
        req_id: u64,
        /// Key to probe.
        key: MetaKey,
    },
    /// Reply to a [`ServerMsg::TypeProbe`].
    TypeProbeAck {
        /// Token copied from the request.
        req_id: u64,
        /// Type of the inode stored under the probed key, if any.
        file_type: Option<FileType>,
    },
    /// Live shard migration (scale-out): the stream of one frozen shard's
    /// state from its current owner to the new owner. The source retransmits
    /// until [`ServerMsg::ShardInstallAck`] arrives; installation is
    /// idempotent, so duplicates are harmless. Only after the ack does the
    /// cluster flip the shard in the epoch-versioned map and the source
    /// delete its copy.
    ShardInstall {
        /// Request token for matching the acknowledgment.
        req_id: u64,
        /// The shard being migrated.
        shard: u32,
        /// Inodes stored under the shard.
        inodes: Vec<(MetaKey, InodeAttrs)>,
        /// Directory entry lists of directories owned by the shard.
        entries: Vec<(DirId, DirEntry)>,
        /// Owner-index entries (directory id → key) moving with the shard.
        dir_index: Vec<(DirId, MetaKey)>,
        /// Change-log entries pending for directories in the shard, with
        /// their directory ids and keys.
        pending: Vec<(DirId, MetaKey, ChangeLogEntry)>,
        /// Duplicate-suppression set of already-applied remote change-log
        /// entries not yet confirmed discarded by their holders (copied, not
        /// moved: a superset is always safe). Bounded by the in-flight
        /// confirmation window, so the per-shard payload stays small.
        applied_entry_ids: Vec<OpId>,
        /// The bounded FIFO of recently retired (holder-confirmed) entry
        /// ids, shipped so a duplicate delayed across the flip is still
        /// suppressed at the new owner.
        retired_entry_ids: Vec<OpId>,
        /// Cached client responses (copied so a retransmission that lands on
        /// the new owner after the flip still gets the original answer).
        completed: Vec<ClientResponse>,
    },
    /// Acknowledgment of a [`ServerMsg::ShardInstall`]: the target applied
    /// and durably logged the shard's state.
    ShardInstallAck {
        /// Token copied from the install.
        req_id: u64,
    },
}

/// A single mutation inside a two-phase-commit transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnOp {
    /// Insert or overwrite an inode.
    PutInode {
        /// Inode key.
        key: MetaKey,
        /// New attributes.
        attrs: InodeAttrs,
    },
    /// Delete an inode.
    DeleteInode {
        /// Inode key.
        key: MetaKey,
    },
    /// Apply a directory update (entry insert/remove plus attribute deltas).
    DirUpdate {
        /// Directory key.
        dir_key: MetaKey,
        /// The update.
        entry: ChangeLogEntry,
    },
    /// Install a renamed directory's content at its (possibly new) owner:
    /// re-point the id → key owner index at the new key and store the
    /// migrated entry list. `entries` is empty when only the index moves
    /// (grouping policies place content by the stable directory id).
    PutDirContent {
        /// The directory's new `(pid, name)` key.
        key: MetaKey,
        /// The directory's stable id.
        dir: DirId,
        /// Migrated entry list (empty when the content owner is unchanged).
        entries: Vec<DirEntry>,
    },
    /// Drop a renamed directory's content from its old owner after the new
    /// owner installed it.
    DeleteDirContent {
        /// The directory's stable id.
        dir: DirId,
        /// Names of the entries to drop.
        names: Vec<String>,
    },
}

/// Messages understood by the dedicated dirty-set coordinator server used by
/// the §7.3.3 comparison ("tracking directory state with a dedicated
/// server").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoordMsg {
    /// A dirty-set operation submitted over RPC instead of in-network.
    Request {
        /// Request token.
        token: u64,
        /// The operation.
        op: DirtySetOp,
        /// Target fingerprint.
        fp: Fingerprint,
        /// Remove sequence number.
        seq: u64,
    },
    /// The coordinator's reply.
    Reply {
        /// Token copied from the request.
        token: u64,
        /// Result of the operation.
        ret: DirtyRet,
    },
}

/// The body of a SwitchFS packet. Only end hosts interpret it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Body {
    /// A client request. Shared (`Rc`) because the sender keeps a copy for
    /// retransmission: cloning the packet must not deep-copy the request.
    Request(Rc<ClientRequest>),
    /// A response to a client.
    Response(ClientResponse),
    /// A server-to-server protocol message.
    Server(ServerMsg),
    /// A dedicated-coordinator message.
    Coord(CoordMsg),
    /// No body: the packet exists only for its dirty-set operation header.
    Empty,
}

/// One SwitchFS UDP datagram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetMsg {
    /// Destination UDP port; [`UdpPorts::DIRTY_SET`] if and only if `dirty`
    /// is present.
    pub dst_port: u16,
    /// Per-sender packet sequence number for duplicate detection.
    pub pkt_seq: PacketSeq,
    /// Optional dirty-set operation header, parsed by the switch.
    pub dirty: Option<DirtySetHeader>,
    /// Optional causal-trace id: which client operation this packet belongs
    /// to. Opaque to the switch, consumed only by the observability layer;
    /// absent frames are byte-identical to the pre-tracing wire format.
    pub trace: Option<TraceId>,
    /// Payload, opaque to the switch.
    pub body: Body,
}

impl NetMsg {
    /// Builds a plain packet (no dirty-set header).
    pub fn plain(pkt_seq: PacketSeq, body: Body) -> NetMsg {
        NetMsg {
            dst_port: UdpPorts::PLAIN,
            pkt_seq,
            dirty: None,
            trace: None,
            body,
        }
    }

    /// Builds a packet carrying a dirty-set operation header.
    pub fn with_dirty(pkt_seq: PacketSeq, dirty: DirtySetHeader, body: Body) -> NetMsg {
        NetMsg {
            dst_port: UdpPorts::DIRTY_SET,
            pkt_seq,
            dirty: Some(dirty),
            trace: None,
            body,
        }
    }

    /// Stamps a causal-trace id on the packet (builder style).
    pub fn traced(mut self, trace: TraceId) -> NetMsg {
        self.trace = Some(trace);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn key(name: &str) -> MetaKey {
        MetaKey::new(DirId::ROOT, name)
    }

    #[test]
    fn metaop_classification() {
        assert!(MetaOp::Create {
            key: key("a"),
            perm: Permissions::default()
        }
        .is_double_inode());
        assert!(MetaOp::Rmdir { key: key("d") }.is_double_inode());
        assert!(!MetaOp::Stat { key: key("a") }.is_double_inode());
        assert!(MetaOp::Statdir { key: key("d") }.is_dir_read());
        assert!(MetaOp::Readdir { key: key("d") }.is_dir_read());
        assert!(!MetaOp::Open { key: key("f") }.is_dir_read());
        assert_eq!(MetaOp::Delete { key: key("a") }.name(), "delete");
    }

    #[test]
    fn primary_key_of_rename_is_source() {
        let op = MetaOp::Rename {
            src: key("a"),
            dst: key("b"),
            dst_parent: None,
        };
        assert_eq!(op.primary_key().name, "a");
    }

    #[test]
    fn op_result_helpers() {
        assert!(OpResult::Done.is_ok());
        assert!(!OpResult::Err(FsError::NotFound).is_ok());
        assert_eq!(
            OpResult::Err(FsError::NotEmpty).err(),
            Some(FsError::NotEmpty)
        );
        assert_eq!(OpResult::Done.err(), None);
    }

    #[test]
    fn netmsg_port_matches_header_presence() {
        let seq = PacketSeq { sender: 1, seq: 2 };
        let plain = NetMsg::plain(seq, Body::Empty);
        assert_eq!(plain.dst_port, UdpPorts::PLAIN);
        assert!(plain.dirty.is_none());
        let hdr = DirtySetHeader::query(Fingerprint::from_raw(5));
        let dirty = NetMsg::with_dirty(seq, hdr, Body::Empty);
        assert_eq!(dirty.dst_port, UdpPorts::DIRTY_SET);
        assert!(dirty.dirty.is_some());
    }

    #[test]
    fn client_request_roundtrips_through_serde() {
        let req = ClientRequest {
            op_id: OpId {
                client: ClientId(3),
                seq: 9,
            },
            op: MetaOp::Create {
                key: key("file"),
                perm: Permissions::default(),
            },
            ancestors: vec![DirId::ROOT],
            parent: None,
            epoch: 3,
            acked_below: 8,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: ClientRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
    }
}
