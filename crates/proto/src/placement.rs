//! Metadata partitioning policies (§2.1, Tab. 1).
//!
//! * **P/C separation** (per-file hashing): every metadata object is placed
//!   by hashing its `(pid, name)` key — the policy of CFS and SwitchFS.
//!   SwitchFS additionally requires that all directories sharing a
//!   fingerprint live on the same server, so *directory* inodes are placed
//!   by fingerprint (which is itself a hash of `(pid, name)`).
//! * **P/C grouping** (per-directory hashing): a directory's children are
//!   colocated with the directory's entry list on the server selected by
//!   hashing the directory id — the policy of InfiniFS / IndexFS / BeeGFS.
//! * **Subtree**: entire top-level subtrees are assigned to servers — the
//!   (static) approximation of CephFS's subtree partitioning used by the
//!   CephFS-like baseline.

use crate::ids::{DirId, Fingerprint, ServerId};
use crate::schema::MetaKey;
use serde::{Deserialize, Serialize};

/// Which partitioning rule a cluster uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionPolicy {
    /// Per-file hashing (parent/children separation).
    PerFileHash,
    /// Per-directory hashing (parent/children grouping).
    PerDirectoryHash,
    /// Static subtree partitioning by top-level directory.
    Subtree,
}

/// Maps metadata objects to their owner servers.
pub trait Placement {
    /// Number of metadata servers.
    fn num_servers(&self) -> usize;

    /// Owner of a *file* inode identified by its `(pid, name)` key.
    fn file_owner(&self, key: &MetaKey) -> ServerId;

    /// Owner of a *directory* inode (and its entry list) identified by the
    /// directory's fingerprint. Used by SwitchFS so that a fingerprint group
    /// maps to exactly one server (§4.3).
    fn dir_owner_by_fp(&self, fp: Fingerprint) -> ServerId;

    /// Owner of a directory's children under P/C grouping, identified by the
    /// directory id.
    fn dir_owner_by_id(&self, id: &DirId) -> ServerId;

    /// Owner for an arbitrary pre-computed hash (used by the subtree policy
    /// and by tests).
    fn owner_of_hash(&self, hash: u64) -> ServerId;
}

/// Modulo-hash placement over `n` servers with a given policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashPlacement {
    policy: PartitionPolicy,
    servers: usize,
}

impl HashPlacement {
    /// Creates a placement over `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(policy: PartitionPolicy, servers: usize) -> Self {
        assert!(servers > 0, "placement needs at least one server");
        HashPlacement { policy, servers }
    }

    /// The configured policy.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }
}

impl Placement for HashPlacement {
    fn num_servers(&self) -> usize {
        self.servers
    }

    fn file_owner(&self, key: &MetaKey) -> ServerId {
        match self.policy {
            // Files are spread by their own key.
            PartitionPolicy::PerFileHash => self.owner_of_hash(key.hash64()),
            // Files are colocated with their parent directory's children.
            PartitionPolicy::PerDirectoryHash | PartitionPolicy::Subtree => {
                self.dir_owner_by_id(&key.pid)
            }
        }
    }

    fn dir_owner_by_fp(&self, fp: Fingerprint) -> ServerId {
        self.owner_of_hash(crate::ids::splitmix64(fp.raw()))
    }

    fn dir_owner_by_id(&self, id: &DirId) -> ServerId {
        self.owner_of_hash(id.hash64())
    }

    fn owner_of_hash(&self, hash: u64) -> ServerId {
        ServerId((hash % self.servers as u64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn per_file_hash_spreads_one_directory() {
        let p = HashPlacement::new(PartitionPolicy::PerFileHash, 8);
        let mut counts: HashMap<ServerId, usize> = HashMap::new();
        for i in 0..8000 {
            let key = MetaKey::new(DirId::ROOT, format!("f{i}"));
            *counts.entry(p.file_owner(&key)).or_default() += 1;
        }
        assert_eq!(counts.len(), 8);
        // Reasonably balanced: no server owns more than 2x the fair share.
        assert!(counts.values().all(|&c| c < 2000));
    }

    #[test]
    fn per_directory_hash_groups_one_directory() {
        let p = HashPlacement::new(PartitionPolicy::PerDirectoryHash, 8);
        let owners: std::collections::HashSet<_> = (0..1000)
            .map(|i| p.file_owner(&MetaKey::new(DirId::ROOT, format!("f{i}"))))
            .collect();
        assert_eq!(owners.len(), 1, "P/C grouping must colocate siblings");
    }

    #[test]
    fn fingerprint_groups_map_to_one_server() {
        let p = HashPlacement::new(PartitionPolicy::PerFileHash, 8);
        let fp = Fingerprint::of_dir(&DirId::ROOT, "dir");
        assert_eq!(p.dir_owner_by_fp(fp), p.dir_owner_by_fp(fp));
    }

    #[test]
    fn owner_is_always_in_range() {
        let p = HashPlacement::new(PartitionPolicy::PerFileHash, 5);
        for h in [0u64, 1, u64::MAX, 12345678901234567] {
            assert!(p.owner_of_hash(h).0 < 5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = HashPlacement::new(PartitionPolicy::PerFileHash, 0);
    }
}
