//! Metadata partitioning policies (§2.1, Tab. 1).
//!
//! * **P/C separation** (per-file hashing): every metadata object is placed
//!   by hashing its `(pid, name)` key — the policy of CFS and SwitchFS.
//!   SwitchFS additionally requires that all directories sharing a
//!   fingerprint live on the same server, so *directory* inodes are placed
//!   by fingerprint (which is itself a hash of `(pid, name)`).
//! * **P/C grouping** (per-directory hashing): a directory's children are
//!   colocated with the directory's entry list on the server selected by
//!   hashing the directory id — the policy of InfiniFS / IndexFS / BeeGFS.
//! * **Subtree**: entire top-level subtrees are assigned to servers — the
//!   (static) approximation of CephFS's subtree partitioning used by the
//!   CephFS-like baseline.

use std::cell::RefCell;
use std::rc::Rc;

use crate::ids::{DirId, Fingerprint, ServerId};
use crate::schema::MetaKey;
use serde::{Deserialize, Serialize};

/// Which partitioning rule a cluster uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionPolicy {
    /// Per-file hashing (parent/children separation).
    PerFileHash,
    /// Per-directory hashing (parent/children grouping).
    PerDirectoryHash,
    /// Static subtree partitioning by top-level directory.
    Subtree,
}

/// Maps metadata objects to their owner servers.
pub trait Placement {
    /// Number of metadata servers.
    fn num_servers(&self) -> usize;

    /// Owner of a *file* inode identified by its `(pid, name)` key.
    fn file_owner(&self, key: &MetaKey) -> ServerId;

    /// Owner of a *directory* inode (and its entry list) identified by the
    /// directory's fingerprint. Used by SwitchFS so that a fingerprint group
    /// maps to exactly one server (§4.3).
    fn dir_owner_by_fp(&self, fp: Fingerprint) -> ServerId;

    /// Owner of a directory's children under P/C grouping, identified by the
    /// directory id.
    fn dir_owner_by_id(&self, id: &DirId) -> ServerId;

    /// Owner for an arbitrary pre-computed hash (used by the subtree policy
    /// and by tests).
    fn owner_of_hash(&self, hash: u64) -> ServerId;
}

/// Modulo-hash placement over `n` servers with a given policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashPlacement {
    policy: PartitionPolicy,
    servers: usize,
}

impl HashPlacement {
    /// Creates a placement over `servers` servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(policy: PartitionPolicy, servers: usize) -> Self {
        assert!(servers > 0, "placement needs at least one server");
        HashPlacement { policy, servers }
    }

    /// The configured policy.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }
}

impl Placement for HashPlacement {
    fn num_servers(&self) -> usize {
        self.servers
    }

    fn file_owner(&self, key: &MetaKey) -> ServerId {
        match self.policy {
            // Files are spread by their own key.
            PartitionPolicy::PerFileHash => self.owner_of_hash(key.hash64()),
            // Files are colocated with their parent directory's children.
            PartitionPolicy::PerDirectoryHash | PartitionPolicy::Subtree => {
                self.dir_owner_by_id(&key.pid)
            }
        }
    }

    fn dir_owner_by_fp(&self, fp: Fingerprint) -> ServerId {
        self.owner_of_hash(crate::ids::splitmix64(fp.raw()))
    }

    fn dir_owner_by_id(&self, id: &DirId) -> ServerId {
        self.owner_of_hash(id.hash64())
    }

    fn owner_of_hash(&self, hash: u64) -> ServerId {
        ServerId((hash % self.servers as u64) as u32)
    }
}

/// Baseline number of virtual shards a map aims for. The actual count is
/// rounded up to the nearest multiple of the initial server count so the
/// epoch-0 assignment `shard s → server (s mod n)` reproduces the historic
/// `hash % n` placement bit for bit.
pub const BASE_SHARDS: usize = 256;

/// An epoch-versioned map of virtual shards to servers.
///
/// The hash space is split into a fixed number of virtual shards
/// (`shard = hash % num_shards`), each owned by one server. Epoch 0 is
/// extensionally equal to [`HashPlacement`] over the initial server count;
/// every later reassignment (live shard migration, server addition) bumps
/// the epoch, and clients holding a stale epoch are rejected with
/// [`crate::message::OpResult::WrongOwner`] carrying the current map.
///
/// Because only reassigned shards change owners, growing the cluster from
/// `n` to `n+1` servers moves ~`1/(n+1)` of the key space — unlike the old
/// modulo placement, which would have reshuffled nearly every key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    policy: PartitionPolicy,
    epoch: u64,
    servers: usize,
    shards: Vec<ServerId>,
    /// Servers that were gracefully decommissioned: their ids stay allocated
    /// (ids index node tables and must never be reused), but they own no
    /// shards and are excluded from every rebalance/drain plan. Sorted.
    retired: Vec<ServerId>,
}

impl ShardMap {
    /// The epoch-0 map over `servers` servers: `num_shards` is the smallest
    /// multiple of `servers` that is at least [`BASE_SHARDS`], and shard `s`
    /// is owned by server `s % servers` — bit-identical to
    /// `HashPlacement`'s `hash % servers`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn initial(policy: PartitionPolicy, servers: usize) -> Self {
        assert!(servers > 0, "placement needs at least one server");
        let per_server = BASE_SHARDS.div_ceil(servers).max(1);
        let num_shards = servers * per_server;
        let shards = (0..num_shards)
            .map(|s| ServerId((s % servers) as u32))
            .collect();
        ShardMap {
            policy,
            epoch: 0,
            servers,
            shards,
            retired: Vec::new(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> PartitionPolicy {
        self.policy
    }

    /// The current map version; bumped by every shard reassignment.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of virtual shards (fixed for the lifetime of the cluster).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a placement hash falls into.
    pub fn shard_of_hash(&self, hash: u64) -> u32 {
        (hash % self.shards.len() as u64) as u32
    }

    /// The server owning shard `shard`.
    pub fn owner_of_shard(&self, shard: u32) -> ServerId {
        self.shards[shard as usize]
    }

    /// Number of shards currently owned by `server`.
    pub fn shards_owned(&self, server: ServerId) -> usize {
        self.shards.iter().filter(|s| **s == server).count()
    }

    /// Registers one more server without moving any shards (it owns nothing
    /// until a rebalance assigns shards to it). Returns the new server's id.
    pub fn add_server(&mut self) -> ServerId {
        let id = ServerId(self.servers as u32);
        self.servers += 1;
        id
    }

    /// True when `server` was gracefully decommissioned: it owns no shards
    /// and must not appear in any plan or fan-out set.
    pub fn is_retired(&self, server: ServerId) -> bool {
        self.retired.binary_search(&server).is_ok()
    }

    /// Number of servers still serving (registered minus retired).
    pub fn num_active_servers(&self) -> usize {
        self.servers - self.retired.len()
    }

    /// Marks a fully drained server as decommissioned, bumping the epoch so
    /// clients holding a map from before the shrink refresh on their next
    /// `WrongOwner` rejection.
    ///
    /// # Panics
    ///
    /// Panics if the server still owns shards (drain it first), if it is the
    /// last active server, or if it is already retired.
    pub fn retire(&mut self, server: ServerId) {
        assert_eq!(
            self.shards_owned(server),
            0,
            "cannot retire {server}: it still owns shards"
        );
        assert!(
            self.num_active_servers() > 1,
            "cannot retire the last active server"
        );
        let slot = self
            .retired
            .binary_search(&server)
            .expect_err("server is already retired");
        self.retired.insert(slot, server);
        self.epoch += 1;
    }

    /// Reassigns one shard, bumping the epoch. Used by live migration: the
    /// flip happens only after the shard's state is installed at the target.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a registered server or is retired.
    pub fn assign(&mut self, shard: u32, to: ServerId) {
        assert!((to.0 as usize) < self.servers, "unknown server {to}");
        assert!(
            !self.is_retired(to),
            "cannot assign a shard to {to}: retired"
        );
        if self.shards[shard as usize] != to {
            self.shards[shard as usize] = to;
            self.epoch += 1;
        }
    }

    /// Plans the moves that drain every shard owned by `victim` onto the
    /// surviving active servers (graceful decommission). Deterministic:
    /// victim shards are visited in ascending index order and each goes to
    /// the currently least-loaded survivor (lowest id on ties), so the
    /// survivors end within ±1 of each other. Does not mutate the map.
    pub fn plan_drain(&self, victim: ServerId) -> Vec<(u32, ServerId, ServerId)> {
        let mut counts = vec![usize::MAX; self.servers];
        let mut survivors = 0usize;
        for (i, c) in counts.iter_mut().enumerate() {
            let id = ServerId(i as u32);
            if id != victim && !self.is_retired(id) {
                *c = 0;
                survivors += 1;
            }
        }
        if survivors == 0 {
            return Vec::new();
        }
        for s in &self.shards {
            if counts[s.0 as usize] != usize::MAX {
                counts[s.0 as usize] += 1;
            }
        }
        let mut moves = Vec::new();
        for (shard, owner) in self.shards.iter().enumerate() {
            if *owner != victim {
                continue;
            }
            let (to, _) = counts
                .iter()
                .enumerate()
                .min_by_key(|(i, c)| (**c, *i))
                .expect("at least one survivor");
            counts[to] += 1;
            moves.push((shard as u32, victim, ServerId(to as u32)));
        }
        moves
    }

    /// Plans the moves that balance shard ownership across all registered
    /// *active* servers (fair share ±1; retired servers own nothing and are
    /// never candidates), without mutating the map. Deterministic:
    /// repeatedly moves the lowest-index shard of the most-loaded server to
    /// the least-loaded one. After [`ShardMap::add_server`] this moves
    /// ~`num_shards / servers` shards — ~1/N of the key space.
    pub fn plan_rebalance(&self) -> Vec<(u32, ServerId, ServerId)> {
        let mut owners = self.shards.clone();
        let mut counts = vec![0usize; self.servers];
        for s in &owners {
            counts[s.0 as usize] += 1;
        }
        let active = |i: &usize| !self.is_retired(ServerId(*i as u32));
        let mut moves = Vec::new();
        loop {
            let (max_i, &max_c) = counts
                .iter()
                .enumerate()
                .filter(|(i, _)| active(i))
                .max_by_key(|(i, c)| (**c, usize::MAX - *i))
                .expect("at least one server");
            let (min_i, &min_c) = counts
                .iter()
                .enumerate()
                .filter(|(i, _)| active(i))
                .min_by_key(|(i, c)| (**c, *i))
                .expect("at least one server");
            if max_c - min_c <= 1 {
                return moves;
            }
            let shard = owners
                .iter()
                .position(|o| o.0 as usize == max_i)
                .expect("owner has a shard") as u32;
            owners[shard as usize] = ServerId(min_i as u32);
            counts[max_i] -= 1;
            counts[min_i] += 1;
            moves.push((shard, ServerId(max_i as u32), ServerId(min_i as u32)));
        }
    }
}

impl Placement for ShardMap {
    fn num_servers(&self) -> usize {
        self.servers
    }

    fn file_owner(&self, key: &MetaKey) -> ServerId {
        match self.policy {
            PartitionPolicy::PerFileHash => self.owner_of_hash(key.hash64()),
            PartitionPolicy::PerDirectoryHash | PartitionPolicy::Subtree => {
                self.dir_owner_by_id(&key.pid)
            }
        }
    }

    fn dir_owner_by_fp(&self, fp: Fingerprint) -> ServerId {
        self.owner_of_hash(crate::ids::splitmix64(fp.raw()))
    }

    fn dir_owner_by_id(&self, id: &DirId) -> ServerId {
        self.owner_of_hash(id.hash64())
    }

    fn owner_of_hash(&self, hash: u64) -> ServerId {
        self.shards[(hash % self.shards.len() as u64) as usize]
    }
}

/// A cluster-wide shared, mutable [`ShardMap`] handle.
///
/// Servers (and the cluster harness) share one instance: a migration flip
/// through [`SharedPlacement::assign`] is immediately visible to every
/// server. Clients hold private *snapshots* instead and refresh them from
/// `WrongOwner` rejections, which is what the epoch field models.
#[derive(Debug, Clone)]
pub struct SharedPlacement(Rc<RefCell<ShardMap>>);

impl SharedPlacement {
    /// Wraps a map into a shared handle.
    pub fn new(map: ShardMap) -> Self {
        SharedPlacement(Rc::new(RefCell::new(map)))
    }

    /// The epoch-0 shared map over `servers` servers.
    pub fn initial(policy: PartitionPolicy, servers: usize) -> Self {
        Self::new(ShardMap::initial(policy, servers))
    }

    /// The configured policy.
    pub fn policy(&self) -> PartitionPolicy {
        self.0.borrow().policy()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.0.borrow().epoch()
    }

    /// Number of virtual shards.
    pub fn num_shards(&self) -> usize {
        self.0.borrow().num_shards()
    }

    /// A point-in-time copy of the map (client caches, `WrongOwner` bodies).
    pub fn snapshot(&self) -> ShardMap {
        self.0.borrow().clone()
    }

    /// See [`ShardMap::shard_of_hash`].
    pub fn shard_of_hash(&self, hash: u64) -> u32 {
        self.0.borrow().shard_of_hash(hash)
    }

    /// See [`ShardMap::owner_of_shard`].
    pub fn owner_of_shard(&self, shard: u32) -> ServerId {
        self.0.borrow().owner_of_shard(shard)
    }

    /// See [`ShardMap::shards_owned`].
    pub fn shards_owned(&self, server: ServerId) -> usize {
        self.0.borrow().shards_owned(server)
    }

    /// See [`ShardMap::add_server`].
    pub fn add_server(&self) -> ServerId {
        self.0.borrow_mut().add_server()
    }

    /// See [`ShardMap::assign`].
    pub fn assign(&self, shard: u32, to: ServerId) {
        self.0.borrow_mut().assign(shard, to);
    }

    /// See [`ShardMap::retire`].
    pub fn retire(&self, server: ServerId) {
        self.0.borrow_mut().retire(server);
    }

    /// See [`ShardMap::is_retired`].
    pub fn is_retired(&self, server: ServerId) -> bool {
        self.0.borrow().is_retired(server)
    }

    /// See [`ShardMap::num_active_servers`].
    pub fn num_active_servers(&self) -> usize {
        self.0.borrow().num_active_servers()
    }

    /// See [`ShardMap::plan_rebalance`].
    pub fn plan_rebalance(&self) -> Vec<(u32, ServerId, ServerId)> {
        self.0.borrow().plan_rebalance()
    }

    /// See [`ShardMap::plan_drain`].
    pub fn plan_drain(&self, victim: ServerId) -> Vec<(u32, ServerId, ServerId)> {
        self.0.borrow().plan_drain(victim)
    }

    /// Number of metadata servers.
    pub fn num_servers(&self) -> usize {
        self.0.borrow().num_servers()
    }

    /// Owner of a file inode (see [`Placement::file_owner`]).
    pub fn file_owner(&self, key: &MetaKey) -> ServerId {
        self.0.borrow().file_owner(key)
    }

    /// Owner of a directory's fingerprint group (see
    /// [`Placement::dir_owner_by_fp`]).
    pub fn dir_owner_by_fp(&self, fp: Fingerprint) -> ServerId {
        self.0.borrow().dir_owner_by_fp(fp)
    }

    /// Owner of a directory's children under P/C grouping (see
    /// [`Placement::dir_owner_by_id`]).
    pub fn dir_owner_by_id(&self, id: &DirId) -> ServerId {
        self.0.borrow().dir_owner_by_id(id)
    }

    /// Owner of an arbitrary placement hash (see
    /// [`Placement::owner_of_hash`]).
    pub fn owner_of_hash(&self, hash: u64) -> ServerId {
        self.0.borrow().owner_of_hash(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn per_file_hash_spreads_one_directory() {
        let p = HashPlacement::new(PartitionPolicy::PerFileHash, 8);
        let mut counts: HashMap<ServerId, usize> = HashMap::new();
        for i in 0..8000 {
            let key = MetaKey::new(DirId::ROOT, format!("f{i}"));
            *counts.entry(p.file_owner(&key)).or_default() += 1;
        }
        assert_eq!(counts.len(), 8);
        // Reasonably balanced: no server owns more than 2x the fair share.
        assert!(counts.values().all(|&c| c < 2000));
    }

    #[test]
    fn per_directory_hash_groups_one_directory() {
        let p = HashPlacement::new(PartitionPolicy::PerDirectoryHash, 8);
        let owners: std::collections::HashSet<_> = (0..1000)
            .map(|i| p.file_owner(&MetaKey::new(DirId::ROOT, format!("f{i}"))))
            .collect();
        assert_eq!(owners.len(), 1, "P/C grouping must colocate siblings");
    }

    #[test]
    fn fingerprint_groups_map_to_one_server() {
        let p = HashPlacement::new(PartitionPolicy::PerFileHash, 8);
        let fp = Fingerprint::of_dir(&DirId::ROOT, "dir");
        assert_eq!(p.dir_owner_by_fp(fp), p.dir_owner_by_fp(fp));
    }

    #[test]
    fn owner_is_always_in_range() {
        let p = HashPlacement::new(PartitionPolicy::PerFileHash, 5);
        for h in [0u64, 1, u64::MAX, 12345678901234567] {
            assert!(p.owner_of_hash(h).0 < 5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = HashPlacement::new(PartitionPolicy::PerFileHash, 0);
    }

    #[test]
    fn epoch0_shard_map_matches_modulo_placement() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 13, 300] {
            let map = ShardMap::initial(PartitionPolicy::PerFileHash, n);
            assert_eq!(map.epoch(), 0);
            assert_eq!(map.num_shards() % n, 0);
            assert!(map.num_shards() >= BASE_SHARDS.min(n * BASE_SHARDS));
            let old = HashPlacement::new(PartitionPolicy::PerFileHash, n);
            for h in [0u64, 1, 255, 256, 12345678901234567, u64::MAX] {
                assert_eq!(map.owner_of_hash(h), old.owner_of_hash(h), "n={n} h={h}");
            }
        }
    }

    #[test]
    fn add_server_then_rebalance_moves_a_fair_share() {
        let mut map = ShardMap::initial(PartitionPolicy::PerFileHash, 4);
        let new = map.add_server();
        assert_eq!(new, ServerId(4));
        assert_eq!(map.shards_owned(new), 0);
        let moves = map.plan_rebalance();
        // 256 shards over 5 servers: the new server ends with 51±1 shards
        // and nothing else moves.
        assert!(moves.len() >= map.num_shards() / 5 - 1);
        assert!(moves.len() <= map.num_shards() / 4);
        assert!(moves.iter().all(|(_, _, to)| *to == new));
        let before = map.clone();
        for (shard, from, to) in &moves {
            assert_eq!(map.owner_of_shard(*shard), *from);
            map.assign(*shard, *to);
        }
        assert_eq!(map.epoch(), moves.len() as u64);
        for s in 0..5u32 {
            let owned = map.shards_owned(ServerId(s));
            assert!(
                owned >= map.num_shards() / 5 && owned <= map.num_shards() / 5 + 1,
                "server {s} owns {owned}"
            );
        }
        // Unmoved shards keep their owner (bounded movement).
        let moved: std::collections::HashSet<u32> = moves.iter().map(|m| m.0).collect();
        for shard in 0..map.num_shards() as u32 {
            if !moved.contains(&shard) {
                assert_eq!(map.owner_of_shard(shard), before.owner_of_shard(shard));
            }
        }
    }

    #[test]
    fn shared_placement_flip_is_visible_through_every_handle() {
        let shared = SharedPlacement::initial(PartitionPolicy::PerFileHash, 2);
        let other = shared.clone();
        let new = shared.add_server();
        shared.assign(0, new);
        assert_eq!(other.owner_of_shard(0), new);
        assert_eq!(other.epoch(), 1);
        // Snapshots are decoupled: a later flip does not change them.
        let snap = other.snapshot();
        shared.assign(1, new);
        assert_eq!(snap.owner_of_shard(1), ServerId(1));
        assert_eq!(other.owner_of_shard(1), new);
    }

    #[test]
    fn rebalance_of_a_balanced_map_is_empty() {
        let map = ShardMap::initial(PartitionPolicy::Subtree, 8);
        assert!(map.plan_rebalance().is_empty());
    }

    #[test]
    fn drain_plan_moves_every_victim_shard_to_balanced_survivors() {
        let map = ShardMap::initial(PartitionPolicy::PerFileHash, 4);
        let victim = ServerId(1);
        let owned = map.shards_owned(victim);
        let moves = map.plan_drain(victim);
        assert_eq!(moves.len(), owned, "every victim shard must move");
        assert!(moves.iter().all(|(_, from, _)| *from == victim));
        assert!(moves.iter().all(|(_, _, to)| *to != victim));
        // Shards are visited in ascending index order (deterministic plan).
        assert!(moves.windows(2).all(|w| w[0].0 < w[1].0));
        let mut map = map.clone();
        for (shard, from, to) in &moves {
            assert_eq!(map.owner_of_shard(*shard), *from);
            map.assign(*shard, *to);
        }
        assert_eq!(map.shards_owned(victim), 0);
        // Survivors end within ±1 of the post-shrink fair share.
        let fair = map.num_shards() / 3;
        for s in [0u32, 2, 3] {
            let owned = map.shards_owned(ServerId(s));
            assert!(
                owned >= fair && owned <= fair + 1,
                "server {s} owns {owned} (fair {fair})"
            );
        }
        assert!(
            map.plan_drain(victim).is_empty(),
            "drained victim owns nothing"
        );
    }

    #[test]
    fn retire_excludes_a_server_from_future_plans() {
        let mut map = ShardMap::initial(PartitionPolicy::PerFileHash, 3);
        let victim = ServerId(2);
        for (shard, _, to) in map.plan_drain(victim) {
            map.assign(shard, to);
        }
        let epoch_before = map.epoch();
        map.retire(victim);
        assert!(map.is_retired(victim));
        assert_eq!(map.num_active_servers(), 2);
        assert_eq!(
            map.epoch(),
            epoch_before + 1,
            "retiring must bump the epoch"
        );
        // A retired server never reappears as a rebalance target.
        assert!(map
            .plan_rebalance()
            .iter()
            .all(|(_, from, to)| *from != victim && *to != victim));
        assert!(map.plan_drain(victim).is_empty());
    }

    #[test]
    #[should_panic(expected = "still owns shards")]
    fn retiring_an_undrained_server_panics() {
        let mut map = ShardMap::initial(PartitionPolicy::PerFileHash, 3);
        map.retire(ServerId(1));
    }

    #[test]
    #[should_panic(expected = "retired")]
    fn assigning_to_a_retired_server_panics() {
        let mut map = ShardMap::initial(PartitionPolicy::PerFileHash, 3);
        let victim = ServerId(2);
        for (shard, _, to) in map.plan_drain(victim) {
            map.assign(shard, to);
        }
        map.retire(victim);
        map.assign(0, victim);
    }
}
