//! Change-log entries: delayed directory updates (§5.3, Fig. 7).
//!
//! A change-log entry records the effect an already-committed double-inode
//! operation will eventually have on its parent directory: an entry-list
//! insertion or removal, a size delta and a timestamp overwrite. Entries for
//! the same directory are conditionally commutative, which is what allows
//! SwitchFS to *compact* a change-log before applying it:
//!
//! * size deltas add up in any order (action type (a));
//! * only the largest timestamp survives (action type (b));
//! * insert/remove of *different* names commute, while insert/remove of the
//!   *same* name must be applied in commit order — guaranteed because the
//!   change-log is a FIFO and same-name operations are always logged by the
//!   same server (per-file hashing places them together).

use crate::ids::{DirId, OpId};
use crate::schema::FileType;
use serde::{Deserialize, Serialize};

/// The directory-visible effect of a deferred double-inode operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChangeOp {
    /// A child (file or directory) was created: insert an entry.
    Insert {
        /// Type of the created child.
        file_type: FileType,
        /// Permission bits cached in the entry list.
        mode: u16,
    },
    /// A child was removed: delete the entry.
    Remove,
}

/// One record in a per-directory change-log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangeLogEntry {
    /// Unique id of the entry (used to de-duplicate re-sent entries during
    /// aggregation retries and crash recovery, §A.1).
    pub entry_id: OpId,
    /// The directory being updated.
    pub dir: DirId,
    /// Name of the affected child.
    pub name: String,
    /// What happened to the child.
    pub op: ChangeOp,
    /// Commit timestamp of the originating operation (virtual nanoseconds).
    pub timestamp: u64,
    /// Delta to apply to the directory's entry count / size.
    pub size_delta: i64,
}

impl ChangeLogEntry {
    /// Size of the entry when marshalled into an aggregation packet, in
    /// bytes. Used by the MTU-based proactive-push policy (§5.3): a server
    /// pushes its change-log once the accumulated entries fill an MTU.
    pub fn wire_size(&self) -> usize {
        // entry_id (12) + dir (32) + op/type/mode (4) + timestamp (8)
        // + size_delta (8) + name length prefix (2) + name bytes.
        66 + self.name.len()
    }
}

/// A compacted view of a set of change-log entries for one directory:
/// the aggregate attribute deltas plus the ordered entry-list mutations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactedChanges {
    /// Net entry-count / size delta.
    pub size_delta: i64,
    /// Largest commit timestamp seen (overwrites directory `mtime`/`ctime`).
    pub max_timestamp: u64,
    /// Net entry-list mutations, in original FIFO order after removing
    /// insert/remove pairs that cancel out.
    pub entry_ops: Vec<(String, ChangeOp)>,
    /// Number of raw entries that were compacted away.
    pub merged_entries: usize,
}

impl CompactedChanges {
    /// Compacts a FIFO sequence of change-log entries for a single
    /// directory.
    ///
    /// Attribute updates (size deltas, timestamps) are merged into single
    /// values. Entry-list operations on *different* names are kept; repeated
    /// insert/remove of the *same* name is reduced to its net effect while
    /// preserving the relative order of surviving operations.
    pub fn from_entries(entries: &[ChangeLogEntry]) -> CompactedChanges {
        Self::from_entry_refs(entries.iter())
    }

    /// Like [`CompactedChanges::from_entries`], but over borrowed entries —
    /// the aggregation path groups entries per directory by reference, so no
    /// entry is cloned just to be compacted.
    pub fn from_entry_refs<'a>(
        entries: impl IntoIterator<Item = &'a ChangeLogEntry>,
    ) -> CompactedChanges {
        let mut out = CompactedChanges::default();
        // Net effect per name: we walk the FIFO and fold insert/remove pairs.
        // `entry_ops` keeps the last surviving op per name in FIFO position.
        // Ordered map, not a std `HashMap`: this is lookup-only today, but
        // keeping RandomState out of the aggregation path entirely is what
        // makes the cross-process determinism guarantee auditable.
        let mut last_op_index: std::collections::BTreeMap<&str, usize> =
            std::collections::BTreeMap::new();
        let mut ops: Vec<Option<(String, ChangeOp)>> = Vec::new();
        for e in entries {
            out.size_delta += e.size_delta;
            out.max_timestamp = out.max_timestamp.max(e.timestamp);
            match (last_op_index.get(e.name.as_str()), e.op) {
                // insert followed by remove of the same name cancels out.
                (Some(&idx), ChangeOp::Remove)
                    if matches!(ops[idx], Some((_, ChangeOp::Insert { .. }))) =>
                {
                    ops[idx] = None;
                    last_op_index.remove(e.name.as_str());
                    out.merged_entries += 2;
                }
                // Any other repeated operation on the same name collapses to
                // the latest one: entry-list puts overwrite by key, so only
                // the final state matters (remove→insert becomes the insert,
                // remove→remove stays a single remove).
                (Some(&idx), op) => {
                    ops[idx] = Some((e.name.clone(), op));
                    out.merged_entries += 1;
                }
                (None, _) => {
                    ops.push(Some((e.name.clone(), e.op)));
                    last_op_index.insert(e.name.as_str(), ops.len() - 1);
                }
            }
        }
        out.entry_ops = ops.into_iter().flatten().collect();
        out
    }

    /// Number of key-value store mutations needed to apply this compaction
    /// (entry-list puts/deletes plus one inode attribute update).
    pub fn kv_mutations(&self) -> usize {
        self.entry_ops.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;

    fn entry(name: &str, op: ChangeOp, ts: u64, delta: i64, seq: u64) -> ChangeLogEntry {
        ChangeLogEntry {
            entry_id: OpId {
                client: ClientId(0),
                seq,
            },
            dir: DirId::ROOT,
            name: name.to_string(),
            op,
            timestamp: ts,
            size_delta: delta,
        }
    }

    const INS: ChangeOp = ChangeOp::Insert {
        file_type: FileType::File,
        mode: 0o644,
    };

    #[test]
    fn compaction_merges_attribute_updates() {
        let entries = vec![
            entry("a", INS, 10, 1, 1),
            entry("b", INS, 30, 1, 2),
            entry("c", INS, 20, 1, 3),
        ];
        let c = CompactedChanges::from_entries(&entries);
        assert_eq!(c.size_delta, 3);
        assert_eq!(c.max_timestamp, 30);
        assert_eq!(c.entry_ops.len(), 3);
        assert_eq!(c.kv_mutations(), 4);
    }

    #[test]
    fn insert_then_remove_cancels() {
        let entries = vec![
            entry("tmp", INS, 10, 1, 1),
            entry("keep", INS, 11, 1, 2),
            entry("tmp", ChangeOp::Remove, 12, -1, 3),
        ];
        let c = CompactedChanges::from_entries(&entries);
        assert_eq!(c.size_delta, 1);
        assert_eq!(c.entry_ops.len(), 1);
        assert_eq!(c.entry_ops[0].0, "keep");
        assert_eq!(c.merged_entries, 2);
    }

    #[test]
    fn remove_then_insert_collapses_to_the_insert() {
        // delete(x) followed by create(x): entry-list puts overwrite by key,
        // so only the final insert needs to be applied.
        let entries = vec![
            entry("x", ChangeOp::Remove, 10, -1, 1),
            entry("x", INS, 11, 1, 2),
        ];
        let c = CompactedChanges::from_entries(&entries);
        assert_eq!(c.entry_ops.len(), 1);
        assert!(matches!(c.entry_ops[0].1, ChangeOp::Insert { .. }));
        assert_eq!(c.size_delta, 0);
        assert_eq!(c.merged_entries, 1);
    }

    #[test]
    fn empty_compaction_is_identity() {
        let c = CompactedChanges::from_entries(&[]);
        assert_eq!(c.size_delta, 0);
        assert_eq!(c.max_timestamp, 0);
        assert!(c.entry_ops.is_empty());
    }

    #[test]
    fn wire_size_tracks_name_length() {
        let short = entry("a", INS, 1, 1, 1).wire_size();
        let long = entry("a-much-longer-name", INS, 1, 1, 1).wire_size();
        assert_eq!(long - short, "a-much-longer-name".len() - 1);
    }
}
