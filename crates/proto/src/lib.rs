//! Wire protocol, metadata schema and identifiers shared by every SwitchFS
//! component.
//!
//! This crate is deliberately free of simulation dependencies: it defines
//! *what* travels on the network and *what* the metadata looks like, exactly
//! following §4.3 (metadata schema), §6.1 (packet format) and §5.3
//! (change-log entries) of the paper:
//!
//! * [`ids`] — 256-bit directory identifiers, 49-bit directory fingerprints,
//!   server/client identifiers.
//! * [`schema`] — key/value metadata schema: `(pid, name)` keys, inode
//!   attributes, directory entries.
//! * [`error`] — POSIX-style error codes returned by metadata operations.
//! * [`changelog`] — delayed directory-update records (change-log entries)
//!   and their compaction-friendly representation.
//! * [`dirtyset`] — the dirty-set operation header parsed by the
//!   programmable switch, including its binary wire format (Fig. 9).
//! * [`message`] — typed RPC requests, responses and server-to-server
//!   protocol messages.
//! * [`placement`] — partitioning policies mapping metadata objects to
//!   servers (per-file hashing, per-directory hashing, subtree).
//! * [`wire`] — binary encoding of the switch-visible packet headers.

pub mod changelog;
pub mod dirtyset;
pub mod error;
pub mod ids;
pub mod message;
pub mod placement;
pub mod schema;
pub mod wire;

pub use changelog::{ChangeLogEntry, ChangeOp};
pub use dirtyset::{DirtyRet, DirtySetHeader, DirtySetOp, DirtyState};
pub use error::{FsError, FsResult};
pub use ids::{ClientId, DirId, Fingerprint, OpId, ServerId, TraceId};
pub use message::{
    AggregationPayload, Body, ClientRequest, ClientResponse, MetaOp, NetMsg, OpResult, ParentRef,
    ServerMsg, UdpPorts,
};
pub use placement::{HashPlacement, PartitionPolicy, Placement, ShardMap, SharedPlacement};
pub use schema::{DirEntry, FileType, InodeAttrs, MetaKey, Permissions, Timestamps};
