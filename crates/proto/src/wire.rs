//! Binary wire format of the switch-visible packet headers (Fig. 9).
//!
//! The simulated network carries typed Rust values, so this codec is not on
//! the hot path; it exists to pin down the exact on-the-wire layout a real
//! deployment would use and to let the switch crate's parser tests operate
//! on raw bytes, as the Tofino parser does.
//!
//! Layout of the dirty-set operation header (all fields little-endian):
//!
//! ```text
//! offset  size  field
//! 0       1     OP            (0 = insert, 1 = query, 2 = remove)
//! 1       8     FINGERPRINT   (49 significant bits)
//! 9       8     SEQ           (remove sequence number)
//! 17      1     RET           (0 unset, 1 normal, 2 scattered, 3 inserted,
//!                              4 overflowed, 5 removed)
//! 18      1     ALT flag      (0 = absent, 1 = present)
//! 19      4     ALT address   (raw node id of the fallback destination)
//! ```
//!
//! Total: 23 bytes, well within the parser budget of a Tofino stage.

use crate::dirtyset::{DirtyRet, DirtySetHeader, DirtySetOp, DirtyState};
use crate::ids::{Fingerprint, TraceId};
use crate::message::{NetMsg, PacketSeq};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Size in bytes of an encoded [`DirtySetHeader`].
pub const DIRTY_HEADER_LEN: usize = 23;

/// Minimum size in bytes of an encoded [`NetMsg`]: destination port (2),
/// sender id (4), packet sequence (8), dirty-header flag (1), then — after
/// the optional 23-byte dirty-set header, which sits between the flag and
/// the length so the switch parser never reads past a fixed offset — the
/// body length (4) and the body itself.
pub const NET_MSG_FIXED_LEN: usize = 2 + 4 + 8 + 1 + 4;

/// Errors produced when decoding a header from raw bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than a full header.
    Truncated,
    /// A field holds a value outside its legal range.
    InvalidField(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated dirty-set header"),
            WireError::InvalidField(name) => write!(f, "invalid field: {name}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a dirty-set header into its 23-byte wire representation.
pub fn encode_dirty_header(h: &DirtySetHeader) -> Bytes {
    let mut buf = BytesMut::with_capacity(DIRTY_HEADER_LEN);
    buf.put_u8(match h.op {
        DirtySetOp::Insert => 0,
        DirtySetOp::Query => 1,
        DirtySetOp::Remove => 2,
    });
    buf.put_u64_le(h.fingerprint.raw());
    buf.put_u64_le(h.remove_seq);
    buf.put_u8(match h.ret {
        DirtyRet::Unset => 0,
        DirtyRet::State(DirtyState::Normal) => 1,
        DirtyRet::State(DirtyState::Scattered) => 2,
        DirtyRet::Inserted => 3,
        DirtyRet::Overflowed => 4,
        DirtyRet::Removed => 5,
    });
    match h.alt_dst {
        Some(node) => {
            buf.put_u8(1);
            buf.put_u32_le(node);
        }
        None => {
            buf.put_u8(0);
            buf.put_u32_le(0);
        }
    }
    buf.freeze()
}

/// Decodes a dirty-set header from its wire representation.
pub fn decode_dirty_header(mut buf: &[u8]) -> Result<DirtySetHeader, WireError> {
    if buf.len() < DIRTY_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let op = match buf.get_u8() {
        0 => DirtySetOp::Insert,
        1 => DirtySetOp::Query,
        2 => DirtySetOp::Remove,
        _ => return Err(WireError::InvalidField("op")),
    };
    let raw_fp = buf.get_u64_le();
    if raw_fp > Fingerprint::MASK {
        return Err(WireError::InvalidField("fingerprint"));
    }
    let fingerprint = Fingerprint::from_raw(raw_fp);
    let remove_seq = buf.get_u64_le();
    let ret = match buf.get_u8() {
        0 => DirtyRet::Unset,
        1 => DirtyRet::State(DirtyState::Normal),
        2 => DirtyRet::State(DirtyState::Scattered),
        3 => DirtyRet::Inserted,
        4 => DirtyRet::Overflowed,
        5 => DirtyRet::Removed,
        _ => return Err(WireError::InvalidField("ret")),
    };
    let alt_flag = buf.get_u8();
    let alt_raw = buf.get_u32_le();
    let alt_dst = match alt_flag {
        0 => None,
        1 => Some(alt_raw),
        _ => return Err(WireError::InvalidField("alt_flag")),
    };
    Ok(DirtySetHeader {
        op,
        fingerprint,
        remove_seq,
        ret,
        alt_dst,
    })
}

/// Encodes a full SwitchFS datagram.
///
/// Layout (all integers little-endian):
///
/// ```text
/// offset  size  field
/// 0       2     DST PORT
/// 2       4     PKT SENDER     (raw node id)
/// 6       8     PKT SEQ
/// 14      1     FLAGS          (bit 0 = dirty header follows,
///                               bit 1 = trace id follows)
/// 15      0|23  dirty-set operation header (see `encode_dirty_header`)
/// +0      0|8   TRACE ID       (causal-trace id, never zero when present)
/// +0      4     BODY length
/// +4      n     BODY           (JSON, opaque to the switch)
/// ```
///
/// The switch parser only ever reads up to the end of the dirty-set header;
/// the trace id and body are host-to-host payload. A frame without a trace
/// id is byte-identical to the pre-tracing format (flag bit 1 simply never
/// set), so old frames decode unchanged. The body travels as
/// self-describing JSON, mirroring how the real deployment carries the DFS
/// request opaquely behind the switch-visible headers (§6.1).
pub fn encode_net_msg(msg: &NetMsg) -> Bytes {
    let body = serde_json::to_string(&msg.body).expect("Body serializes infallibly");
    let mut buf = BytesMut::with_capacity(NET_MSG_FIXED_LEN + DIRTY_HEADER_LEN + 8 + body.len());
    buf.put_u16_le(msg.dst_port);
    buf.put_u32_le(msg.pkt_seq.sender);
    buf.put_u64_le(msg.pkt_seq.seq);
    let flags = (msg.dirty.is_some() as u8) | ((msg.trace.is_some() as u8) << 1);
    buf.put_u8(flags);
    if let Some(h) = &msg.dirty {
        buf.put_slice(&encode_dirty_header(h));
    }
    if let Some(t) = &msg.trace {
        buf.put_u64_le(t.raw());
    }
    buf.put_u32_le(body.len() as u32);
    buf.put_slice(body.as_bytes());
    buf.freeze()
}

/// Decodes a full SwitchFS datagram produced by [`encode_net_msg`].
pub fn decode_net_msg(mut buf: &[u8]) -> Result<NetMsg, WireError> {
    if buf.len() < 15 {
        return Err(WireError::Truncated);
    }
    let dst_port = buf.get_u16_le();
    let sender = buf.get_u32_le();
    let seq = buf.get_u64_le();
    let flags = buf.get_u8();
    if flags > 3 {
        return Err(WireError::InvalidField("dirty_flag"));
    }
    let dirty = if flags & 1 != 0 {
        if buf.len() < DIRTY_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let h = decode_dirty_header(&buf[..DIRTY_HEADER_LEN])?;
        buf = &buf[DIRTY_HEADER_LEN..];
        Some(h)
    } else {
        None
    };
    let trace = if flags & 2 != 0 {
        if buf.len() < 8 {
            return Err(WireError::Truncated);
        }
        let raw = buf.get_u64_le();
        match TraceId::from_raw(raw) {
            Some(t) => Some(t),
            None => return Err(WireError::InvalidField("trace_id")),
        }
    } else {
        None
    };
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let body_len = buf.get_u32_le() as usize;
    if buf.len() < body_len {
        return Err(WireError::Truncated);
    }
    // A datagram is exactly one frame: trailing bytes mean a corrupted
    // length field, so reject them like every other malformed field.
    if buf.len() > body_len {
        return Err(WireError::InvalidField("body_len"));
    }
    let body_str =
        std::str::from_utf8(&buf[..body_len]).map_err(|_| WireError::InvalidField("body"))?;
    let body = serde_json::from_str(body_str).map_err(|_| WireError::InvalidField("body"))?;
    Ok(NetMsg {
        dst_port,
        pkt_seq: PacketSeq { sender, seq },
        dirty,
        trace,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Body;

    fn headers() -> Vec<DirtySetHeader> {
        vec![
            DirtySetHeader::insert(Fingerprint::from_raw(0x1_2345_6789_abcd), 42),
            DirtySetHeader::query(Fingerprint::from_raw(7)),
            DirtySetHeader::remove(Fingerprint::from_raw(Fingerprint::MASK), u64::MAX),
            DirtySetHeader {
                ret: DirtyRet::State(DirtyState::Scattered),
                ..DirtySetHeader::query(Fingerprint::from_raw(99))
            },
            DirtySetHeader {
                ret: DirtyRet::Overflowed,
                ..DirtySetHeader::insert(Fingerprint::from_raw(3), 1)
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for h in headers() {
            let bytes = encode_dirty_header(&h);
            assert_eq!(bytes.len(), DIRTY_HEADER_LEN);
            let back = decode_dirty_header(&bytes).unwrap();
            assert_eq!(h, back);
        }
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let bytes = encode_dirty_header(&DirtySetHeader::query(Fingerprint::from_raw(1)));
        assert_eq!(
            decode_dirty_header(&bytes[..DIRTY_HEADER_LEN - 1]),
            Err(WireError::Truncated)
        );
        assert_eq!(decode_dirty_header(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn invalid_fields_are_rejected() {
        let mut bytes =
            encode_dirty_header(&DirtySetHeader::query(Fingerprint::from_raw(1))).to_vec();
        bytes[0] = 9;
        assert_eq!(
            decode_dirty_header(&bytes),
            Err(WireError::InvalidField("op"))
        );
        let mut bytes =
            encode_dirty_header(&DirtySetHeader::query(Fingerprint::from_raw(1))).to_vec();
        bytes[17] = 77;
        assert_eq!(
            decode_dirty_header(&bytes),
            Err(WireError::InvalidField("ret"))
        );
        let mut bytes =
            encode_dirty_header(&DirtySetHeader::query(Fingerprint::from_raw(1))).to_vec();
        // Fingerprint with bits above bit 48 set.
        bytes[8] = 0xff;
        assert_eq!(
            decode_dirty_header(&bytes),
            Err(WireError::InvalidField("fingerprint"))
        );
    }

    #[test]
    fn net_msg_roundtrips_with_and_without_dirty_header() {
        let seq = PacketSeq { sender: 9, seq: 77 };
        let plain = NetMsg::plain(seq, Body::Empty);
        let back = decode_net_msg(&encode_net_msg(&plain)).unwrap();
        assert_eq!(plain, back);

        let hdr = DirtySetHeader::insert(Fingerprint::from_raw(0xbeef), 3);
        let dirty = NetMsg::with_dirty(seq, hdr, Body::Empty);
        let bytes = encode_net_msg(&dirty);
        assert_eq!(decode_net_msg(&bytes).unwrap(), dirty);
        // The dirty header sits at a fixed offset, parseable on its own as
        // the switch would.
        assert_eq!(decode_dirty_header(&bytes[15..]).unwrap(), hdr);
    }

    #[test]
    fn net_msg_roundtrips_with_trace_id() {
        use crate::ids::{ClientId, OpId};
        let seq = PacketSeq { sender: 4, seq: 11 };
        let trace = TraceId::of_op(OpId {
            client: ClientId(2),
            seq: 5,
        });
        // Trace alone.
        let msg = NetMsg::plain(seq, Body::Empty).traced(trace);
        let bytes = encode_net_msg(&msg);
        assert_eq!(decode_net_msg(&bytes).unwrap(), msg);
        assert_eq!(bytes[14], 2);
        // Trace + dirty header together; trace sits after the dirty header.
        let hdr = DirtySetHeader::insert(Fingerprint::from_raw(0xf00d), 8);
        let both = NetMsg::with_dirty(seq, hdr, Body::Empty).traced(trace);
        let bytes = encode_net_msg(&both);
        assert_eq!(decode_net_msg(&bytes).unwrap(), both);
        assert_eq!(bytes[14], 3);
        assert_eq!(decode_dirty_header(&bytes[15..]).unwrap(), hdr);
        let raw = u64::from_le_bytes(
            bytes[15 + DIRTY_HEADER_LEN..23 + DIRTY_HEADER_LEN]
                .try_into()
                .unwrap(),
        );
        assert_eq!(raw, trace.raw());
    }

    #[test]
    fn untraced_frames_match_the_pre_tracing_format() {
        // A frame without a trace id must be byte-identical to what the
        // pre-tracing encoder produced: flags 0/1, no extra bytes.
        let seq = PacketSeq { sender: 9, seq: 77 };
        let plain = NetMsg::plain(seq, Body::Empty);
        let bytes = encode_net_msg(&plain);
        assert_eq!(bytes[14], 0);
        let body = serde_json::to_string(&plain.body).unwrap();
        assert_eq!(bytes.len(), NET_MSG_FIXED_LEN + body.len());
        let dirty = NetMsg::with_dirty(
            seq,
            DirtySetHeader::query(Fingerprint::from_raw(7)),
            Body::Empty,
        );
        let bytes = encode_net_msg(&dirty);
        assert_eq!(bytes[14], 1);
        assert_eq!(
            bytes.len(),
            NET_MSG_FIXED_LEN + DIRTY_HEADER_LEN + body.len()
        );
    }

    #[test]
    fn zero_trace_id_on_the_wire_is_rejected() {
        use crate::ids::{ClientId, OpId};
        let msg = NetMsg::plain(PacketSeq { sender: 1, seq: 2 }, Body::Empty).traced(
            TraceId::of_op(OpId {
                client: ClientId(0),
                seq: 0,
            }),
        );
        let mut bytes = encode_net_msg(&msg).to_vec();
        // Zero is reserved for "untraced"; a traced frame carrying it means
        // corruption.
        bytes[15..23].fill(0);
        assert_eq!(
            decode_net_msg(&bytes),
            Err(WireError::InvalidField("trace_id"))
        );
    }

    #[test]
    fn net_msg_truncations_are_rejected() {
        use crate::ids::{ClientId, OpId};
        let msg = NetMsg::with_dirty(
            PacketSeq { sender: 1, seq: 2 },
            DirtySetHeader::query(Fingerprint::from_raw(5)),
            Body::Empty,
        );
        let bytes = encode_net_msg(&msg);
        for len in 0..bytes.len() {
            assert_eq!(decode_net_msg(&bytes[..len]), Err(WireError::Truncated));
        }
        let traced = msg.traced(TraceId::of_op(OpId {
            client: ClientId(1),
            seq: 1,
        }));
        let bytes = encode_net_msg(&traced);
        for len in 0..bytes.len() {
            assert_eq!(decode_net_msg(&bytes[..len]), Err(WireError::Truncated));
        }
    }

    #[test]
    fn net_msg_invalid_flag_and_body_are_rejected() {
        let msg = NetMsg::plain(PacketSeq { sender: 1, seq: 2 }, Body::Empty);
        let mut bytes = encode_net_msg(&msg).to_vec();
        bytes[14] = 7;
        assert_eq!(
            decode_net_msg(&bytes),
            Err(WireError::InvalidField("dirty_flag"))
        );
        let mut bytes = encode_net_msg(&msg).to_vec();
        let body_start = bytes.len() - 1;
        bytes[body_start] = b'!';
        assert_eq!(decode_net_msg(&bytes), Err(WireError::InvalidField("body")));
    }

    #[test]
    fn net_msg_trailing_bytes_are_rejected() {
        let msg = NetMsg::plain(PacketSeq { sender: 1, seq: 2 }, Body::Empty);
        let mut bytes = encode_net_msg(&msg).to_vec();
        bytes.push(0);
        assert_eq!(
            decode_net_msg(&bytes),
            Err(WireError::InvalidField("body_len"))
        );
    }

    #[test]
    fn error_display() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::InvalidField("op").to_string().contains("op"));
    }
}
