//! The metadata schema of Tab. 3: `(pid, name)`-keyed inodes and directory
//! entries.

use crate::ids::DirId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of a namespace object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileType {
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

/// UNIX-style permission bits plus ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Permissions {
    /// Mode bits (e.g. `0o755`).
    pub mode: u16,
    /// Owning user id.
    pub uid: u32,
    /// Owning group id.
    pub gid: u32,
}

impl Default for Permissions {
    fn default() -> Self {
        Permissions {
            mode: 0o755,
            uid: 0,
            gid: 0,
        }
    }
}

/// Access, modification and change timestamps, in nanoseconds of virtual
/// time since the start of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Timestamps {
    /// Last access time.
    pub atime: u64,
    /// Last data modification time.
    pub mtime: u64,
    /// Last attribute change time.
    pub ctime: u64,
}

impl Timestamps {
    /// All three stamps set to `t`.
    pub fn at(t: u64) -> Timestamps {
        Timestamps {
            atime: t,
            mtime: t,
            ctime: t,
        }
    }

    /// Merges another timestamp set by keeping, per field, the larger value
    /// — the commutative "overwrite with the largest timestamp" rule that
    /// change-log compaction relies on (§5.3, action type (b)).
    pub fn merge_max(&mut self, other: &Timestamps) {
        self.atime = self.atime.max(other.atime);
        self.mtime = self.mtime.max(other.mtime);
        self.ctime = self.ctime.max(other.ctime);
    }
}

/// The key of every metadata object: the parent directory id plus the
/// object's name (Tab. 3). Partitioning hashes this key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetaKey {
    /// Parent directory id (`pid`).
    pub pid: DirId,
    /// File or directory name within the parent.
    pub name: String,
}

impl MetaKey {
    /// Convenience constructor.
    pub fn new(pid: DirId, name: impl Into<String>) -> MetaKey {
        MetaKey {
            pid,
            name: name.into(),
        }
    }

    /// A stable 64-bit hash of the key, used by per-file placement.
    pub fn hash64(&self) -> u64 {
        let mut h = self.pid.hash64();
        for b in self.name.as_bytes() {
            h = crate::ids::fnv1a_step(h, *b as u64);
        }
        crate::ids::splitmix64(h)
    }
}

impl fmt::Display for MetaKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}…, {})", &format!("{}", self.pid)[..8], self.name)
    }
}

/// Inode attributes stored as the value of a metadata key (Tab. 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InodeAttrs {
    /// Object type.
    pub file_type: FileType,
    /// For directories: the 256-bit directory id assigned at creation.
    /// For files: a synthetic id derived from the key.
    pub id: DirId,
    /// Logical size. For directories this is the number of entries; for
    /// files it is the byte size.
    pub size: u64,
    /// Number of hard links (always 1 for directories in this model).
    pub nlink: u32,
    /// Timestamps.
    pub times: Timestamps,
    /// Permissions and ownership.
    pub perm: Permissions,
}

impl InodeAttrs {
    /// Creates attributes for a new regular file.
    pub fn new_file(id: DirId, now: u64, perm: Permissions) -> InodeAttrs {
        InodeAttrs {
            file_type: FileType::File,
            id,
            size: 0,
            nlink: 1,
            times: Timestamps::at(now),
            perm,
        }
    }

    /// Creates attributes for a new directory.
    pub fn new_dir(id: DirId, now: u64, perm: Permissions) -> InodeAttrs {
        InodeAttrs {
            file_type: FileType::Directory,
            id,
            size: 0,
            nlink: 1,
            times: Timestamps::at(now),
            perm,
        }
    }

    /// True if this inode describes a directory.
    pub fn is_dir(&self) -> bool {
        self.file_type == FileType::Directory
    }
}

/// A single entry in a directory's entry list (Tab. 3). Entries are stored
/// as separate key-value pairs on the same server as the directory inode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirEntry {
    /// Entry name.
    pub name: String,
    /// Entry type.
    pub file_type: FileType,
    /// Entry permission bits (cached from the child inode).
    pub mode: u16,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServerId;

    #[test]
    fn metakey_hash_is_stable_and_name_sensitive() {
        let pid = DirId::generate(ServerId(0), 1);
        let a = MetaKey::new(pid, "x");
        let b = MetaKey::new(pid, "x");
        let c = MetaKey::new(pid, "y");
        assert_eq!(a.hash64(), b.hash64());
        assert_ne!(a.hash64(), c.hash64());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_merge_keeps_max_per_field() {
        let mut a = Timestamps {
            atime: 5,
            mtime: 10,
            ctime: 1,
        };
        let b = Timestamps {
            atime: 3,
            mtime: 20,
            ctime: 2,
        };
        a.merge_max(&b);
        assert_eq!(
            a,
            Timestamps {
                atime: 5,
                mtime: 20,
                ctime: 2
            }
        );
    }

    #[test]
    fn new_file_and_dir_defaults() {
        let id = DirId::generate(ServerId(1), 2);
        let f = InodeAttrs::new_file(id, 100, Permissions::default());
        assert!(!f.is_dir());
        assert_eq!(f.size, 0);
        assert_eq!(f.times.mtime, 100);
        let d = InodeAttrs::new_dir(id, 200, Permissions::default());
        assert!(d.is_dir());
        assert_eq!(d.times.atime, 200);
    }

    #[test]
    fn display_is_compact() {
        let k = MetaKey::new(DirId::ROOT, "file.txt");
        let s = format!("{k}");
        assert!(s.contains("file.txt"));
    }
}
