//! Identifiers: directory ids, directory fingerprints, node roles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 256-bit directory identifier, assigned at directory creation (§4.3).
///
/// Stored as four little-endian 64-bit limbs. Identifiers are generated from
/// a per-server counter mixed with the creating server id, which keeps them
/// unique without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DirId(pub [u64; 4]);

impl DirId {
    /// The identifier of the filesystem root directory `/`.
    pub const ROOT: DirId = DirId([0, 0, 0, 0]);

    /// Builds a fresh directory id from a creating server and a per-server
    /// counter. The remaining limbs hold a mixed value so that ids are well
    /// distributed when hashed.
    pub fn generate(server: ServerId, counter: u64) -> DirId {
        let a = ((server.0 as u64) << 32) | (counter & 0xffff_ffff);
        let b = counter;
        let c = splitmix64(a ^ 0x9e37_79b9_7f4a_7c15);
        let d = splitmix64(b.wrapping_add(0x2545_f491_4f6c_dd1d));
        DirId([a, b, c, d])
    }

    /// True for the root directory id.
    pub fn is_root(&self) -> bool {
        *self == DirId::ROOT
    }

    /// A stable 64-bit hash of the identifier, used for placement decisions.
    pub fn hash64(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for limb in self.0 {
            h = fnv1a_step(h, limb);
        }
        h
    }
}

impl fmt::Display for DirId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}{:016x}{:016x}{:016x}",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

/// A 49-bit directory fingerprint (§4.3).
///
/// The fingerprint is the hash of `(pid, directory name)` truncated to
/// 49 bits so it fits the switch register layout: the upper 17 bits are the
/// set index into the dirty set and the remaining 32 bits are the tag.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Number of significant bits in a fingerprint.
    pub const BITS: u32 = 49;
    /// Bits used for the set index (the paper's switch allocates 2^17 sets).
    pub const INDEX_BITS: u32 = 17;
    /// Bits used for the in-set tag.
    pub const TAG_BITS: u32 = 32;
    /// Mask selecting the 49 significant bits.
    pub const MASK: u64 = (1 << Self::BITS) - 1;

    /// Creates a fingerprint from a raw value (truncated to 49 bits).
    pub fn from_raw(v: u64) -> Fingerprint {
        Fingerprint(v & Self::MASK)
    }

    /// Computes the fingerprint of a directory identified by its parent id
    /// and name, as the switch-visible identity of the directory.
    pub fn of_dir(pid: &DirId, name: &str) -> Fingerprint {
        let mut h = pid.hash64();
        for b in name.as_bytes() {
            h = fnv1a_step(h, *b as u64);
        }
        // Mix once more so that truncation keeps good dispersion.
        Fingerprint(splitmix64(h) & Self::MASK)
    }

    /// The raw 49-bit value.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// The 17-bit set index (upper bits).
    pub fn index(&self) -> u32 {
        (self.0 >> Self::TAG_BITS) as u32
    }

    /// The 32-bit tag (lower bits).
    ///
    /// A tag of zero is reserved to mean "empty register" in the switch, so
    /// the tag is offset by one when it would otherwise be zero; this loses
    /// no information because the index still distinguishes directories.
    pub fn tag(&self) -> u32 {
        let t = (self.0 & 0xffff_ffff) as u32;
        if t == 0 {
            1
        } else {
            t
        }
    }

    /// The prefix used to shard fingerprints across egress pipes or across
    /// spine switches (§6.2, §6.4): the top `bits` bits of the index.
    pub fn prefix(&self, bits: u32) -> u32 {
        if bits == 0 {
            0
        } else {
            self.index() >> (Self::INDEX_BITS - bits.min(Self::INDEX_BITS))
        }
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fp:{:013x}", self.0)
    }
}

/// Identifier of a metadata server.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ms{}", self.0)
    }
}

/// Identifier of a client (an instance of LibFS).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Identifier of a single metadata operation issued by a client; unique per
/// client and used to match responses and suppress duplicates.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct OpId {
    /// Issuing client.
    pub client: ClientId,
    /// Per-client sequence number.
    pub seq: u64,
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op[{}:{}]", self.client.0, self.seq)
    }
}

/// Identifier of a causal trace: one per client operation, stamped on every
/// packet the operation (or its asynchronous continuations) puts on the wire.
///
/// A trace id is a *pure function* of the operation id, so any node holding
/// an [`OpId`] — the client that issued it, the owner that logged it, the
/// remote server applying its change-log entry during aggregation — derives
/// the same trace id locally without threading extra context through the
/// protocol. Zero is reserved as "no trace" on the wire.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TraceId(u64);

impl TraceId {
    /// Derives the trace id of an operation. Deterministic: every node
    /// computes the same id from the same [`OpId`].
    pub fn of_op(op: OpId) -> TraceId {
        let mixed = splitmix64(((op.client.0 as u64) << 48) ^ op.seq.wrapping_mul(0x9e37));
        // Zero means "untraced" on the wire; nudge the (astronomically
        // unlikely) collision off it.
        TraceId(if mixed == 0 { 1 } else { mixed })
    }

    /// Reconstructs a trace id from its raw wire value. Zero maps to `None`
    /// ("untraced frame").
    pub fn from_raw(v: u64) -> Option<TraceId> {
        if v == 0 {
            None
        } else {
            Some(TraceId(v))
        }
    }

    /// The raw 64-bit value (never zero).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace:{:016x}", self.0)
    }
}

/// One step of the splitmix64 mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One FNV-1a step folding a 64-bit value into the hash.
pub fn fnv1a_step(mut h: u64, v: u64) -> u64 {
    for i in 0..8 {
        h ^= (v >> (i * 8)) & 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn dir_ids_are_unique_per_server_counter() {
        let mut seen = HashSet::new();
        for s in 0..4 {
            for c in 0..1000 {
                assert!(seen.insert(DirId::generate(ServerId(s), c)));
            }
        }
    }

    #[test]
    fn root_is_root() {
        assert!(DirId::ROOT.is_root());
        assert!(!DirId::generate(ServerId(0), 1).is_root());
    }

    #[test]
    fn fingerprint_fits_49_bits() {
        for i in 0..1000u64 {
            let fp = Fingerprint::of_dir(&DirId::generate(ServerId(1), i), "dir");
            assert!(fp.raw() <= Fingerprint::MASK);
            assert!(fp.index() < (1 << Fingerprint::INDEX_BITS));
            assert_ne!(fp.tag(), 0, "tag zero is reserved for empty registers");
        }
    }

    #[test]
    fn fingerprint_is_deterministic_and_name_sensitive() {
        let pid = DirId::generate(ServerId(0), 7);
        assert_eq!(
            Fingerprint::of_dir(&pid, "alpha"),
            Fingerprint::of_dir(&pid, "alpha")
        );
        assert_ne!(
            Fingerprint::of_dir(&pid, "alpha"),
            Fingerprint::of_dir(&pid, "beta")
        );
    }

    #[test]
    fn fingerprint_dispersion_is_reasonable() {
        // 10k directories under the same parent should spread over many
        // dirty-set indexes (load balance across sets, §6.3).
        let pid = DirId::ROOT;
        let mut indexes = HashSet::new();
        for i in 0..10_000 {
            indexes.insert(Fingerprint::of_dir(&pid, &format!("d{i}")).index());
        }
        assert!(
            indexes.len() > 9_000,
            "got {} distinct indexes",
            indexes.len()
        );
    }

    #[test]
    fn prefix_extraction() {
        let fp = Fingerprint::from_raw(0x1_ffff_ffff_ffff);
        assert_eq!(fp.prefix(0), 0);
        assert_eq!(fp.prefix(1), fp.index() >> 16);
        assert_eq!(fp.prefix(17), fp.index());
        // Requesting more bits than exist saturates at the index width.
        assert_eq!(fp.prefix(32), fp.index());
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a = OpId {
            client: ClientId(1),
            seq: 9,
        };
        let b = OpId {
            client: ClientId(2),
            seq: 9,
        };
        assert_eq!(TraceId::of_op(a), TraceId::of_op(a));
        assert_ne!(TraceId::of_op(a), TraceId::of_op(b));
        let mut seen = HashSet::new();
        for c in 0..8u32 {
            for s in 0..1000u64 {
                let t = TraceId::of_op(OpId {
                    client: ClientId(c),
                    seq: s,
                });
                assert_ne!(t.raw(), 0, "zero is reserved for untraced frames");
                assert!(seen.insert(t));
            }
        }
    }

    #[test]
    fn trace_id_raw_roundtrip_and_zero_is_none() {
        let t = TraceId::of_op(OpId {
            client: ClientId(3),
            seq: 14,
        });
        assert_eq!(TraceId::from_raw(t.raw()), Some(t));
        assert_eq!(TraceId::from_raw(0), None);
        assert!(format!("{t}").starts_with("trace:"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ServerId(3)), "ms3");
        assert_eq!(format!("{}", ClientId(2)), "client2");
        let op = OpId {
            client: ClientId(1),
            seq: 9,
        };
        assert_eq!(format!("{op}"), "op[1:9]");
        assert_eq!(format!("{}", DirId::ROOT).len(), 64);
    }
}
