//! POSIX-style error codes for metadata operations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors a metadata operation can return to a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FsError {
    /// The target (or a path component) does not exist (`ENOENT`).
    NotFound,
    /// The target already exists (`EEXIST`).
    AlreadyExists,
    /// `rmdir` on a non-empty directory (`ENOTEMPTY`).
    NotEmpty,
    /// The operation expected a directory but found a file (`ENOTDIR`).
    NotADirectory,
    /// The operation expected a file but found a directory (`EISDIR`).
    IsADirectory,
    /// The client's cached metadata for a path component is stale; the
    /// client must invalidate its cache and retry the whole operation
    /// (§5.2.1, "Locking and checking").
    StaleCache,
    /// A `rename` would create a cycle (orphaned loop, §5.2).
    WouldOrphan,
    /// The server is recovering or migrating and cannot serve requests;
    /// retry later (§5.4.2, §5.5).
    Unavailable,
    /// The request timed out after the configured number of retransmissions.
    TimedOut,
    /// Permission denied (`EACCES`).
    PermissionDenied,
}

impl FsError {
    /// The conventional errno-style name.
    pub fn name(&self) -> &'static str {
        match self {
            FsError::NotFound => "ENOENT",
            FsError::AlreadyExists => "EEXIST",
            FsError::NotEmpty => "ENOTEMPTY",
            FsError::NotADirectory => "ENOTDIR",
            FsError::IsADirectory => "EISDIR",
            FsError::StaleCache => "ESTALE",
            FsError::WouldOrphan => "ELOOP",
            FsError::Unavailable => "EAGAIN",
            FsError::TimedOut => "ETIMEDOUT",
            FsError::PermissionDenied => "EACCES",
        }
    }

    /// True for errors that a client should transparently retry
    /// (stale caches, unavailable servers and timeouts).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            FsError::StaleCache | FsError::Unavailable | FsError::TimedOut
        )
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl std::error::Error for FsError {}

/// Result alias for metadata operations.
pub type FsResult<T> = Result<T, FsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_retryability() {
        assert_eq!(FsError::NotFound.name(), "ENOENT");
        assert_eq!(FsError::NotEmpty.to_string(), "ENOTEMPTY");
        assert!(FsError::StaleCache.is_retryable());
        assert!(FsError::TimedOut.is_retryable());
        assert!(!FsError::AlreadyExists.is_retryable());
        assert!(!FsError::WouldOrphan.is_retryable());
    }
}
