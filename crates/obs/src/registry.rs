//! The unified metrics registry.
//!
//! The crates each keep their own ad-hoc stats structs (`ServerStats`,
//! `ClientStats`, `KvStats`, simnet's meters) — those stay, because they are
//! part of the replay digest and must not change shape. The registry is a
//! *bridge*: at snapshot time a caller registers the counters it cares about
//! under stable dotted names (`server.ops_completed`, `client.retransmissions`,
//! `wal.bytes_flushed`, …) and gets back a stable-ordered snapshot that
//! `figures --json` and `chaos-sweep --summary` both emit, so CI can assert
//! on *named* metric rows instead of positional ones.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use switchfs_simnet::LatencyHistogram;

/// One registered metric value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A monotonically accumulated count.
    Counter(u64),
    /// A point-in-time level (may be negative, e.g. a backlog delta).
    Gauge(i64),
    /// A latency distribution summarized as
    /// `(count, mean_us, p50_us, p99_us, max_us)`.
    Histogram {
        count: u64,
        mean_us: f64,
        p50_us: u64,
        p99_us: u64,
        max_us: u64,
    },
}

impl MetricValue {
    /// The scalar CI compares against: count for counters, level for
    /// gauges, p99 for histograms.
    pub fn scalar(&self) -> f64 {
        match self {
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v as f64,
            MetricValue::Histogram { p99_us, .. } => *p99_us as f64,
        }
    }
}

/// A typed registry of named metrics. Names are dotted paths; the map is a
/// `BTreeMap` so snapshots are stable-ordered by construction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

/// A stable-ordered list of `(name, value)` rows, ready for JSON emission.
pub type MetricsSnapshot = Vec<(String, MetricValue)>;

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or replaces) a counter.
    pub fn counter(&mut self, name: &str, value: u64) -> &mut Self {
        self.metrics
            .insert(name.to_string(), MetricValue::Counter(value));
        self
    }

    /// Registers (or replaces) a gauge.
    pub fn gauge(&mut self, name: &str, value: i64) -> &mut Self {
        self.metrics
            .insert(name.to_string(), MetricValue::Gauge(value));
        self
    }

    /// Registers (or replaces) a latency histogram by its summary
    /// statistics. The histogram itself is consumed into five scalars — the
    /// registry snapshot is for reporting, not re-aggregation.
    pub fn histogram(&mut self, name: &str, hist: &LatencyHistogram) -> &mut Self {
        let mut h = hist.clone();
        self.metrics.insert(
            name.to_string(),
            MetricValue::Histogram {
                count: h.count() as u64,
                mean_us: h.mean().as_micros_f64(),
                p50_us: h.median().as_micros(),
                p99_us: h.percentile(99.0).as_micros(),
                max_us: h.max().as_micros(),
            },
        );
        self
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The stable-ordered snapshot: rows sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Serializes the snapshot as a JSON object `{name: {kind, value...}}`
    /// with keys in stable order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&serde_json::to_string(name).unwrap());
            out.push(':');
            let rendered = match value {
                MetricValue::Counter(v) => format!("{{\"counter\":{v}}}"),
                MetricValue::Gauge(v) => format!("{{\"gauge\":{v}}}"),
                MetricValue::Histogram {
                    count,
                    mean_us,
                    p50_us,
                    p99_us,
                    max_us,
                } => format!(
                    "{{\"count\":{count},\"mean_us\":{mean_us:.3},\"p50_us\":{p50_us},\"p99_us\":{p99_us},\"max_us\":{max_us}}}"
                ),
            };
            out.push_str(&rendered);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_stable_ordered_by_name() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z.last", 1)
            .counter("a.first", 2)
            .gauge("m.mid", -3);
        let names: Vec<String> = reg.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn histogram_summarizes() {
        use switchfs_simnet::SimDuration;
        let mut h = LatencyHistogram::new();
        for v in [10, 20, 30, 40, 100] {
            h.record(SimDuration::micros(v));
        }
        let mut reg = MetricsRegistry::new();
        reg.histogram("lat", &h);
        match reg.get("lat").unwrap() {
            MetricValue::Histogram { count, max_us, .. } => {
                assert_eq!(*count, 5);
                assert_eq!(*max_us, 100);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn json_emission_is_deterministic_and_named() {
        let mut reg = MetricsRegistry::new();
        reg.counter("server.ops_completed", 42)
            .gauge("net.inflight", 7);
        let json = reg.to_json();
        assert_eq!(json, reg.to_json());
        assert!(json.contains("\"server.ops_completed\":{\"counter\":42}"));
        assert!(json.contains("\"net.inflight\":{\"gauge\":7}"));
        // Parses back as JSON.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(matches!(v, serde_json::Value::Object(_)));
    }

    #[test]
    fn scalar_projection() {
        assert_eq!(MetricValue::Counter(9).scalar(), 9.0);
        assert_eq!(MetricValue::Gauge(-2).scalar(), -2.0);
    }
}
