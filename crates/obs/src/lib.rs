//! Deterministic observability for SwitchFS: causal op tracing, a bounded
//! per-node flight recorder, and a unified metrics registry.
//!
//! # Design constraints
//!
//! The simulation is deterministic and every protocol decision is covered by
//! a replay digest, so observability must be *invisible* to the system under
//! test:
//!
//! - Events are stamped with **virtual time only** — never wall-clock — so a
//!   dump from a replayed run is byte-identical to the original.
//! - Recording writes only into [`FlightRecorder`] buffers. It never touches
//!   protocol state, stats counters, RNG draws, or the task schedule, so the
//!   run digest is bit-identical with tracing enabled or disabled (pinned by
//!   a conformance test).
//! - Buffers are bounded FIFO rings: a long run keeps the most recent
//!   [`Obs::capacity`] events per node and forgets the rest, like a real
//!   flight recorder.
//! - When disabled (the default), every recording call is a single branch on
//!   a [`Cell`] and returns before constructing the event.
//!
//! # Causal identity
//!
//! A [`TraceId`] is a pure function of the operation's [`OpId`]
//! (`TraceId::of_op`), so every node that handles any artifact of an
//! operation — the request packet, its WAL record, the change-log entry it
//! left behind, the remote apply of that entry during aggregation — derives
//! the same trace id locally, without threading a context object through the
//! protocol. Filtering a dump by trace id therefore reconstructs one op's
//! full cross-server history.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::rc::Rc;

use serde::{Deserialize, Serialize};
use switchfs_proto::ids::{OpId, TraceId};

mod registry;
pub use registry::{MetricValue, MetricsRegistry, MetricsSnapshot};

/// Default per-node ring capacity: enough for several thousand protocol
/// steps of history around a failure without unbounded growth.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One structured span event, stamped with virtual time and origin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time of the event in nanoseconds since simulation start.
    pub at_ns: u64,
    /// Raw node id of the recording node (server node, client node, …).
    pub node: u32,
    /// Placement epoch observed by the recorder at event time.
    pub epoch: u64,
    /// Causal trace this event belongs to, when derivable at the site.
    pub trace: Option<TraceId>,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary: one variant per instrumented protocol site.
///
/// Directory identity is carried as the compact 64-bit `DirId::hash64()`
/// (field `dir`), which is what placement already keys on; shard numbers and
/// epochs tie events back to the placement map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Client put a request on the wire (`attempt` 0) or retransmitted it.
    ClientIssue { op: OpId, attempt: u32 },
    /// Client refreshed its shard map after a wrong-owner rejection.
    ClientMapRefresh { op: OpId, new_epoch: u64 },
    /// Server accepted a client request for execution.
    Dispatch { op: OpId },
    /// Server rejected a client request it does not own (`client_epoch` is
    /// the stale map epoch the request was routed with; the event's own
    /// `epoch` field carries the server's current epoch).
    WrongOwner { op: OpId, client_epoch: u64 },
    /// A record entered the write-ahead log (volatile until flushed).
    WalAppend { lsn: u64, bytes: u64 },
    /// The durable watermark advanced over `records` records.
    WalFlush { through_lsn: u64, records: u64 },
    /// 2PC participant voted on a prepared transaction.
    TxnPrepare { txn: u64, vote_commit: bool },
    /// 2PC decision reached (or learned) for a transaction.
    TxnDecide { txn: u64, commit: bool },
    /// A change-log push (proactive or aggregation-driven) left this node.
    ChangeLogPush { dir: u64, entries: u32 },
    /// An entry-list mutation was applied to a directory's sharded content.
    /// `batch` groups the applies that landed in one WAL record together
    /// with their [`EventKind::SizeDelta`]. `changed` is whether the entry
    /// count actually moved: an insert that overwrote an existing name, or
    /// a remove of an absent name, applies without changing the count —
    /// exactly the cases a size counter kept elsewhere can drift on.
    EntryApply {
        batch: u64,
        dir: u64,
        insert: bool,
        changed: bool,
    },
    /// A directory inode's size counter moved by `delta` in batch `batch`
    /// (recorded on the directory owner; entry applies may land on other
    /// servers, so matching is per-dir across nodes, not per-batch).
    SizeDelta { batch: u64, dir: u64, delta: i64 },
    /// The origin server retired one holder-confirmed change-log entry.
    DiscardConfirm { entry: OpId },
    /// Migration froze a shard on the source (requests start dropping).
    MigrationFreeze { shard: u32 },
    /// Migration streamed the shard state (`inodes` inode records).
    MigrationStream { shard: u32, inodes: u32 },
    /// Placement flipped: the destination now owns the shard.
    MigrationFlip { shard: u32, new_epoch: u64 },
    /// Aggregation fan-out: the group owner asked `peers` servers for the
    /// change-log entries of fingerprint group `fp`.
    AggregationFanout { fp: u64, peers: u32 },
    /// Recovery replayed the WAL (records/bytes actually re-driven).
    RecoveryReplay { records: u64, bytes: u64 },
    /// Recovery re-applied one entry-list mutation from WAL record `lsn`.
    /// Mirrors [`EventKind::EntryApply`] (with the LSN standing in for the
    /// live path's batch id) so a trace dump can line the replayed applies
    /// up against the pre-crash ones per directory.
    RecoveryEntryApply {
        lsn: u64,
        dir: u64,
        insert: bool,
        changed: bool,
    },
    /// Recovery moved a directory inode's size counter by `delta` while
    /// replaying WAL record `lsn`. Mirrors [`EventKind::SizeDelta`]; the
    /// pair gives the replay path the same per-effect visibility the live
    /// path has — exactly where an eventless replay can hide a ±1 statdir
    /// divergence between asymmetric flushed prefixes.
    RecoverySizeDelta { lsn: u64, dir: u64, delta: i64 },
}

/// A bounded per-node FIFO ring of recent [`TraceEvent`]s.
///
/// Nodes are keyed by raw node id in a `BTreeMap`, so iteration order — and
/// therefore any dump built from it — is deterministic.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    capacity: usize,
    buffers: RefCell<BTreeMap<u32, VecDeque<TraceEvent>>>,
    /// Lifetime count of events pushed out of a full ring (per recorder, not
    /// per node): tells a dump reader whether history was lost.
    evicted: Cell<u64>,
}

impl FlightRecorder {
    /// Creates a recorder whose per-node rings hold at most `capacity`
    /// events each.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            buffers: RefCell::new(BTreeMap::new()),
            evicted: Cell::new(0),
        }
    }

    /// Appends an event to its node's ring, evicting the oldest event when
    /// the ring is full.
    pub fn push(&self, event: TraceEvent) {
        let mut buffers = self.buffers.borrow_mut();
        let ring = buffers.entry(event.node).or_default();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.evicted.set(self.evicted.get() + 1);
        }
        ring.push_back(event);
    }

    /// All retained events in deterministic order: by node id, FIFO within
    /// a node.
    pub fn dump(&self) -> Vec<TraceEvent> {
        self.buffers
            .borrow()
            .values()
            .flat_map(|ring| ring.iter().cloned())
            .collect()
    }

    /// Retained events belonging to one causal trace, ordered like
    /// [`FlightRecorder::dump`].
    pub fn events_for(&self, trace: TraceId) -> Vec<TraceEvent> {
        self.dump()
            .into_iter()
            .filter(|e| e.trace == Some(trace))
            .collect()
    }

    /// Total events currently retained across all nodes.
    pub fn len(&self) -> usize {
        self.buffers.borrow().values().map(|r| r.len()).sum()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of events evicted from full rings.
    pub fn evicted(&self) -> u64 {
        self.evicted.get()
    }

    /// Drops all retained events (the eviction count survives).
    pub fn clear(&self) {
        self.buffers.borrow_mut().clear();
    }
}

/// The per-cluster observability state: an enable switch, the flight
/// recorder, and the batch-id allocator for apply/size-delta grouping.
///
/// Shared as an [`ObsHandle`] (`Rc<Obs>`) by every server, client, and the
/// harness; single-threaded like the rest of the simulation.
#[derive(Debug)]
pub struct Obs {
    enabled: Cell<bool>,
    recorder: FlightRecorder,
    /// Monotonic batch ids handed to appliers so a size-delta event can be
    /// matched to exactly the entry-apply events it covered. Bumped only
    /// while enabled, so disabled runs perform no writes at all.
    batch_seq: Cell<u64>,
}

/// Shared handle to the cluster's [`Obs`] instance.
pub type ObsHandle = Rc<Obs>;

impl Obs {
    /// A disabled instance: every recording call is a branch-and-return.
    /// This is the default wired into configs, so non-observability callers
    /// never pay for the subsystem.
    pub fn disabled() -> ObsHandle {
        Rc::new(Obs {
            enabled: Cell::new(false),
            recorder: FlightRecorder::new(DEFAULT_RING_CAPACITY),
            batch_seq: Cell::new(0),
        })
    }

    /// An enabled instance with the given per-node ring capacity.
    pub fn recording(capacity: usize) -> ObsHandle {
        Rc::new(Obs {
            enabled: Cell::new(true),
            recorder: FlightRecorder::new(capacity),
            batch_seq: Cell::new(0),
        })
    }

    /// True when events are being recorded. Instrumentation sites check
    /// this before computing event payloads.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled.get()
    }

    /// Flips recording on or off at runtime (the ring keeps its contents).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.set(enabled);
    }

    /// Records an event if enabled. Callers on hot paths should guard with
    /// [`Obs::on`] so payload construction is skipped when disabled; this
    /// method re-checks regardless.
    #[inline]
    pub fn record(&self, event: TraceEvent) {
        if !self.enabled.get() {
            return;
        }
        self.recorder.push(event);
    }

    /// Allocates the next apply-batch id. Only called from sites already
    /// guarded by [`Obs::on`], so a disabled run never writes the cell.
    pub fn next_batch(&self) -> u64 {
        let id = self.batch_seq.get() + 1;
        self.batch_seq.set(id);
        id
    }

    /// The flight recorder, for dumping and filtering.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchfs_proto::ids::ClientId;

    fn ev(node: u32, seq: u64) -> TraceEvent {
        let op = OpId {
            client: ClientId(node),
            seq,
        };
        TraceEvent {
            at_ns: seq * 10,
            node,
            epoch: 0,
            trace: Some(TraceId::of_op(op)),
            kind: EventKind::ClientIssue { op, attempt: 0 },
        }
    }

    #[test]
    fn ring_is_bounded_fifo_per_node() {
        let rec = FlightRecorder::new(3);
        for seq in 0..5 {
            rec.push(ev(1, seq));
        }
        rec.push(ev(2, 100));
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.evicted(), 2);
        let dump = rec.dump();
        // Node 1's ring kept the newest three events; node 2 follows.
        let times: Vec<u64> = dump.iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![20, 30, 40, 1000]);
    }

    #[test]
    fn events_filter_by_trace() {
        let rec = FlightRecorder::new(10);
        rec.push(ev(1, 1));
        rec.push(ev(1, 2));
        rec.push(ev(2, 1));
        let t = TraceId::of_op(OpId {
            client: ClientId(1),
            seq: 1,
        });
        let hits = rec.events_for(t);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].node, 1);
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.on());
        obs.record(ev(1, 1));
        assert!(obs.recorder().is_empty());
        obs.set_enabled(true);
        obs.record(ev(1, 1));
        assert_eq!(obs.recorder().len(), 1);
    }

    #[test]
    fn batch_ids_are_monotonic() {
        let obs = Obs::recording(16);
        assert_eq!(obs.next_batch(), 1);
        assert_eq!(obs.next_batch(), 2);
    }

    #[test]
    fn events_serialize_roundtrip() {
        let e = ev(3, 7);
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
