//! History recording and the sequential-model consistency checker.
//!
//! Every client operation the chaos harness issues is recorded as an
//! invocation/response pair ([`HistoryEvent`]). Clients operate on disjoint,
//! client-private namespaces and issue their operations sequentially, so the
//! history of each path is a single client's FIFO — which makes the
//! correctness condition checkable with a per-path **sequential model**
//! tracked through three states:
//!
//! * `Present(kind)` — the path definitely holds a file/directory;
//! * `Absent` — the path definitely holds nothing;
//! * `Unknown` — an *ambiguous* operation (a timeout: the request may or may
//!   not have executed before the fault ate the response) touched the path;
//!   any state is admissible until a later definite read or mutation
//!   re-pins it.
//!
//! Definite outcomes must agree with the model as the history is replayed
//! (e.g. `create → Ok` while the model says `Present` is a lost-update
//! violation), and the final namespace — harvested after every fault has
//! healed and the cluster has settled — must agree with each path's final
//! model state. Renames additionally get an atomicity check: whatever a
//! rename's outcome, the cluster must never end up with *both* ends present
//! or both ends absent when the model pins them — exactly the namespace
//! divergence a volatile 2PC prepare used to produce.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use switchfs_proto::FsError;

/// What kind of inode a model state refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A regular file.
    File,
    /// A directory.
    Dir,
    /// Present, but the type was never pinned by a definite observation.
    Any,
}

/// One recorded operation: what was asked, when, and what came back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryEvent {
    /// Issuing client (index into the cluster's clients).
    pub client: usize,
    /// Per-client sequence number (the client issues sequentially).
    pub idx: usize,
    /// Operation name (`create`, `rename`, …).
    pub op: String,
    /// Primary path.
    pub path: String,
    /// Rename destination, when applicable.
    pub dst: Option<String>,
    /// Virtual time the invocation started, ns.
    pub start_ns: u64,
    /// Virtual time the response arrived (or the op gave up), ns.
    pub end_ns: u64,
    /// Canonical outcome: `Ok(description)` or the POSIX error.
    pub outcome: Result<String, FsError>,
}

/// The recorded history of one chaos run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    /// All events, in completion order (deterministic under the simulator).
    pub events: Vec<HistoryEvent>,
}

impl History {
    /// Appends one event.
    pub fn record(&mut self, ev: HistoryEvent) {
        self.events.push(ev);
    }

    /// Events of one client, in issue order.
    pub fn of_client(&self, client: usize) -> Vec<&HistoryEvent> {
        let mut evs: Vec<&HistoryEvent> =
            self.events.iter().filter(|e| e.client == client).collect();
        evs.sort_by_key(|e| e.idx);
        evs
    }

    /// Number of ambiguous operations (timed out or surfaced `Unavailable`
    /// — either may hide an executed-but-response-lost mutation).
    pub fn ambiguous(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.outcome,
                    Err(FsError::TimedOut) | Err(FsError::Unavailable)
                )
            })
            .count()
    }

    /// Number of definite successes.
    pub fn ok(&self) -> usize {
        self.events.iter().filter(|e| e.outcome.is_ok()).count()
    }
}

/// Per-path sequential-model state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelState {
    /// Definitely present.
    Present(NodeKind),
    /// Definitely absent.
    Absent,
    /// An ambiguous operation touched the path; anything goes until re-pinned.
    Unknown,
}

/// The final, probed state of one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FinalState {
    /// `stat` succeeded (regular file).
    File,
    /// `statdir` succeeded (directory).
    Dir,
    /// Both probes returned `NotFound`.
    Missing,
    /// The probes themselves failed (cluster unhealthy at harvest time).
    Unprobed,
}

/// A model built by replaying one client's history.
#[derive(Debug, Default)]
pub struct SequentialModel {
    /// Path → model state after the whole history.
    pub paths: BTreeMap<String, ModelState>,
    /// Violations found while replaying (definite outcome contradicting the
    /// model).
    pub violations: Vec<String>,
}

impl SequentialModel {
    fn state(&self, path: &str) -> ModelState {
        self.paths.get(path).copied().unwrap_or(ModelState::Absent)
    }

    fn set(&mut self, path: &str, st: ModelState) {
        self.paths.insert(path.to_string(), st);
    }

    fn violation(&mut self, ev: &HistoryEvent, why: &str) {
        self.violations.push(format!(
            "client {} op {} ({} {}): {}",
            ev.client, ev.idx, ev.op, ev.path, why
        ));
    }

    /// Replays one event into the model.
    ///
    /// Two at-least-once subtleties shape the rules below. First, which
    /// surfaced errors are *ambiguous*: timeouts and `Unavailable`, for
    /// every operation — an operation can execute, lose its response to a
    /// crash (which also wipes the server's duplicate-suppression cache),
    /// and then surface `Unavailable` from a retry that hit the recovery
    /// window; this holds even for rename, whose committed-but-crashed
    /// coordinator answers post-recovery retransmissions with the
    /// availability gate. Second, *semantic* errors pin state instead of
    /// being judged against the model: after a dedup-wiping crash, a
    /// retried create can observe its own earlier execution as
    /// `AlreadyExists` (and a retried delete as `NotFound`), so those
    /// outcomes describe the namespace rather than contradict it.
    pub fn apply(&mut self, ev: &HistoryEvent) {
        let ambiguous = matches!(
            ev.outcome,
            Err(FsError::TimedOut) | Err(FsError::Unavailable)
        );
        let path = ev.path.clone();
        let st = self.state(&path);
        match ev.op.as_str() {
            "create" => match &ev.outcome {
                Ok(_) => {
                    if let ModelState::Present(_) = st {
                        self.violation(ev, "create succeeded over a present path");
                    }
                    self.set(&path, ModelState::Present(NodeKind::File));
                }
                Err(FsError::AlreadyExists) => {
                    // Pin: something definitely occupies the path (possibly
                    // this very op's earlier, response-lost execution).
                    if st == ModelState::Absent {
                        self.set(&path, ModelState::Present(NodeKind::Any));
                    }
                }
                Err(_) if ambiguous => {
                    if st == ModelState::Absent {
                        self.set(&path, ModelState::Unknown);
                    }
                }
                Err(_) => {}
            },
            "mkdir" => match &ev.outcome {
                Ok(_) => {
                    if let ModelState::Present(_) = st {
                        self.violation(ev, "mkdir succeeded over a present path");
                    }
                    self.set(&path, ModelState::Present(NodeKind::Dir));
                }
                Err(FsError::AlreadyExists) => {
                    if st == ModelState::Absent {
                        self.set(&path, ModelState::Present(NodeKind::Any));
                    }
                }
                Err(_) if ambiguous => {
                    if st == ModelState::Absent {
                        self.set(&path, ModelState::Unknown);
                    }
                }
                Err(_) => {}
            },
            "delete" => match &ev.outcome {
                Ok(_) => {
                    if st == ModelState::Absent {
                        self.violation(ev, "delete succeeded on an absent path");
                    }
                    self.set(&path, ModelState::Absent);
                }
                Err(FsError::NotFound) => {
                    // Pin: definitely absent now (possibly removed by this
                    // op's earlier, response-lost execution).
                    self.set(&path, ModelState::Absent);
                }
                Err(_) if ambiguous => {
                    if matches!(st, ModelState::Present(_)) {
                        self.set(&path, ModelState::Unknown);
                    }
                }
                Err(_) => {}
            },
            "rmdir" => match &ev.outcome {
                Ok(_) => {
                    if st == ModelState::Absent {
                        self.violation(ev, "rmdir succeeded on an absent path");
                    }
                    self.set(&path, ModelState::Absent);
                }
                Err(FsError::NotFound) => {
                    self.set(&path, ModelState::Absent);
                }
                Err(_) if ambiguous => {
                    if matches!(st, ModelState::Present(_)) {
                        self.set(&path, ModelState::Unknown);
                    }
                }
                Err(_) => {}
            },
            "rename" => {
                let dst = ev.dst.clone().unwrap_or_default();
                let dst_st = self.state(&dst);
                match &ev.outcome {
                    Ok(_) => {
                        if st == ModelState::Absent {
                            self.violation(ev, "rename succeeded with an absent source");
                        }
                        let kind = match st {
                            ModelState::Present(k) => k,
                            _ => NodeKind::Any,
                        };
                        self.set(&path, ModelState::Absent);
                        self.set(&dst, ModelState::Present(kind));
                    }
                    Err(FsError::NotFound) => {
                        // The source is definitely absent at this point —
                        // either it never existed, or this op's earlier,
                        // response-lost execution already moved it (in which
                        // case the destination holds it).
                        self.set(&path, ModelState::Absent);
                        if matches!(st, ModelState::Present(_) | ModelState::Unknown)
                            && dst_st == ModelState::Absent
                        {
                            self.set(&dst, ModelState::Unknown);
                        }
                    }
                    Err(_) if ambiguous => {
                        self.set(&path, ModelState::Unknown);
                        if dst_st == ModelState::Absent {
                            self.set(&dst, ModelState::Unknown);
                        }
                    }
                    // Typed rejects mutate nothing.
                    Err(_) => {}
                }
            }
            "stat" => match &ev.outcome {
                Ok(_) => {
                    match st {
                        ModelState::Absent => {
                            self.violation(ev, "stat succeeded on an absent path")
                        }
                        ModelState::Present(NodeKind::Dir) => {
                            self.violation(ev, "stat succeeded on a directory")
                        }
                        _ => {}
                    }
                    self.set(&path, ModelState::Present(NodeKind::File));
                }
                Err(FsError::NotFound) => {
                    if st == ModelState::Present(NodeKind::File) {
                        self.violation(ev, "stat lost a present file");
                    }
                    if st == ModelState::Unknown {
                        self.set(&path, ModelState::Absent);
                    }
                }
                Err(_) => {}
            },
            "statdir" | "readdir" => match &ev.outcome {
                Ok(_) => {
                    match st {
                        ModelState::Absent => {
                            self.violation(ev, "directory read succeeded on an absent path")
                        }
                        ModelState::Present(NodeKind::File) => {
                            self.violation(ev, "directory read succeeded on a file")
                        }
                        _ => {}
                    }
                    self.set(&path, ModelState::Present(NodeKind::Dir));
                }
                Err(FsError::NotFound) => {
                    if st == ModelState::Present(NodeKind::Dir) {
                        self.violation(ev, "directory read lost a present directory");
                    }
                    if st == ModelState::Unknown {
                        self.set(&path, ModelState::Absent);
                    }
                }
                Err(_) => {}
            },
            "chmod" if ev.outcome.is_ok() => {
                if st == ModelState::Absent {
                    self.violation(ev, "chmod succeeded on an absent path");
                }
                if st == ModelState::Unknown {
                    self.set(&path, ModelState::Present(NodeKind::Any));
                }
            }
            _ => {}
        }
    }
}

/// Checks one client's history against the sequential model and the final
/// probed namespace. `preloaded` names directories installed before the run
/// (they start `Present(Dir)` instead of `Absent`). Returns human-readable
/// violations (empty = consistent).
pub fn check_client(
    history: &History,
    client: usize,
    finals: &BTreeMap<String, FinalState>,
    preloaded: &[String],
) -> Vec<String> {
    let mut model = SequentialModel::default();
    for p in preloaded {
        model.set(p, ModelState::Present(NodeKind::Dir));
    }
    let events = history.of_client(client);
    for ev in &events {
        model.apply(ev);
    }
    let mut violations = std::mem::take(&mut model.violations);

    // Final-state agreement: every definitely-pinned path must match the
    // probed namespace.
    for (path, st) in &model.paths {
        let Some(fin) = finals.get(path) else {
            continue;
        };
        let ok = match (st, fin) {
            (_, FinalState::Unprobed) => true,
            (ModelState::Unknown, _) => true,
            (ModelState::Absent, FinalState::Missing) => true,
            (ModelState::Absent, _) => false,
            (ModelState::Present(NodeKind::File), FinalState::File) => true,
            (ModelState::Present(NodeKind::Dir), FinalState::Dir) => true,
            (ModelState::Present(NodeKind::Any), FinalState::File | FinalState::Dir) => true,
            (ModelState::Present(_), _) => false,
        };
        if !ok {
            violations.push(format!(
                "client {client}: final state of {path} is {fin:?} but the model says {st:?}"
            ));
        }
    }

    // Rename atomicity: for every rename that is the *last* event touching
    // both of its ends, the final namespace must hold exactly one end — both
    // present or both absent is the 2PC divergence the checker exists to
    // catch. Ambiguous renames admit either pre- or post-state, but never a
    // mixed one.
    let mut rename_checks: Vec<(&HistoryEvent, ModelState, ModelState)> = Vec::new();
    {
        let mut model = SequentialModel::default();
        for p in preloaded {
            model.set(p, ModelState::Present(NodeKind::Dir));
        }
        for (i, ev) in events.iter().enumerate() {
            if ev.op == "rename" {
                let dst = ev.dst.clone().unwrap_or_default();
                let later_touch = events[i + 1..].iter().any(|e| {
                    e.path == ev.path
                        || e.path == dst
                        || e.dst.as_deref() == Some(&ev.path)
                        || e.dst.as_deref() == Some(dst.as_str())
                });
                if !later_touch {
                    rename_checks.push((ev, model.state(&ev.path), model.state(&dst)));
                }
            }
            model.apply(ev);
        }
    }
    for (ev, src_before, dst_before) in rename_checks {
        let dst = ev.dst.clone().unwrap_or_default();
        let (Some(fa), Some(fb)) = (finals.get(&ev.path), finals.get(&dst)) else {
            continue;
        };
        if matches!(fa, FinalState::Unprobed) || matches!(fb, FinalState::Unprobed) {
            continue;
        }
        let a_present = !matches!(fa, FinalState::Missing);
        let b_present = !matches!(fb, FinalState::Missing);
        match &ev.outcome {
            Ok(_) if a_present || !b_present => {
                violations.push(format!(
                    "client {} op {}: committed rename {} -> {} not atomic in the final \
                     namespace (src {:?}, dst {:?})",
                    ev.client, ev.idx, ev.path, dst, fa, fb
                ));
            }
            // The exactly-one-end argument needs both priors pinned: with
            // the source definitely present and the destination definitely
            // absent, an abort leaves (present, absent) and a commit
            // (absent, present) — both-absent and both-present are the 2PC
            // divergence. An already-absent source legitimately yields a
            // both-absent no-op, so it is excluded.
            Err(FsError::TimedOut | FsError::Unavailable)
                if matches!(src_before, ModelState::Present(_))
                    && dst_before == ModelState::Absent
                    && a_present == b_present =>
            {
                violations.push(format!(
                    "client {} op {}: ambiguous rename {} -> {} diverged: src {:?}, dst {:?} \
                     (must hold exactly one end)",
                    ev.client, ev.idx, ev.path, dst, fa, fb
                ));
            }
            _ => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(idx: usize, op: &str, path: &str, outcome: Result<&str, FsError>) -> HistoryEvent {
        HistoryEvent {
            client: 0,
            idx,
            op: op.into(),
            path: path.into(),
            dst: None,
            start_ns: idx as u64,
            end_ns: idx as u64 + 1,
            outcome: outcome.map(|s| s.to_string()),
        }
    }

    fn rename(idx: usize, src: &str, dst: &str, outcome: Result<&str, FsError>) -> HistoryEvent {
        HistoryEvent {
            dst: Some(dst.into()),
            ..ev(idx, "rename", src, outcome)
        }
    }

    #[test]
    fn clean_lifecycle_has_no_violations() {
        let mut h = History::default();
        h.record(ev(0, "create", "/c0/f0", Ok("file")));
        h.record(ev(1, "stat", "/c0/f0", Ok("file")));
        h.record(ev(2, "delete", "/c0/f0", Ok("deleted")));
        h.record(ev(3, "stat", "/c0/f0", Err(FsError::NotFound)));
        let mut finals = BTreeMap::new();
        finals.insert("/c0/f0".to_string(), FinalState::Missing);
        assert!(check_client(&h, 0, &finals, &[]).is_empty());
    }

    #[test]
    fn lost_update_is_flagged() {
        let mut h = History::default();
        h.record(ev(0, "create", "/c0/f0", Ok("file")));
        h.record(ev(1, "stat", "/c0/f0", Err(FsError::NotFound)));
        let finals = BTreeMap::new();
        let v = check_client(&h, 0, &finals, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("lost a present file"));
    }

    #[test]
    fn ambiguous_timeout_permits_either_state() {
        let mut h = History::default();
        h.record(ev(0, "create", "/c0/f0", Err(FsError::TimedOut)));
        for fin in [FinalState::File, FinalState::Missing] {
            let mut finals = BTreeMap::new();
            finals.insert("/c0/f0".to_string(), fin);
            assert!(check_client(&h, 0, &finals, &[]).is_empty(), "{fin:?}");
        }
    }

    #[test]
    fn final_state_must_match_pinned_model() {
        let mut h = History::default();
        h.record(ev(0, "create", "/c0/f0", Ok("file")));
        let mut finals = BTreeMap::new();
        finals.insert("/c0/f0".to_string(), FinalState::Missing);
        let v = check_client(&h, 0, &finals, &[]);
        assert!(!v.is_empty());
    }

    #[test]
    fn committed_rename_must_be_atomic() {
        let mut h = History::default();
        h.record(ev(0, "create", "/c0/f0", Ok("file")));
        h.record(rename(1, "/c0/f0", "/c0/r0", Ok("renamed")));
        // Divergent: both ends present.
        let mut finals = BTreeMap::new();
        finals.insert("/c0/f0".to_string(), FinalState::File);
        finals.insert("/c0/r0".to_string(), FinalState::File);
        let v = check_client(&h, 0, &finals, &[]);
        assert!(v.iter().any(|s| s.contains("not atomic")), "{v:?}");
        // Clean: moved.
        let mut finals = BTreeMap::new();
        finals.insert("/c0/f0".to_string(), FinalState::Missing);
        finals.insert("/c0/r0".to_string(), FinalState::File);
        assert!(check_client(&h, 0, &finals, &[]).is_empty());
    }

    #[test]
    fn ambiguous_rename_must_hold_exactly_one_end() {
        let mut h = History::default();
        h.record(ev(0, "create", "/c0/f0", Ok("file")));
        h.record(rename(1, "/c0/f0", "/c0/r0", Err(FsError::TimedOut)));
        // Either end alone is fine.
        for (fa, fb) in [
            (FinalState::File, FinalState::Missing),
            (FinalState::Missing, FinalState::File),
        ] {
            let mut finals = BTreeMap::new();
            finals.insert("/c0/f0".to_string(), fa);
            finals.insert("/c0/r0".to_string(), fb);
            assert!(
                check_client(&h, 0, &finals, &[]).is_empty(),
                "{fa:?}/{fb:?}"
            );
        }
        // Both absent (the volatile-prepare hole) and both present diverge.
        for (fa, fb) in [
            (FinalState::Missing, FinalState::Missing),
            (FinalState::File, FinalState::File),
        ] {
            let mut finals = BTreeMap::new();
            finals.insert("/c0/f0".to_string(), fa);
            finals.insert("/c0/r0".to_string(), fb);
            let v = check_client(&h, 0, &finals, &[]);
            assert!(v.iter().any(|s| s.contains("diverged")), "{fa:?}/{fb:?}");
        }
    }
}
