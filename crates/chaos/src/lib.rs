//! Deterministic fault injection (chaos) for SwitchFS.
//!
//! The paper's recovery story (§5.4.2, §A.1) promises that WAL replay,
//! re-aggregation and invalidation-list cloning restore a consistent
//! namespace after server crashes and switch reboots. This crate turns that
//! promise into an *enumerable, reproducible sweep*, in the tradition of
//! Jepsen-style nemesis testing on top of deterministic simulation:
//!
//! * [`plan`] — seed-driven [`FaultPlan`]s: crash/recover cycles, switch
//!   reboots, network partitions, loss/duplication/reorder windows and
//!   disk-latency spikes, serializable so any failing seed is a one-command
//!   repro;
//! * [`nemesis`] — applies a plan against a live [`switchfs_core::Cluster`]
//!   from inside the simulation, collecting every `RecoveryReport`;
//! * [`history`] — records each client operation's invocation/response and
//!   checks the run against a per-path sequential model (timeouts are
//!   ambiguous and admit either outcome; everything definite must agree),
//!   including a rename-atomicity check that catches exactly the namespace
//!   divergence a volatile 2PC prepare produces;
//! * [`harness`] — ties it together: [`run_chaos`] executes one scenario end
//!   to end and [`verify_replay`] asserts same-seed runs are bit-identical.
//!
//! ```
//! use switchfs_chaos::{run_chaos, ChaosConfig, PlanKind};
//! use switchfs_core::SystemKind;
//!
//! let report = run_chaos(ChaosConfig::new(SystemKind::SwitchFs, PlanKind::Crash, 1));
//! assert!(report.passed(), "{:?}", report.violations);
//! ```

pub mod harness;
pub mod history;
pub mod nemesis;
pub mod plan;

pub use harness::{run_chaos, verify_replay, ChaosConfig, ChaosReport};
pub use history::{FinalState, History, HistoryEvent};
pub use nemesis::{NemesisHandles, NemesisLog};
pub use plan::{Fault, FaultEvent, FaultPlan, PlanKind};
