//! Seed-driven fault plans.
//!
//! A [`FaultPlan`] is a finite, fully materialized schedule of fault events
//! against a running deployment: server crashes and recoveries, switch
//! reboots, network partitions, packet loss/duplication/reorder windows and
//! disk-latency spikes. Plans are *generated* from a seed — the same seed
//! always produces the same plan — and *serializable*, so a failing sweep
//! run can ship its exact plan as a one-command-reproducible artifact
//! (Jepsen-style nemesis schedules, but on the deterministic simulator).
//!
//! Invariants every generated plan upholds:
//!
//! * events are sorted by time and fit inside the plan's horizon;
//! * every fault is eventually healed: crashed servers recover, partitions
//!   heal, loss windows close, disk spikes clear — the run always ends on a
//!   healthy cluster, so the final consistency check probes settled state;
//! * at most one server is down at a time (single-failure assumption of
//!   §5.4.2), and the fault generator never crashes a server while another
//!   is still partitioned away.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The fault families a plan can be generated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanKind {
    /// Server crash/recover cycles plus occasional switch reboots.
    Crash,
    /// Network partitions isolating one metadata server at a time.
    Partition,
    /// Packet loss / duplication / reordering windows.
    Loss,
    /// Everything at once, plus disk-latency spikes.
    Combined,
    /// Membership change mid-faults: a new server joins and a live shard
    /// rebalance migrates ~1/N of the key space to it while a loss window
    /// (and occasionally a crash/recover cycle) is active. The checker is
    /// unchanged — elastic placement must be invisible to consistency.
    Membership,
    /// Elastic shrink mid-faults: one server is gracefully decommissioned
    /// (drained, retired, turned into a WrongOwner redirect tombstone)
    /// while a loss window — and occasionally an earlier crash/recover
    /// cycle — is active. The checker is unchanged: a shrinking cluster
    /// must be invisible to consistency.
    Decommission,
    /// Torn-write disk chaos: crash/recover cycles where the crash also
    /// corrupts the WAL's unflushed tail (records independently kept, torn
    /// or dropped under a per-event tear seed), sometimes under a
    /// disk-latency spike that widens the unflushed window and a loss
    /// window that forces retransmissions across the crash. The checker is
    /// unchanged — every acknowledged update must survive a torn log.
    DiskChaos,
}

impl PlanKind {
    /// All plan kinds, in sweep order.
    pub fn all() -> [PlanKind; 7] {
        [
            PlanKind::Crash,
            PlanKind::Partition,
            PlanKind::Loss,
            PlanKind::Combined,
            PlanKind::Membership,
            PlanKind::Decommission,
            PlanKind::DiskChaos,
        ]
    }

    /// Stable label used in reports and artifact names.
    pub fn label(&self) -> &'static str {
        match self {
            PlanKind::Crash => "crash",
            PlanKind::Partition => "partition",
            PlanKind::Loss => "loss",
            PlanKind::Combined => "combined",
            PlanKind::Membership => "membership",
            PlanKind::Decommission => "decommission",
            PlanKind::DiskChaos => "diskchaos",
        }
    }

    fn salt(&self) -> u64 {
        match self {
            PlanKind::Crash => 0x6372_6173,
            PlanKind::Partition => 0x7061_7274,
            PlanKind::Loss => 0x6c6f_7373,
            PlanKind::Combined => 0x636f_6d62,
            PlanKind::Membership => 0x6d65_6d62,
            PlanKind::Decommission => 0x6465_636f,
            PlanKind::DiskChaos => 0x6469_736b,
        }
    }
}

/// One fault to inject. Times live on the enclosing [`FaultEvent`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Crash metadata server `server`: volatile state lost, traffic dropped.
    CrashServer {
        /// Index of the server.
        server: usize,
    },
    /// Crash metadata server `server` with a torn disk write: the WAL's
    /// flushed prefix survives bit-exactly, while each unflushed record is
    /// independently kept, torn (checksum-corrupted) or dropped under
    /// `tear_seed`. Recovery must detect and truncate the damage without
    /// losing any acknowledged update.
    TornCrash {
        /// Index of the server.
        server: usize,
        /// Deterministic seed for the per-record keep/tear/drop draws.
        tear_seed: u64,
    },
    /// Bring metadata server `server` back and run `Server::recover`.
    RecoverServer {
        /// Index of the server.
        server: usize,
    },
    /// Reboot the programmable switch: all in-network state is lost and
    /// every server re-aggregates the directories it owns (§5.4.2).
    RebootSwitch,
    /// Partition the listed servers away from the rest of the cluster
    /// (clients and the coordinator stay with the majority side).
    Partition {
        /// Indexes of the isolated servers.
        isolated: Vec<usize>,
    },
    /// Heal any active partition.
    HealPartition,
    /// Open a packet loss/duplication/reorder window. Probabilities are in
    /// per-mille so the plan serializes exactly (no floats).
    SetLoss {
        /// Drop probability, ‰.
        drop_pm: u32,
        /// Duplication probability, ‰.
        dup_pm: u32,
        /// Max reorder jitter, µs.
        jitter_us: u64,
    },
    /// Close the loss window (restore a reliable fabric).
    ClearLoss,
    /// Multiply WAL-append latency on `server` (disk-latency spike).
    DiskSpike {
        /// Index of the server.
        server: usize,
        /// Slow-down multiplier.
        mult: u64,
    },
    /// Clear a disk-latency spike.
    ClearDiskSpike {
        /// Index of the server.
        server: usize,
    },
    /// Rebalance shards onto a server added to the cluster before the run
    /// (the harness provisions the standby node at setup; ownership moves
    /// live, at this scheduled time, while the workload keeps running).
    RebalanceOntoNewServer,
    /// Gracefully decommission metadata server `server` while the workload
    /// keeps running: drain every shard it owns to the survivors, flush its
    /// change-logs, retire it from the shared map and the switch multicast
    /// group, and leave it as a WrongOwner redirect tombstone. Never
    /// scheduled while a server is down (the drain needs live targets).
    DecommissionServer {
        /// Index of the server to decommission.
        server: usize,
    },
}

/// A fault scheduled at a virtual-time offset from the start of the run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual microseconds after the workload starts.
    pub at_us: u64,
    /// The fault to inject.
    pub fault: Fault,
}

/// A complete, reproducible fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The family this plan was generated from.
    pub kind: PlanKind,
    /// The generation seed (same seed + kind + shape ⇒ same plan).
    pub seed: u64,
    /// Number of metadata servers the plan was generated for.
    pub servers: usize,
    /// Virtual microseconds the fault window spans; all events fit inside.
    pub horizon_us: u64,
    /// The schedule, sorted by `at_us`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generates the plan for `(kind, seed)` against a `servers`-server
    /// deployment, with all faults inside `horizon_us`.
    pub fn generate(kind: PlanKind, seed: u64, servers: usize, horizon_us: u64) -> FaultPlan {
        assert!(servers >= 2, "chaos needs at least two servers");
        let mut rng = StdRng::seed_from_u64(seed ^ kind.salt());
        let mut events = Vec::new();
        // Leave the last fifth of the horizon fault-free so the cluster is
        // healthy and settled when the run ends.
        let active = horizon_us * 4 / 5;
        match kind {
            PlanKind::Crash => {
                Self::gen_crashes(&mut rng, &mut events, servers, active);
                if rng.gen_bool(0.5) {
                    events.push(FaultEvent {
                        at_us: rng.gen_range(active / 2..active),
                        fault: Fault::RebootSwitch,
                    });
                }
            }
            PlanKind::Partition => Self::gen_partitions(&mut rng, &mut events, servers, active),
            PlanKind::Loss => Self::gen_loss(&mut rng, &mut events, active),
            PlanKind::Combined => {
                Self::gen_crashes(&mut rng, &mut events, servers, active / 2);
                Self::gen_partitions_window(&mut rng, &mut events, servers, active / 2, active);
                Self::gen_loss(&mut rng, &mut events, active);
                let victim = rng.gen_range(0..servers);
                let start = rng.gen_range(0..active / 2);
                let end = rng.gen_range(start + 1..=active);
                events.push(FaultEvent {
                    at_us: start,
                    fault: Fault::DiskSpike {
                        server: victim,
                        mult: rng.gen_range(4..32),
                    },
                });
                events.push(FaultEvent {
                    at_us: end,
                    fault: Fault::ClearDiskSpike { server: victim },
                });
            }
            PlanKind::Membership => {
                // The rebalance lands mid-horizon so both pre- and post-move
                // traffic is exercised; a loss window overlaps it, and half
                // the seeds add a crash/recover cycle of an original member
                // in the first half (never concurrent with the migration
                // itself — the single-failure assumption of §5.4.2).
                Self::gen_loss(&mut rng, &mut events, active);
                if rng.gen_bool(0.5) {
                    Self::gen_crashes(&mut rng, &mut events, servers, active * 2 / 5);
                }
                events.push(FaultEvent {
                    at_us: rng.gen_range(active / 2..active * 4 / 5),
                    fault: Fault::RebalanceOntoNewServer,
                });
            }
            PlanKind::Decommission => {
                // The shrink lands mid-horizon so traffic spans the drain;
                // a loss window may overlap it, and half the seeds add an
                // earlier crash/recover cycle — fully healed before the
                // decommission starts, so the drain always has live targets
                // (single-failure assumption of §5.4.2).
                Self::gen_loss(&mut rng, &mut events, active);
                if rng.gen_bool(0.5) {
                    Self::gen_crashes(&mut rng, &mut events, servers, active * 2 / 5);
                }
                events.push(FaultEvent {
                    at_us: rng.gen_range(active / 2..active * 4 / 5),
                    fault: Fault::DecommissionServer {
                        server: rng.gen_range(0..servers),
                    },
                });
            }
            PlanKind::DiskChaos => {
                // Torn crash/recover cycles, each under a disk-latency spike
                // on the victim so the crash lands inside a widened
                // append→flush window (without the spike the unflushed
                // window is ~1µs and a random crash time virtually never
                // tears anything). Half the seeds overlay a loss window:
                // retransmissions spanning the crash exercise the
                // durable-completion dedup path.
                Self::gen_torn_crashes(&mut rng, &mut events, servers, active);
                if rng.gen_bool(0.5) {
                    Self::gen_loss(&mut rng, &mut events, active);
                }
            }
        }
        events.sort_by_key(|e| e.at_us);
        FaultPlan {
            kind,
            seed,
            servers,
            horizon_us,
            events,
        }
    }

    /// 1–3 sequential crash→recover cycles (one server down at a time).
    fn gen_crashes(rng: &mut StdRng, events: &mut Vec<FaultEvent>, servers: usize, active: u64) {
        let cycles = rng.gen_range(1..=3u32);
        let slot = active / cycles as u64;
        for c in 0..cycles as u64 {
            let lo = c * slot;
            let crash_at = lo + rng.gen_range(0..slot / 3);
            let recover_at = crash_at + rng.gen_range(slot / 4..slot / 2);
            let server = rng.gen_range(0..servers);
            events.push(FaultEvent {
                at_us: crash_at,
                fault: Fault::CrashServer { server },
            });
            events.push(FaultEvent {
                at_us: recover_at.min(lo + slot - 1),
                fault: Fault::RecoverServer { server },
            });
        }
    }

    /// 1–3 sequential torn-crash→recover cycles (one server down at a time),
    /// each with its own tear seed for the keep/tear/drop draws. Every cycle
    /// opens a heavy disk-latency spike on the victim *before* the crash:
    /// with appends at full speed the volatile window between `append` and
    /// `flush` is ~1µs, so an independently-timed crash essentially never
    /// catches an unflushed record — the spike stretches that window to tens
    /// of microseconds and makes torn tails an expected event rather than a
    /// coincidence.
    fn gen_torn_crashes(
        rng: &mut StdRng,
        events: &mut Vec<FaultEvent>,
        servers: usize,
        active: u64,
    ) {
        let cycles = rng.gen_range(1..=3u32);
        let slot = active / cycles as u64;
        for c in 0..cycles as u64 {
            let lo = c * slot;
            let spike_at = lo + rng.gen_range(0..slot / 6);
            let crash_at = spike_at + rng.gen_range(slot / 6..slot / 3);
            let recover_at = (crash_at + rng.gen_range(slot / 4..slot / 2)).min(lo + slot - 1);
            let server = rng.gen_range(0..servers);
            events.push(FaultEvent {
                at_us: spike_at,
                fault: Fault::DiskSpike {
                    server,
                    mult: rng.gen_range(24..96),
                },
            });
            events.push(FaultEvent {
                at_us: crash_at,
                fault: Fault::TornCrash {
                    server,
                    tear_seed: rng.gen(),
                },
            });
            events.push(FaultEvent {
                at_us: recover_at,
                fault: Fault::RecoverServer { server },
            });
            events.push(FaultEvent {
                at_us: recover_at,
                fault: Fault::ClearDiskSpike { server },
            });
        }
    }

    /// 1–2 partition windows isolating a single server.
    fn gen_partitions(rng: &mut StdRng, events: &mut Vec<FaultEvent>, servers: usize, active: u64) {
        let windows = rng.gen_range(1..=2u32);
        let slot = active / windows as u64;
        for w in 0..windows as u64 {
            Self::gen_partitions_window(rng, events, servers, w * slot, (w + 1) * slot);
        }
    }

    fn gen_partitions_window(
        rng: &mut StdRng,
        events: &mut Vec<FaultEvent>,
        servers: usize,
        lo: u64,
        hi: u64,
    ) {
        let span = hi - lo;
        let start = lo + rng.gen_range(0..span / 3);
        let end = start + rng.gen_range(span / 4..span / 2);
        let isolated = vec![rng.gen_range(0..servers)];
        events.push(FaultEvent {
            at_us: start,
            fault: Fault::Partition { isolated },
        });
        events.push(FaultEvent {
            at_us: end.min(hi - 1),
            fault: Fault::HealPartition,
        });
    }

    /// 1–2 loss windows with bounded drop/dup/jitter.
    fn gen_loss(rng: &mut StdRng, events: &mut Vec<FaultEvent>, active: u64) {
        let windows = rng.gen_range(1..=2u32);
        let slot = active / windows as u64;
        for w in 0..windows as u64 {
            let lo = w * slot;
            let start = lo + rng.gen_range(0..slot / 3);
            let end = start + rng.gen_range(slot / 4..slot / 2);
            events.push(FaultEvent {
                at_us: start,
                fault: Fault::SetLoss {
                    drop_pm: rng.gen_range(10..150),
                    dup_pm: rng.gen_range(0..80),
                    jitter_us: rng.gen_range(0..20),
                },
            });
            events.push(FaultEvent {
                at_us: end.min(lo + slot - 1),
                fault: Fault::ClearLoss,
            });
        }
    }

    /// Serializes the plan (artifact format for failing sweep runs).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("FaultPlan serializes infallibly")
    }

    /// Parses a plan serialized by [`FaultPlan::to_json`].
    pub fn from_json(s: &str) -> Result<FaultPlan, String> {
        serde_json::from_str(s).map_err(|e| format!("invalid fault plan: {e:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        for kind in PlanKind::all() {
            let a = FaultPlan::generate(kind, 7, 4, 80_000);
            let b = FaultPlan::generate(kind, 7, 4, 80_000);
            assert_eq!(a, b);
            let c = FaultPlan::generate(kind, 8, 4, 80_000);
            assert_ne!(a.events, c.events, "{kind:?} must vary with the seed");
        }
    }

    #[test]
    fn plans_are_sorted_healed_and_inside_the_horizon() {
        for kind in PlanKind::all() {
            for seed in 0..50 {
                let plan = FaultPlan::generate(kind, seed, 4, 80_000);
                assert!(!plan.events.is_empty());
                assert!(plan.events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
                assert!(plan.events.iter().all(|e| e.at_us < plan.horizon_us));
                // Every fault heals: count pairs.
                let mut down: Vec<usize> = Vec::new();
                let mut partitioned = false;
                let mut lossy = false;
                let mut spiked: Vec<usize> = Vec::new();
                let mut decommissioned: Option<usize> = None;
                for e in &plan.events {
                    match &e.fault {
                        Fault::CrashServer { server } => {
                            assert!(down.is_empty(), "single-failure assumption");
                            assert!(
                                decommissioned.is_none(),
                                "{kind:?}/{seed}: crash after a decommission"
                            );
                            down.push(*server);
                        }
                        Fault::TornCrash { server, .. } => {
                            assert_eq!(
                                kind,
                                PlanKind::DiskChaos,
                                "torn crashes only appear in diskchaos plans"
                            );
                            assert!(down.is_empty(), "single-failure assumption");
                            down.push(*server);
                        }
                        Fault::RecoverServer { server } => {
                            assert_eq!(down.pop(), Some(*server));
                        }
                        Fault::Partition { .. } => partitioned = true,
                        Fault::HealPartition => partitioned = false,
                        Fault::SetLoss { drop_pm, .. } => {
                            assert!(*drop_pm < 500, "drop must stay survivable");
                            lossy = true;
                        }
                        Fault::ClearLoss => lossy = false,
                        Fault::DiskSpike { server, .. } => spiked.push(*server),
                        Fault::ClearDiskSpike { server } => {
                            assert_eq!(spiked.pop(), Some(*server));
                        }
                        Fault::RebootSwitch => {}
                        Fault::RebalanceOntoNewServer => {
                            assert_eq!(
                                kind,
                                PlanKind::Membership,
                                "membership changes only appear in membership plans"
                            );
                            assert!(
                                down.is_empty(),
                                "{kind:?}/{seed}: rebalance while a server is down"
                            );
                        }
                        Fault::DecommissionServer { server } => {
                            assert_eq!(
                                kind,
                                PlanKind::Decommission,
                                "shrinks only appear in decommission plans"
                            );
                            assert!(
                                down.is_empty(),
                                "{kind:?}/{seed}: decommission while a server is down"
                            );
                            assert!(
                                decommissioned.is_none(),
                                "{kind:?}/{seed}: second decommission in one plan"
                            );
                            assert!(*server < plan.servers);
                            decommissioned = Some(*server);
                        }
                    }
                }
                assert!(down.is_empty(), "{kind:?}/{seed}: unrecovered crash");
                assert!(!partitioned, "{kind:?}/{seed}: unhealed partition");
                assert!(!lossy, "{kind:?}/{seed}: unclosed loss window");
                assert!(spiked.is_empty(), "{kind:?}/{seed}: uncleared disk spike");
            }
        }
    }

    #[test]
    fn plans_roundtrip_through_json() {
        let plan = FaultPlan::generate(PlanKind::Combined, 42, 8, 100_000);
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);
        assert!(FaultPlan::from_json("not json").is_err());
    }
}
