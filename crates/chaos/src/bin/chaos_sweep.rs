//! Multi-seed chaos sweep, used by the `chaos-smoke` CI job and for local
//! soak runs.
//!
//! ```text
//! cargo run --release -p switchfs-chaos --bin chaos-sweep -- \
//!     [--seeds N] [--ops N] [--all-systems] [--replay-every N] \
//!     [--artifact PATH] [--summary PATH] [--trace-dump PATH]
//! ```
//!
//! Runs `N` seeds × every plan kind (crash / partition / loss / combined /
//! membership / decommission / diskchaos), each with the consistency
//! checker on. On the
//! first failure the seed and the serialized fault plan are written to
//! `PATH` (default `chaos-failure.json`) so the red run is reproducible
//! with:
//!
//! ```text
//! cargo run --release -p switchfs-chaos --bin chaos-sweep -- --repro PATH
//! ```
//!
//! `--summary PATH` additionally writes a machine-readable sweep summary
//! (runs, failures, per-system×kind pass counts, summed unified metrics)
//! whether the sweep passes or fails — so a green CI run leaves evidence
//! too, not only a red one.
//!
//! `--trace-dump PATH` writes the flight-recorder contents of the most
//! recently completed run after every run, green or red — so trace events
//! are inspectable without waiting for a checker to trip.

use serde::Deserialize;
use switchfs_chaos::{run_chaos, verify_replay, ChaosConfig, PlanKind};
use switchfs_core::SystemKind;

/// The failure-artifact schema (also what `--repro` reads back).
#[derive(Debug, Deserialize)]
struct Artifact {
    system: String,
    seed: u64,
    kind: String,
    servers: usize,
    clients: usize,
    ops_per_client: usize,
    horizon_us: u64,
}

struct Args {
    seeds: u64,
    ops: usize,
    all_systems: bool,
    replay_every: u64,
    artifact: String,
    summary: Option<String>,
    repro: Option<String>,
    trace_dump: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 20,
        ops: 40,
        all_systems: false,
        replay_every: 5,
        artifact: "chaos-failure.json".to_string(),
        summary: None,
        repro: None,
        trace_dump: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seeds" => {
                i += 1;
                args.seeds = argv[i].parse().expect("--seeds N");
            }
            "--ops" => {
                i += 1;
                args.ops = argv[i].parse().expect("--ops N");
            }
            "--all-systems" => args.all_systems = true,
            "--replay-every" => {
                i += 1;
                args.replay_every = argv[i].parse().expect("--replay-every N");
            }
            "--artifact" => {
                i += 1;
                args.artifact = argv[i].clone();
            }
            "--summary" => {
                i += 1;
                args.summary = Some(argv[i].clone());
            }
            "--repro" => {
                i += 1;
                args.repro = Some(argv[i].clone());
            }
            "--trace-dump" => {
                i += 1;
                args.trace_dump = Some(argv[i].clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// Serializes a flight-recorder dump into a JSON value (an array of trace
/// events, ordered by node then FIFO).
fn recorder_json(events: &[switchfs_obs::TraceEvent]) -> serde_json::Value {
    serde_json::to_string(&events.to_vec())
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .unwrap_or(serde_json::Value::Null)
}

/// The artifact format: everything needed to re-run one failing scenario,
/// plus the flight-recorder dump showing what led up to the violation.
fn failure_artifact(cfg: &ChaosConfig, report: &switchfs_chaos::ChaosReport) -> String {
    let violations_json: Vec<serde_json::Value> = report
        .violations
        .iter()
        .map(|v| serde_json::Value::String(v.clone()))
        .collect();
    serde_json::json!({
        "system": format!("{}", cfg.system),
        "seed": cfg.seed,
        "kind": report.plan.kind.label(),
        "servers": cfg.servers,
        "clients": cfg.clients,
        "ops_per_client": cfg.ops_per_client,
        "horizon_us": cfg.horizon_us,
        "violations": violations_json,
        "plan": serde_json::from_str::<serde_json::Value>(&report.plan.to_json())
            .unwrap_or(serde_json::Value::Null),
        "flight_recorder": recorder_json(&report.flight_recorder),
    })
    .to_string()
}

fn run_one(
    cfg: ChaosConfig,
    check_replay: bool,
    artifact: &str,
    trace_dump: Option<&str>,
) -> (bool, switchfs_chaos::ChaosReport) {
    let label = format!("{} / {} / seed {}", cfg.system, cfg.kind.label(), cfg.seed);
    let (report, replay_ok) = if check_replay {
        verify_replay(cfg)
    } else {
        (run_chaos(cfg), true)
    };
    let mut ok = report.passed();
    if !replay_ok {
        eprintln!("FAIL {label}: same seed + plan did not replay bit-identically");
        ok = false;
    }
    if let Some(path) = trace_dump {
        // Written green or red: the most recent run's recorder contents.
        let dump = serde_json::json!({
            "system": format!("{}", cfg.system),
            "seed": cfg.seed,
            "kind": report.plan.kind.label(),
            "events": recorder_json(&report.flight_recorder),
        });
        if let Err(e) = std::fs::write(path, format!("{dump}\n")) {
            eprintln!("cannot write trace dump {path}: {e}");
        }
    }
    if !report.passed() {
        eprintln!("FAIL {label}: {} violation(s)", report.violations.len());
        for v in &report.violations {
            eprintln!("  - {v}");
        }
        let art = failure_artifact(&cfg, &report);
        if let Err(e) = std::fs::write(artifact, format!("{art}\n")) {
            eprintln!("cannot write artifact {artifact}: {e}");
        } else {
            eprintln!("wrote failing seed + plan to {artifact}");
        }
    } else if ok {
        let recovered: usize = report
            .recoveries
            .iter()
            .map(|(_, r)| r.prepared_txns_recovered)
            .sum();
        let unflushed: usize = report
            .torn_tails
            .iter()
            .map(|(_, t)| t.kept + t.torn + t.dropped)
            .sum();
        let truncated: usize = report
            .recoveries
            .iter()
            .map(|(_, r)| r.wal_truncated_records)
            .sum();
        println!(
            "ok   {label}: {} ops ({} ok, {} ambiguous), {} recoveries, {} in-doubt txns resolved{}{}",
            report.history.events.len(),
            report.history.ok(),
            report.history.ambiguous(),
            report.recoveries.len(),
            recovered,
            if unflushed > 0 || truncated > 0 {
                format!(", {unflushed} WAL records caught unflushed ({truncated} truncated)")
            } else {
                String::new()
            },
            if check_replay { ", replay verified" } else { "" },
        );
    }
    (ok, report)
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.repro {
        // Re-run one failing scenario from its artifact.
        let text = std::fs::read_to_string(path).expect("readable artifact");
        let doc: Artifact = serde_json::from_str(&text).expect("valid artifact JSON");
        let kind = match doc.kind.as_str() {
            "crash" => PlanKind::Crash,
            "partition" => PlanKind::Partition,
            "loss" => PlanKind::Loss,
            "membership" => PlanKind::Membership,
            "decommission" => PlanKind::Decommission,
            "diskchaos" => PlanKind::DiskChaos,
            _ => PlanKind::Combined,
        };
        let system = match doc.system.as_str() {
            "SwitchFS" => SystemKind::SwitchFs,
            "Emulated-InfiniFS" => SystemKind::EmulatedInfiniFs,
            "Emulated-CFS" => SystemKind::EmulatedCfs,
            "CephFS" => SystemKind::CephFsLike,
            _ => SystemKind::IndexFsLike,
        };
        let cfg = ChaosConfig {
            system,
            seed: doc.seed,
            kind,
            servers: doc.servers,
            clients: doc.clients,
            ops_per_client: doc.ops_per_client,
            horizon_us: doc.horizon_us,
            trace: true,
        };
        let (ok, _) = run_one(
            cfg,
            true,
            "chaos-failure-repro.json",
            args.trace_dump.as_deref(),
        );
        std::process::exit(if ok { 0 } else { 1 });
    }

    let systems: Vec<SystemKind> = if args.all_systems {
        SystemKind::all().to_vec()
    } else {
        vec![SystemKind::SwitchFs]
    };
    let mut failures = 0u64;
    let mut runs = 0u64;
    let mut cells: Vec<serde_json::Value> = Vec::new();
    let mut metric_totals: std::collections::BTreeMap<String, u64> = Default::default();
    for system in &systems {
        for kind in PlanKind::all() {
            let mut cell_passed = 0u64;
            let mut cell_failed = 0u64;
            for seed in 0..args.seeds {
                let mut cfg = ChaosConfig::new(*system, kind, seed);
                cfg.ops_per_client = args.ops;
                let check_replay = args.replay_every > 0 && seed % args.replay_every == 0;
                runs += 1;
                let (ok, report) = run_one(
                    cfg,
                    check_replay,
                    &args.artifact,
                    args.trace_dump.as_deref(),
                );
                for (name, value) in report.metrics.snapshot() {
                    if let switchfs_obs::MetricValue::Counter(v) = value {
                        *metric_totals.entry(name).or_insert(0) += v;
                    }
                }
                if ok {
                    cell_passed += 1;
                } else {
                    cell_failed += 1;
                    failures += 1;
                }
            }
            cells.push(serde_json::json!({
                "system": format!("{system}"),
                "kind": kind.label(),
                "passed": cell_passed,
                "failed": cell_failed,
            }));
        }
    }
    println!(
        "chaos sweep: {runs} runs, {failures} failures ({} systems × {} kinds × {} seeds)",
        systems.len(),
        PlanKind::all().len(),
        args.seeds
    );
    // The summary is written on success AND failure: a green sweep should
    // leave evidence of what it covered, not only a red one.
    if let Some(path) = &args.summary {
        // Stable-ordered named metric rows, summed over every run of the
        // sweep (BTreeMap keeps the names sorted).
        let mut metric_map = serde_json::Map::new();
        for (name, v) in metric_totals {
            metric_map.insert(
                name,
                serde_json::Value::Number(serde_json::Number::from_u64(v)),
            );
        }
        let metrics_json = serde_json::Value::Object(metric_map);
        let summary = serde_json::json!({
            "runs": runs,
            "failures": failures,
            "seeds": args.seeds,
            "ops_per_client": args.ops,
            "replay_every": args.replay_every,
            "systems": systems.iter().map(|s| format!("{s}")).collect::<Vec<_>>(),
            "kinds": PlanKind::all().iter().map(|k| k.label()).collect::<Vec<_>>(),
            "cells": cells,
            "metrics": metrics_json,
        });
        match std::fs::write(path, format!("{summary}\n")) {
            Ok(()) => eprintln!("wrote sweep summary to {path}"),
            Err(e) => eprintln!("cannot write summary {path}: {e}"),
        }
    }
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
