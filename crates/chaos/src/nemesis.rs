//! The nemesis: drives a [`FaultPlan`](crate::plan::FaultPlan) against a
//! running deployment from inside the simulation.
//!
//! The nemesis runs as an ordinary simulated task alongside the workload
//! clients: it sleeps to each event's virtual time and injects the fault
//! through the same handles the cluster harness uses (crash/recover with
//! `Server::recover`, switch reboot + re-aggregation, partition filters and
//! loss windows on the `Network`, WAL slow-down on servers). Every recovery
//! report is collected for the run report.

use std::cell::RefCell;
use std::rc::Rc;

use switchfs_core::{run_decommission, run_rebalance, Cluster};
use switchfs_proto::message::NetMsg;
use switchfs_proto::SharedPlacement;
use switchfs_server::server::recovery::RecoveryReport;
use switchfs_server::Server;
use switchfs_simnet::{NetFaults, Network, NodeId, SimDuration, SimHandle, SimTime};

use crate::plan::{Fault, FaultPlan};

/// Everything the nemesis needs, captured from a [`Cluster`] *before* the
/// simulation starts (the cluster itself cannot be borrowed into a spawned
/// task).
#[derive(Clone)]
pub struct NemesisHandles {
    /// Simulation handle (clock + sleep).
    pub handle: SimHandle,
    /// The network fabric.
    pub network: Network<NetMsg>,
    /// Every metadata server, by index.
    pub servers: Vec<Server>,
    /// The servers' network nodes, by index.
    pub server_nodes: Vec<NodeId>,
    /// The switch program, if the deployment has one (reboot hook).
    pub switch: Option<SwitchHook>,
    /// Removes a node from the switch's aggregation multicast group
    /// (decommission fault), if a switch is deployed.
    pub switch_remove: Option<SwitchRemoveHook>,
    /// The cluster's shared shard map (membership-change fault: the nemesis
    /// drives a live rebalance against it).
    pub placement: SharedPlacement,
}

/// Reboot hook for the programmable switch.
pub type SwitchHook = Rc<dyn Fn()>;

/// Multicast-group removal hook for the programmable switch.
pub type SwitchRemoveHook = Rc<dyn Fn(u32)>;

impl NemesisHandles {
    /// Captures the handles from a built cluster.
    pub fn capture(cluster: &Cluster) -> NemesisHandles {
        let servers: Vec<Server> = cluster.servers().to_vec();
        let server_nodes: Vec<NodeId> = (0..servers.len())
            .map(|i| cluster.server_node_id(i))
            .collect();
        let switch: Option<SwitchHook> = cluster.switch_program().map(|p| {
            let p = p.clone();
            Rc::new(move || p.borrow_mut().reboot()) as SwitchHook
        });
        let switch_remove: Option<SwitchRemoveHook> = cluster.switch_program().map(|p| {
            let p = p.clone();
            Rc::new(move |node: u32| p.borrow_mut().remove_server_node(node)) as SwitchRemoveHook
        });
        NemesisHandles {
            handle: cluster.sim.handle(),
            network: cluster.network(),
            servers,
            server_nodes,
            switch,
            switch_remove,
            placement: cluster.placement(),
        }
    }
}

/// What the nemesis did, for the run report.
#[derive(Debug, Default)]
pub struct NemesisLog {
    /// `(server index, report)` for every recovery the nemesis drove.
    pub recoveries: Vec<(usize, RecoveryReport)>,
    /// Number of switch reboots injected.
    pub switch_reboots: usize,
    /// Number of events applied in total.
    pub events_applied: usize,
    /// Shards migrated by membership-change faults (grow and shrink).
    pub shards_moved: usize,
    /// Graceful decommissions completed (victim drained, retired and turned
    /// into a redirect tombstone).
    pub decommissions: usize,
    /// `(server index, tail)` for every torn crash: what the tear did to the
    /// victim's unflushed WAL suffix (kept / torn / dropped counts).
    pub torn_tails: Vec<(usize, switchfs_server::TornTail)>,
}

/// Runs the plan to completion. The future resolves once the last event has
/// been applied and the plan's horizon has passed; by construction of
/// [`FaultPlan::generate`](crate::plan::FaultPlan::generate) the cluster is
/// healthy at that point.
pub async fn run_nemesis(handles: NemesisHandles, plan: FaultPlan, log: Rc<RefCell<NemesisLog>>) {
    let start = handles.handle.now();
    for ev in &plan.events {
        let deadline = start + SimDuration::micros(ev.at_us);
        sleep_until(&handles.handle, deadline).await;
        apply_fault(&handles, &ev.fault, &log).await;
        log.borrow_mut().events_applied += 1;
    }
    sleep_until(
        &handles.handle,
        start + SimDuration::micros(plan.horizon_us),
    )
    .await;
}

async fn sleep_until(handle: &SimHandle, deadline: SimTime) {
    let now = handle.now();
    if deadline > now {
        handle.sleep(deadline.duration_since(now)).await;
    }
}

async fn apply_fault(handles: &NemesisHandles, fault: &Fault, log: &Rc<RefCell<NemesisLog>>) {
    match fault {
        Fault::CrashServer { server } => {
            handles.servers[*server].crash();
            handles
                .network
                .set_node_down(handles.server_nodes[*server], true);
        }
        Fault::TornCrash { server, tear_seed } => {
            let tail = handles.servers[*server].crash_torn(*tear_seed);
            log.borrow_mut().torn_tails.push((*server, tail));
            handles
                .network
                .set_node_down(handles.server_nodes[*server], true);
        }
        Fault::RecoverServer { server } => {
            handles
                .network
                .set_node_down(handles.server_nodes[*server], false);
            let report = handles.servers[*server].recover().await;
            log.borrow_mut().recoveries.push((*server, report));
        }
        Fault::RebootSwitch => {
            if let Some(reboot) = &handles.switch {
                reboot();
                // §5.4.2: every server re-aggregates the directories it owns
                // so the (now empty) dirty set is consistent again. The
                // stop-the-world pause mirrors `crash_and_recover_switch`.
                for s in &handles.servers {
                    if !s.is_crashed() {
                        s.set_unavailable();
                    }
                }
                for s in &handles.servers {
                    if !s.is_crashed() {
                        s.aggregate_all_owned().await;
                    }
                }
                for s in &handles.servers {
                    if !s.is_crashed() {
                        s.set_available(true);
                    }
                }
                log.borrow_mut().switch_reboots += 1;
            }
        }
        Fault::Partition { isolated } => {
            let groups = isolated.iter().map(|i| (handles.server_nodes[*i], 1u32));
            handles.network.set_partition(groups);
        }
        Fault::HealPartition => handles.network.heal_partition(),
        Fault::SetLoss {
            drop_pm,
            dup_pm,
            jitter_us,
        } => {
            handles.network.set_faults(NetFaults::lossy(
                *drop_pm as f64 / 1000.0,
                *dup_pm as f64 / 1000.0,
                SimDuration::micros(*jitter_us),
            ));
        }
        Fault::ClearLoss => handles.network.set_faults(NetFaults::reliable()),
        Fault::DiskSpike { server, mult } => {
            handles.servers[*server].set_disk_slowdown(*mult);
        }
        Fault::ClearDiskSpike { server } => {
            handles.servers[*server].set_disk_slowdown(1);
        }
        Fault::RebalanceOntoNewServer => {
            // The harness provisioned the standby server (it is the last
            // entry of `servers` and owns no shards yet); ownership moves
            // now, live, while the workload keeps running.
            let moved = run_rebalance(&handles.placement, &handles.servers).await;
            log.borrow_mut().shards_moved += moved;
        }
        Fault::DecommissionServer { server } => {
            // Drain the victim's shards to the survivors while the workload
            // keeps running, then retire it. Only a completed drain shuts
            // the server down (into the WrongOwner redirect tombstone); an
            // incomplete one (a fault window ate the retry budget) leaves a
            // consistent partially-drained cluster.
            let report = run_decommission(&handles.placement, &handles.servers, *server).await;
            if report.completed {
                if let Some(remove) = &handles.switch_remove {
                    remove(handles.server_nodes[*server].0);
                }
                handles.servers[*server].decommission();
                log.borrow_mut().decommissions += 1;
            }
            log.borrow_mut().shards_moved += report.shards_moved;
        }
    }
}
