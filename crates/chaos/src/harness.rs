//! End-to-end chaos runs: generate a plan, drive workload + nemesis, probe
//! the final namespace, check consistency, and digest the whole run for
//! bit-identical replay verification.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use switchfs_client::LibFs;
use switchfs_core::{Cluster, ClusterConfig, SystemKind};
use switchfs_proto::FsError;
use switchfs_server::server::recovery::RecoveryReport;
use switchfs_simnet::{SimDuration, SimHandle};

use crate::history::{
    check_client, FinalState, History, HistoryEvent, ModelState, SequentialModel,
};
use crate::nemesis::{run_nemesis, NemesisHandles, NemesisLog};
use crate::plan::{FaultPlan, PlanKind};

/// Shape of one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Which system to deploy (§4: the harness runs on every `SystemKind`).
    pub system: SystemKind,
    /// Run seed: drives the cluster, the fault plan and the op scripts.
    pub seed: u64,
    /// Fault family to generate the plan from.
    pub kind: PlanKind,
    /// Metadata servers.
    pub servers: usize,
    /// Workload clients (each runs a sequential script on a private
    /// namespace).
    pub clients: usize,
    /// Operations per client.
    pub ops_per_client: usize,
    /// Virtual microseconds the fault window spans.
    pub horizon_us: u64,
    /// Record causal trace events into the flight recorder. Tracing never
    /// touches protocol state: the run digest is bit-identical either way
    /// (pinned by the `tracing_does_not_perturb_the_run_digest` conformance
    /// test), so the harness keeps it on by default and drains the recorder
    /// into the failure artifact when a checker trips.
    pub trace: bool,
}

impl ChaosConfig {
    /// A small default run: 4 servers, 2 clients, 40 ops each, 60 ms of
    /// virtual fault window.
    pub fn new(system: SystemKind, kind: PlanKind, seed: u64) -> ChaosConfig {
        ChaosConfig {
            system,
            seed,
            kind,
            servers: 4,
            clients: 2,
            ops_per_client: 40,
            horizon_us: 60_000,
            trace: true,
        }
    }
}

/// Everything one run produced.
#[derive(Debug)]
pub struct ChaosReport {
    /// The injected fault plan (serialize with
    /// [`FaultPlan::to_json`] to reproduce the run).
    pub plan: FaultPlan,
    /// The recorded operation history.
    pub history: History,
    /// Consistency violations (empty ⇔ the run passed).
    pub violations: Vec<String>,
    /// Recovery reports, one per nemesis-driven recovery.
    pub recoveries: Vec<(usize, RecoveryReport)>,
    /// Switch reboots injected.
    pub switch_reboots: usize,
    /// Prepared transactions still unresolved after the final settle (must
    /// be zero; also surfaced as a violation).
    pub stranded_prepared: usize,
    /// Shards live-migrated by membership-change faults (zero for the other
    /// plan kinds).
    pub shards_moved: usize,
    /// Graceful decommissions completed by the nemesis (decommission plans
    /// only; zero when a fault window kept the drain from finishing).
    pub decommissions: usize,
    /// What each torn crash did to the victim's unflushed WAL suffix
    /// (diskchaos plans only; empty for the other kinds).
    pub torn_tails: Vec<(usize, switchfs_server::TornTail)>,
    /// Flight-recorder contents at the end of the run (empty when tracing
    /// was off): every retained trace event, ordered by node then FIFO.
    /// Deliberately *not* part of the digest — the digest must be identical
    /// with tracing on and off.
    pub flight_recorder: Vec<switchfs_obs::TraceEvent>,
    /// Stable-ordered unified metrics snapshot of the final cluster state.
    /// Like the recorder, not part of the digest (it is derived from the
    /// same counters the digest already covers, plus obs-only ones).
    pub metrics: switchfs_obs::MetricsRegistry,
    /// Virtual time at the end of the run, ns.
    pub final_now_ns: u64,
    /// FNV-1a digest over the plan, history, final namespace and cluster
    /// statistics: two same-seed runs must produce the same digest.
    pub digest: u64,
}

impl ChaosReport {
    /// True when the consistency checker found nothing.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One scripted client operation.
#[derive(Debug, Clone)]
enum ScriptOp {
    Create(String),
    Delete(String),
    Rename(String, String),
    Mkdir(String),
    Rmdir(String),
    Stat(String),
    Statdir(String),
    Readdir(String),
    Chmod(String),
}

/// One script step: think, then act. The think times are pre-generated so
/// the script *spans the fault horizon* — without them the whole workload
/// would finish in a few healthy milliseconds before the first fault lands.
#[derive(Debug, Clone)]
struct ScriptStep {
    think_us: u64,
    op: ScriptOp,
}

fn client_dir(c: usize) -> String {
    format!("/chaos/c{c}")
}

/// Generates client `c`'s sequential script (seed-deterministic).
fn generate_script(cfg: &ChaosConfig, c: usize) -> Vec<ScriptStep> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x00c1_1e47 + c as u64 * 0x9e37_79b9));
    let dir = client_dir(c);
    let files = 8usize;
    let subdirs = 3usize;
    let mut rename_counter = 0usize;
    let mut renamed: Vec<String> = Vec::new();
    // Mean think time spreads the ops across the whole fault horizon.
    let mean_think = (cfg.horizon_us / cfg.ops_per_client.max(1) as u64).max(1);
    let mut out = Vec::with_capacity(cfg.ops_per_client);
    for _ in 0..cfg.ops_per_client {
        let f = format!("{dir}/f{}", rng.gen_range(0..files));
        let d = format!("{dir}/d{}", rng.gen_range(0..subdirs));
        let roll = rng.gen_range(0..100u32);
        let op = match roll {
            0..=29 => ScriptOp::Create(f),
            30..=44 => ScriptOp::Delete(f),
            45..=56 => {
                let src = if !renamed.is_empty() && rng.gen_bool(0.3) {
                    renamed[rng.gen_range(0..renamed.len())].clone()
                } else {
                    f
                };
                let dst = format!("{dir}/r{rename_counter}");
                rename_counter += 1;
                renamed.push(dst.clone());
                ScriptOp::Rename(src, dst)
            }
            57..=62 => ScriptOp::Mkdir(d),
            63..=67 => ScriptOp::Rmdir(d),
            68..=79 => {
                let p = if !renamed.is_empty() && rng.gen_bool(0.3) {
                    renamed[rng.gen_range(0..renamed.len())].clone()
                } else {
                    f
                };
                ScriptOp::Stat(p)
            }
            80..=87 => ScriptOp::Statdir(dir.clone()),
            88..=95 => ScriptOp::Readdir(dir.clone()),
            _ => ScriptOp::Chmod(f),
        };
        out.push(ScriptStep {
            think_us: rng.gen_range(0..mean_think * 2),
            op,
        });
    }
    out
}

async fn run_script(
    c: usize,
    client: Rc<LibFs>,
    script: Vec<ScriptStep>,
    history: Rc<RefCell<History>>,
    handle: SimHandle,
) {
    for (idx, step) in script.into_iter().enumerate() {
        if step.think_us > 0 {
            handle.sleep(SimDuration::micros(step.think_us)).await;
        }
        let op = step.op;
        let start_ns = handle.now().as_nanos();
        let (name, path, dst, outcome) = match &op {
            ScriptOp::Create(p) => (
                "create",
                p.clone(),
                None,
                client.create(p).await.map(|_| "file".to_string()),
            ),
            ScriptOp::Delete(p) => (
                "delete",
                p.clone(),
                None,
                client.delete(p).await.map(|_| "deleted".to_string()),
            ),
            ScriptOp::Rename(a, b) => (
                "rename",
                a.clone(),
                Some(b.clone()),
                client.rename(a, b).await.map(|_| "renamed".to_string()),
            ),
            ScriptOp::Mkdir(p) => (
                "mkdir",
                p.clone(),
                None,
                client.mkdir(p).await.map(|_| "dir".to_string()),
            ),
            ScriptOp::Rmdir(p) => (
                "rmdir",
                p.clone(),
                None,
                client.rmdir(p).await.map(|_| "removed".to_string()),
            ),
            ScriptOp::Stat(p) => (
                "stat",
                p.clone(),
                None,
                client.stat(p).await.map(|_| "file".to_string()),
            ),
            ScriptOp::Statdir(p) => (
                "statdir",
                p.clone(),
                None,
                client
                    .statdir(p)
                    .await
                    .map(|a| format!("dir size={}", a.size)),
            ),
            ScriptOp::Readdir(p) => (
                "readdir",
                p.clone(),
                None,
                client
                    .readdir(p)
                    .await
                    .map(|(_, e)| format!("{} entries", e.len())),
            ),
            ScriptOp::Chmod(p) => (
                "chmod",
                p.clone(),
                None,
                client.chmod(p, 0o700).await.map(|_| "chmod".to_string()),
            ),
        };
        let end_ns = handle.now().as_nanos();
        history.borrow_mut().record(HistoryEvent {
            client: c,
            idx,
            op: name.to_string(),
            path,
            dst,
            start_ns,
            end_ns,
            outcome,
        });
    }
}

/// Probes the final state of one path through a client.
async fn probe_final(client: &Rc<LibFs>, path: &str) -> FinalState {
    match client.stat(path).await {
        Ok(a) if a.is_dir() => FinalState::Dir,
        Ok(_) => FinalState::File,
        Err(FsError::NotFound) => match client.statdir(path).await {
            Ok(_) => FinalState::Dir,
            Err(FsError::NotFound) => FinalState::Missing,
            Err(_) => FinalState::Unprobed,
        },
        Err(_) => match client.statdir(path).await {
            Ok(_) => FinalState::Dir,
            Err(FsError::NotFound) => FinalState::Missing,
            Err(_) => FinalState::Unprobed,
        },
    }
}

/// FNV-1a, used as the run digest (no std `RandomState` anywhere near the
/// replay check).
fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for b in bytes {
        *digest ^= *b as u64;
        *digest = digest.wrapping_mul(PRIME);
    }
}

/// Runs one chaos scenario end to end and returns its report.
pub fn run_chaos(cfg: ChaosConfig) -> ChaosReport {
    let plan = FaultPlan::generate(cfg.kind, cfg.seed, cfg.servers, cfg.horizon_us);
    let mut cluster_cfg = ClusterConfig::paper_default(cfg.system);
    cluster_cfg.servers = cfg.servers;
    cluster_cfg.clients = cfg.clients;
    cluster_cfg.seed = cfg.seed;
    cluster_cfg.trace_capacity = cfg.trace.then_some(switchfs_obs::DEFAULT_RING_CAPACITY);
    let mut cluster = Cluster::new(cluster_cfg);

    // Per-client private namespaces, preloaded so setup cannot fail — and
    // checkpointed, so the preloads survive injected crashes (preloading
    // bypasses the WAL).
    cluster.preload_dir("/chaos");
    for c in 0..cfg.clients {
        cluster.preload_dir(&client_dir(c));
    }
    cluster.checkpoint_all();

    // Membership plans provision the standby server up front (it owns no
    // shards until the scheduled rebalance migrates a fair share to it,
    // live, mid-faults).
    if plan
        .events
        .iter()
        .any(|e| matches!(e.fault, crate::plan::Fault::RebalanceOntoNewServer))
    {
        cluster.add_server();
    }

    let handles = NemesisHandles::capture(&cluster);
    let clients: Vec<Rc<LibFs>> = cluster.clients().to_vec();
    let history = Rc::new(RefCell::new(History::default()));
    let nemesis_log = Rc::new(RefCell::new(NemesisLog::default()));
    let scripts: Vec<Vec<ScriptStep>> =
        (0..cfg.clients).map(|c| generate_script(&cfg, c)).collect();

    // Phase 1: workload + nemesis, concurrently, inside one simulation run.
    {
        let handles = handles.clone();
        let plan = plan.clone();
        let history = history.clone();
        let log = nemesis_log.clone();
        cluster.block_on(async move {
            let h = handles.handle.clone();
            let nem = h.spawn_with_result(run_nemesis(handles, plan, log));
            let mut joins = Vec::new();
            for (c, script) in scripts.into_iter().enumerate() {
                let client = clients[c % clients.len()].clone();
                let history = history.clone();
                let hh = h.clone();
                joins.push(h.spawn_with_result(async move {
                    run_script(c, client, script, history, hh).await
                }));
            }
            for j in joins {
                j.join().await;
            }
            nem.join().await;
        });
    }

    // Phase 2: quiesce. Long enough for proactive aggregation to drain every
    // change-log and for the prepared-transaction sweep (threshold 256 ×
    // request timeout) to resolve anything the faults stranded.
    let timeout = cluster.config().cost_model().request_timeout;
    cluster.settle(timeout * 300 + SimDuration::millis(5));
    let mut stranded_prepared: usize = cluster
        .servers()
        .iter()
        .map(|s| s.prepared_txn_count())
        .sum();
    if stranded_prepared > 0 {
        // One more sweep window: a resolution may itself have been unlucky.
        cluster.settle(timeout * 300);
        stranded_prepared = cluster
            .servers()
            .iter()
            .map(|s| s.prepared_txn_count())
            .sum();
    }

    // Phase 3: probe the final state of every path the history touched.
    let mut paths: BTreeSet<String> = BTreeSet::new();
    for ev in &history.borrow().events {
        paths.insert(ev.path.clone());
        if let Some(d) = &ev.dst {
            paths.insert(d.clone());
        }
    }
    let finals: BTreeMap<String, FinalState> = {
        let prober = cluster.client(0);
        let paths: Vec<String> = paths.iter().cloned().collect();
        cluster.block_on(async move {
            let mut out = BTreeMap::new();
            for p in paths {
                let st = probe_final(&prober, &p).await;
                out.insert(p, st);
            }
            out
        })
    };

    // Phase 4: consistency checking — per-client sequential models plus the
    // cross-replica structural walk of each client directory.
    let history_ref = history.borrow();
    let mut violations = Vec::new();
    let preloaded: Vec<String> = std::iter::once("/chaos".to_string())
        .chain((0..cfg.clients).map(client_dir))
        .collect();
    for c in 0..cfg.clients {
        violations.extend(check_client(&history_ref, c, &finals, &preloaded));
    }
    violations.extend(structural_check(
        &cluster,
        &history_ref,
        cfg.clients,
        &finals,
    ));
    if stranded_prepared > 0 {
        violations.push(format!(
            "{stranded_prepared} prepared transaction(s) still unresolved after the final settle"
        ));
    }

    // Debug aid: `CHAOS_DEBUG=1` dumps per-server state when a run fails.
    if !violations.is_empty() && std::env::var("CHAOS_DEBUG").is_ok() {
        for (path, (_, id)) in &cluster.preloaded_dirs {
            for (i, s) in cluster.servers().iter().enumerate() {
                let entries = s.peek_entries(id);
                if !entries.is_empty() {
                    eprintln!("debug: server {i} entries[{path}] = {entries:?}");
                }
            }
        }
        for (i, s) in cluster.servers().iter().enumerate() {
            eprintln!(
                "debug: server {i} stats={:?} pending_changelog={} prepared={}",
                s.stats(),
                s.pending_changelog_entries(),
                s.prepared_txn_count()
            );
        }
    }

    // Digest for bit-identical replay verification.
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    fnv1a(&mut digest, plan.to_json().as_bytes());
    for ev in &history_ref.events {
        fnv1a(&mut digest, format!("{ev:?}").as_bytes());
    }
    for (p, st) in &finals {
        fnv1a(&mut digest, format!("{p}={st:?}").as_bytes());
    }
    fnv1a(
        &mut digest,
        format!("{:?}", cluster.total_server_stats()).as_bytes(),
    );
    let final_now_ns = cluster.sim.now().as_nanos();
    fnv1a(&mut digest, &final_now_ns.to_le_bytes());

    let log = nemesis_log.borrow();
    ChaosReport {
        plan,
        history: history_ref.clone(),
        violations,
        recoveries: log.recoveries.clone(),
        switch_reboots: log.switch_reboots,
        stranded_prepared,
        shards_moved: log.shards_moved,
        decommissions: log.decommissions,
        torn_tails: log.torn_tails.clone(),
        flight_recorder: cluster.obs().recorder().dump(),
        metrics: cluster.metrics_snapshot(),
        final_now_ns,
        digest,
    }
}

/// Cross-replica structural invariants of the final namespace: every client
/// directory's listing (served by the directory's content owner) must agree
/// with the per-path inode probes (served by each inode's owner), and the
/// directory's entry count must equal its listing length.
fn structural_check(
    cluster: &Cluster,
    history: &History,
    clients: usize,
    finals: &BTreeMap<String, FinalState>,
) -> Vec<String> {
    let mut violations = Vec::new();
    // Rebuild each client's final model to know which paths are pinned.
    let mut pinned: BTreeMap<String, ModelState> = BTreeMap::new();
    for c in 0..clients {
        let mut model = SequentialModel::default();
        for ev in history.of_client(c) {
            model.apply(ev);
        }
        pinned.extend(model.paths);
    }
    for c in 0..clients {
        let dir = client_dir(c);
        let prober = cluster.client(0);
        let dir2 = dir.clone();
        let listing: Result<(u64, Vec<String>), FsError> = cluster.block_on(async move {
            let (attrs, entries) = prober.readdir(&dir2).await?;
            let mut names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
            names.sort();
            Ok((attrs.size, names))
        });
        let (size, names) = match listing {
            Ok(v) => v,
            Err(e) => {
                violations.push(format!("cannot list {dir}: {e}"));
                continue;
            }
        };
        if size != names.len() as u64 {
            violations.push(format!(
                "{dir}: statdir size {size} != {} listed entries",
                names.len()
            ));
        }
        let listed: BTreeSet<&String> = names.iter().collect();
        for (path, st) in pinned.range(format!("{dir}/")..format!("{dir}0")) {
            let Some(name) = path.strip_prefix(&format!("{dir}/")) else {
                continue;
            };
            if name.contains('/') {
                continue;
            }
            let name = name.to_string();
            match st {
                ModelState::Present(_) => {
                    if !listed.contains(&name) {
                        violations.push(format!(
                            "{path} is present (model + probe) but missing from {dir}'s listing"
                        ));
                    }
                }
                ModelState::Absent => {
                    if listed.contains(&name) {
                        violations.push(format!(
                            "{path} is absent (model) but still listed in {dir}"
                        ));
                    }
                }
                ModelState::Unknown => {}
            }
        }
        // Every listed entry must be probeable as the type it claims.
        for name in &names {
            let path = format!("{dir}/{name}");
            if finals.get(&path) == Some(&FinalState::Missing) {
                violations.push(format!(
                    "{path} is listed in {dir} but both inode probes miss it"
                ));
            }
        }
    }
    violations
}

/// Runs the same configuration twice and verifies the digests match
/// (same-seed-same-plan bit-identical replay). Returns the first report and
/// whether the replay matched.
pub fn verify_replay(cfg: ChaosConfig) -> (ChaosReport, bool) {
    let a = run_chaos(cfg);
    let b = run_chaos(cfg);
    let same = a.digest == b.digest;
    (a, same)
}
