//! Server-side change-log storage (§5.3, Fig. 7).
//!
//! Each server keeps one [`ChangeLog`] per *scattered* directory it has
//! deferred updates for. The log is a FIFO of [`ChangeLogEntry`] records; it
//! also tracks the marshalled byte size of its pending entries (for the
//! MTU-based proactive push) and the time of the last append (for the
//! idle-push timer).

use std::collections::VecDeque;

use switchfs_proto::{ChangeLogEntry, DirId, Fingerprint, MetaKey, OpId};
use switchfs_simnet::{FxHashMap, FxHashSet, SimTime};

/// The change-log of one directory on one server.
#[derive(Debug, Clone)]
pub struct ChangeLog {
    /// Key of the directory these entries update.
    pub dir_key: MetaKey,
    /// Fingerprint of the directory.
    pub fp: Fingerprint,
    entries: VecDeque<ChangeLogEntry>,
    pending_bytes: usize,
    last_append: SimTime,
}

impl ChangeLog {
    /// Creates an empty change-log for a directory.
    pub fn new(dir_key: MetaKey, fp: Fingerprint, now: SimTime) -> Self {
        ChangeLog {
            dir_key,
            fp,
            entries: VecDeque::new(),
            pending_bytes: 0,
            last_append: now,
        }
    }

    /// Appends an entry (FIFO order preserves same-name commit order).
    pub fn append(&mut self, entry: ChangeLogEntry, now: SimTime) {
        self.pending_bytes += entry.wire_size();
        self.entries.push_back(entry);
        self.last_append = now;
    }

    /// All pending entries in FIFO order.
    pub fn entries(&self) -> impl Iterator<Item = &ChangeLogEntry> {
        self.entries.iter()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entry is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marshalled size of the pending entries in bytes.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Virtual time of the most recent append.
    pub fn last_append(&self) -> SimTime {
        self.last_append
    }

    /// Takes a snapshot of the pending entries (e.g. to transmit during an
    /// aggregation) without removing them; removal happens when the
    /// aggregation acknowledgment arrives.
    pub fn snapshot(&self) -> Vec<ChangeLogEntry> {
        self.entries.iter().cloned().collect()
    }

    /// Removes the entries whose ids appear in `applied` (after an
    /// aggregation ack or a push ack) and returns how many were removed.
    pub fn discard_applied(&mut self, applied: &FxHashSet<OpId>) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !applied.contains(&e.entry_id));
        self.pending_bytes = self.entries.iter().map(|e| e.wire_size()).sum();
        before - self.entries.len()
    }

    /// Removes one entry by id (used when an overflowed insert fell back to a
    /// synchronous update that already applied the entry).
    pub fn discard_one(&mut self, id: OpId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.entry_id != id);
        self.pending_bytes = self.entries.iter().map(|e| e.wire_size()).sum();
        before != self.entries.len()
    }
}

/// All change-logs of one server, indexed by directory id with a secondary
/// index by fingerprint (aggregations address a whole fingerprint group).
#[derive(Debug, Clone, Default)]
pub struct ChangeLogStore {
    logs: FxHashMap<DirId, ChangeLog>,
    // The per-group sets are iterated (snapshots, aggregation fan-out), so
    // they use the deterministic hasher: iteration order must not vary
    // across processes, or same-seed runs stop being reproducible.
    by_fp: FxHashMap<u64, switchfs_simnet::FxHashSet<DirId>>,
}

impl ChangeLogStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry to the directory's change-log, creating the log on
    /// first use.
    pub fn append(
        &mut self,
        dir_id: DirId,
        dir_key: &MetaKey,
        fp: Fingerprint,
        entry: ChangeLogEntry,
        now: SimTime,
    ) {
        let log = self
            .logs
            .entry(dir_id)
            .or_insert_with(|| ChangeLog::new(dir_key.clone(), fp, now));
        log.append(entry, now);
        self.by_fp.entry(fp.raw()).or_default().insert(dir_id);
    }

    /// The change-log of a directory, if any.
    pub fn get(&self, dir: &DirId) -> Option<&ChangeLog> {
        self.logs.get(dir)
    }

    /// Mutable access to the change-log of a directory, if any.
    pub fn get_mut(&mut self, dir: &DirId) -> Option<&mut ChangeLog> {
        self.logs.get_mut(dir)
    }

    /// Directory ids that currently have a change-log in the given
    /// fingerprint group.
    pub fn dirs_in_group(&self, fp: Fingerprint) -> Vec<DirId> {
        self.by_fp
            .get(&fp.raw())
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Snapshot of every pending entry in a fingerprint group, across all of
    /// the group's directories, in per-directory FIFO order.
    pub fn snapshot_group(&self, fp: Fingerprint) -> Vec<ChangeLogEntry> {
        let mut out = Vec::new();
        for dir in self.dirs_in_group(fp) {
            if let Some(log) = self.logs.get(&dir) {
                out.extend(log.snapshot());
            }
        }
        out
    }

    /// Removes applied entries from every log in the group and drops logs
    /// that became empty. Returns the number of removed entries.
    pub fn discard_applied_in_group(
        &mut self,
        fp: Fingerprint,
        applied: &FxHashSet<OpId>,
    ) -> usize {
        let mut removed = 0;
        let dirs = self.dirs_in_group(fp);
        for dir in dirs {
            if let Some(log) = self.logs.get_mut(&dir) {
                removed += log.discard_applied(applied);
                if log.is_empty() {
                    self.logs.remove(&dir);
                    if let Some(set) = self.by_fp.get_mut(&fp.raw()) {
                        set.remove(&dir);
                        if set.is_empty() {
                            self.by_fp.remove(&fp.raw());
                        }
                    }
                }
            }
        }
        removed
    }

    /// Every directory that currently has pending entries.
    pub fn dirty_dirs(&self) -> Vec<(DirId, Fingerprint)> {
        self.logs.iter().map(|(d, l)| (*d, l.fp)).collect()
    }

    /// Total number of pending entries across all logs.
    pub fn total_pending(&self) -> usize {
        self.logs.values().map(|l| l.len()).sum()
    }

    /// True when no directory has pending entries.
    pub fn is_empty(&self) -> bool {
        self.logs.is_empty()
    }

    /// Drops one directory's log entirely (its pending entries migrated to
    /// another server with their shard). Returns the dropped entry count.
    pub fn remove(&mut self, dir: &DirId) -> usize {
        let Some(log) = self.logs.remove(dir) else {
            return 0;
        };
        if let Some(set) = self.by_fp.get_mut(&log.fp.raw()) {
            set.remove(dir);
            if set.is_empty() {
                self.by_fp.remove(&log.fp.raw());
            }
        }
        log.len()
    }

    /// Drops every log (volatile state lost in a crash).
    pub fn clear(&mut self) {
        self.logs.clear();
        self.by_fp.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchfs_proto::{ChangeOp, ClientId, FileType, ServerId};

    fn entry(name: &str, seq: u64) -> ChangeLogEntry {
        ChangeLogEntry {
            entry_id: OpId {
                client: ClientId(1),
                seq,
            },
            dir: DirId::ROOT,
            name: name.to_string(),
            op: ChangeOp::Insert {
                file_type: FileType::File,
                mode: 0o644,
            },
            timestamp: seq,
            size_delta: 1,
        }
    }

    fn dir(i: u64) -> DirId {
        DirId::generate(ServerId(0), i)
    }

    #[test]
    fn append_tracks_bytes_and_time() {
        let mut log = ChangeLog::new(
            MetaKey::new(DirId::ROOT, "d"),
            Fingerprint::from_raw(1),
            SimTime::ZERO,
        );
        log.append(entry("a", 1), SimTime::from_micros(5));
        log.append(entry("bb", 2), SimTime::from_micros(9));
        assert_eq!(log.len(), 2);
        assert_eq!(
            log.pending_bytes(),
            entry("a", 1).wire_size() + entry("bb", 2).wire_size()
        );
        assert_eq!(log.last_append(), SimTime::from_micros(9));
    }

    #[test]
    fn discard_applied_removes_only_matching_entries() {
        let mut log = ChangeLog::new(
            MetaKey::new(DirId::ROOT, "d"),
            Fingerprint::from_raw(1),
            SimTime::ZERO,
        );
        for i in 0..5 {
            log.append(entry(&format!("f{i}"), i), SimTime::ZERO);
        }
        let applied: FxHashSet<OpId> = [1u64, 3]
            .iter()
            .map(|&s| OpId {
                client: ClientId(1),
                seq: s,
            })
            .collect();
        assert_eq!(log.discard_applied(&applied), 2);
        assert_eq!(log.len(), 3);
        assert!(log.discard_one(OpId {
            client: ClientId(1),
            seq: 0
        }));
        assert!(!log.discard_one(OpId {
            client: ClientId(1),
            seq: 0
        }));
    }

    #[test]
    fn store_groups_by_fingerprint() {
        let mut store = ChangeLogStore::new();
        let fp_a = Fingerprint::from_raw(10);
        let fp_b = Fingerprint::from_raw(20);
        let (d1, d2, d3) = (dir(1), dir(2), dir(3));
        store.append(
            d1,
            &MetaKey::new(DirId::ROOT, "a"),
            fp_a,
            entry("x", 1),
            SimTime::ZERO,
        );
        store.append(
            d2,
            &MetaKey::new(DirId::ROOT, "b"),
            fp_a,
            entry("y", 2),
            SimTime::ZERO,
        );
        store.append(
            d3,
            &MetaKey::new(DirId::ROOT, "c"),
            fp_b,
            entry("z", 3),
            SimTime::ZERO,
        );
        assert_eq!(store.total_pending(), 3);
        let mut group_a = store.dirs_in_group(fp_a);
        group_a.sort();
        let mut expect = vec![d1, d2];
        expect.sort();
        assert_eq!(group_a, expect);
        assert_eq!(store.snapshot_group(fp_a).len(), 2);
        assert_eq!(store.snapshot_group(fp_b).len(), 1);
    }

    #[test]
    fn discard_in_group_drops_empty_logs() {
        let mut store = ChangeLogStore::new();
        let fp = Fingerprint::from_raw(10);
        let d1 = dir(1);
        store.append(
            d1,
            &MetaKey::new(DirId::ROOT, "a"),
            fp,
            entry("x", 1),
            SimTime::ZERO,
        );
        let applied: FxHashSet<OpId> = [OpId {
            client: ClientId(1),
            seq: 1,
        }]
        .into_iter()
        .collect();
        assert_eq!(store.discard_applied_in_group(fp, &applied), 1);
        assert!(store.is_empty());
        assert!(store.dirs_in_group(fp).is_empty());
    }

    #[test]
    fn clear_drops_everything() {
        let mut store = ChangeLogStore::new();
        store.append(
            dir(1),
            &MetaKey::new(DirId::ROOT, "a"),
            Fingerprint::from_raw(1),
            entry("x", 1),
            SimTime::ZERO,
        );
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.dirty_dirs().len(), 0);
    }
}
