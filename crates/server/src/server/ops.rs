//! Double-inode operations: `create`, `delete`, `mkdir`, `rmdir` (§5.2.1,
//! §5.2.3) and the asynchronous-commit machinery they share.
//!
//! The *local half* of a double-inode operation runs entirely on this server:
//! it updates the target inode, persists the deferred parent-directory update
//! in the change-log and in the WAL, then marks the parent directory
//! *scattered*. Depending on the tracking mode the scatter marking is an
//! in-network dirty-set insert (the switch then multicasts the completion to
//! the client and mirrors it back so this server can release its locks), an
//! RPC to a dedicated coordinator, or an RPC to the directory's owner server.

use switchfs_proto::message::{
    Body, ClientRequest, ClientResponse, CoordMsg, MetaOp, ParentRef, ServerMsg, SyncFallback,
};
use switchfs_proto::{
    ChangeLogEntry, ChangeOp, DirtyRet, DirtySetHeader, DirtySetOp, FileType, Fingerprint, FsError,
    InodeAttrs, OpId, OpResult,
};
use switchfs_simnet::{timeout, NodeId};

use crate::config::TrackingMode;
use crate::server::{CommitSignal, Server};
use crate::wal::KvEffect;

/// How an asynchronous commit finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CommitOutcome {
    /// The switch delivered the response to the client by multicast.
    DeliveredBySwitch,
    /// The response still has to be sent by this server.
    NeedDirectReply,
    /// The dirty-set insert overflowed; the parent owner applied the update
    /// synchronously and already replied to the client.
    FallbackHandled,
}

impl Server {
    /// Handles `create`, `delete` and `mkdir`. Returns `Some(result)` when
    /// this server must reply directly, `None` when the reply has already
    /// been delivered (through the switch multicast or the fallback path).
    pub(crate) async fn handle_double_inode(
        &self,
        client_node: NodeId,
        req: &ClientRequest,
    ) -> Option<OpResult> {
        let costs = self.cfg.costs;
        self.cpu.run(costs.request_overhead()).await;
        let key = req.op.primary_key().clone();
        let Some(parent) = req.parent.as_ref() else {
            return Some(OpResult::Err(FsError::NotFound));
        };
        // Locking and checking (§5.2.1): parent change-log write lock, then
        // target inode write lock.
        let cl_lock = self.locks.changelog(&parent.id);
        let _cl_guard = cl_lock.write().await;
        let inode_lock = self.locks.inode(&key);
        let _inode_guard = inode_lock.write().await;
        self.cpu.run(costs.lock_op * 2 + costs.kv_get).await;
        if self.is_stale(&req.ancestors) {
            return Some(OpResult::Err(FsError::StaleCache));
        }
        // Borrowed existence/type check: the attributes themselves are only
        // needed on paths that build new ones.
        let existing_type = self
            .inner
            .borrow_mut()
            .inodes
            .get_ref(&key)
            .map(|a| a.file_type);
        let now = self.now_ns();

        let (effects, entry, result) = match &req.op {
            MetaOp::Create { perm, .. } => {
                if existing_type.is_some() {
                    return Some(OpResult::Err(FsError::AlreadyExists));
                }
                let id = self.fresh_dir_id();
                let attrs = InodeAttrs::new_file(id, now, *perm);
                let entry = self.make_entry(
                    req.op_id,
                    parent.id,
                    &key.name,
                    ChangeOp::Insert {
                        file_type: FileType::File,
                        mode: perm.mode,
                    },
                    1,
                );
                (
                    vec![KvEffect::PutInode(key.clone(), attrs.clone())],
                    entry,
                    OpResult::Attrs(attrs),
                )
            }
            MetaOp::Delete { .. } => {
                let Some(file_type) = existing_type else {
                    // Not stored here. Under per-file-hash placement a
                    // directory's inode lives with its fingerprint group on a
                    // different server, so distinguish `EISDIR` from `ENOENT`
                    // with a cross-server type probe (the grouping placements
                    // colocate the directory inode and never get here).
                    if self.probe_is_directory(&key).await {
                        return Some(OpResult::Err(FsError::IsADirectory));
                    }
                    return Some(OpResult::Err(FsError::NotFound));
                };
                if file_type == FileType::Directory {
                    return Some(OpResult::Err(FsError::IsADirectory));
                }
                let entry = self.make_entry(req.op_id, parent.id, &key.name, ChangeOp::Remove, -1);
                (
                    vec![KvEffect::DeleteInode(key.clone())],
                    entry,
                    OpResult::Done,
                )
            }
            MetaOp::Mkdir { perm, .. } => {
                if existing_type.is_some() {
                    return Some(OpResult::Err(FsError::AlreadyExists));
                }
                let id = self.fresh_dir_id();
                let attrs = InodeAttrs::new_dir(id, now, *perm);
                let entry = self.make_entry(
                    req.op_id,
                    parent.id,
                    &key.name,
                    ChangeOp::Insert {
                        file_type: FileType::Directory,
                        mode: perm.mode,
                    },
                    1,
                );
                (
                    vec![
                        KvEffect::PutInode(key.clone(), attrs.clone()),
                        KvEffect::IndexDir(id, key.clone()),
                    ],
                    entry,
                    OpResult::Attrs(attrs),
                )
            }
            _ => return Some(OpResult::Err(FsError::NotFound)),
        };

        if self.cfg.update_mode == crate::config::UpdateMode::Synchronous {
            // Baseline path: commit the local half, then update the parent
            // directory in place (possibly across servers) before replying.
            self.apply_and_log(Some(req.op_id), effects, None, Vec::new())
                .await;
            if let MetaOp::Mkdir { .. } = &req.op {
                if let OpResult::Attrs(attrs) = &result {
                    self.sync_init_dir_content(&key, attrs.clone()).await;
                }
            }
            if let Err(e) = self.sync_parent_update(parent, &entry).await {
                return Some(OpResult::Err(e));
            }
            return Some(result);
        }

        // Commit: WAL append, then execute the local half (§5.2.1 step 4–5).
        self.apply_and_log(
            Some(req.op_id),
            effects,
            Some((parent.id, parent.key.clone(), entry.clone())),
            Vec::new(),
        )
        .await;
        self.cpu.run(costs.changelog_append).await;
        {
            let now_t = self.handle.now();
            let mut inner = self.inner.borrow_mut();
            inner
                .changelogs
                .append(parent.id, &parent.key, parent.fp, entry.clone(), now_t);
        }

        // Dirty-set update, reply and unlocking (§5.2.1 step 6–7).
        let response = self.make_response(req.op_id, result);
        self.persist_completion(&req.op, &response);
        match self
            .async_commit(client_node, response.clone(), parent, &entry)
            .await
        {
            CommitOutcome::DeliveredBySwitch | CommitOutcome::FallbackHandled => None,
            CommitOutcome::NeedDirectReply => {
                self.send_plain(client_node, Body::Response(response));
                None
            }
        }
    }

    /// Asks `owner` what type of inode (if any) it stores under `key`. The
    /// local store answers without a round-trip. Returns `None` on absence
    /// or timeout (conservative: callers treat "unknown" as "absent", which
    /// a retry can correct).
    pub(crate) async fn probe_inode_type(
        &self,
        owner: switchfs_proto::ServerId,
        key: &switchfs_proto::MetaKey,
    ) -> Option<FileType> {
        if owner == self.cfg.id {
            return self
                .inner
                .borrow_mut()
                .inodes
                .get_ref(key)
                .map(|a| a.file_type);
        }
        let token = self.next_token();
        let body = Body::Server(ServerMsg::TypeProbe {
            req_id: token,
            key: key.clone(),
        });
        match self
            .send_with_ack(self.cfg.node_of(owner), token, body)
            .await
        {
            Some(crate::server::TokenReply::Type(t)) => t,
            _ => None,
        }
    }

    /// Asks the fingerprint-group owner of `key` whether it stores a
    /// directory inode under that key. Only meaningful under per-file-hash
    /// placement, where file and directory inodes of the same key live on
    /// different servers; the grouping placements colocate them and answer
    /// locally.
    pub(crate) async fn probe_is_directory(&self, key: &switchfs_proto::MetaKey) -> bool {
        if !matches!(
            self.cfg.placement.policy(),
            switchfs_proto::PartitionPolicy::PerFileHash
        ) {
            return false;
        }
        let dir_owner = self
            .cfg
            .placement
            .dir_owner_by_fp(Fingerprint::of_dir(&key.pid, &key.name));
        self.probe_inode_type(dir_owner, key).await == Some(FileType::Directory)
    }

    /// Baseline-mode parent update: apply the directory update at the
    /// parent's owner, locally when colocated (P/C grouping) or through a
    /// synchronous RPC (P/C separation, and cross-server `mkdir`/`rmdir`).
    ///
    /// Rides through live shard migration: a frozen target rejects with
    /// `Unavailable` and a flipped one with `NotFound` (the old owner
    /// deleted its copy) — both are re-resolved against the current map and
    /// retried here, because the operation's local half is already applied
    /// and surfacing a retryable error to the client would let its retry
    /// observe the half-done operation (`AlreadyExists` on its own create).
    pub(crate) async fn sync_parent_update(
        &self,
        parent: &ParentRef,
        entry: &ChangeLogEntry,
    ) -> Result<(), FsError> {
        let mut attempt = 0u32;
        loop {
            let owner = self.sync_dir_owner(parent);
            match self.sync_parent_update_once(parent, entry).await {
                Err(FsError::NotFound) if attempt < 64 && self.sync_dir_owner(parent) != owner => {
                    // The owner changed under us (the old one already
                    // deleted its migrated copy): re-route immediately. An
                    // unchanged owner's NotFound is genuine (the parent was
                    // removed concurrently) and fails through unchanged.
                    attempt += 1;
                }
                Err(FsError::Unavailable) if attempt < 64 => {
                    // Frozen by an outbound migration: wait out the freeze
                    // window (the flip re-routes the retry via the shared
                    // map) instead of surfacing a retryable error.
                    attempt += 1;
                    if self.sync_dir_owner(parent) == owner {
                        self.handle.sleep(self.cfg.costs.request_timeout).await;
                    }
                }
                other => return other,
            }
        }
    }

    async fn sync_parent_update_once(
        &self,
        parent: &ParentRef,
        entry: &ChangeLogEntry,
    ) -> Result<(), FsError> {
        let costs = self.cfg.costs;
        let owner = self.sync_dir_owner(parent);
        if owner == self.cfg.id {
            // fp-group before inode, like every other dir-update applier:
            // harmless in the pure-sync baselines (no aggregations run) but
            // keeps the locking discipline uniform.
            let fpg = self.locks.fp_group(parent.fp);
            let _fpg_g = fpg.write().await;
            let lock = self.locks.inode(&parent.key);
            let _g = lock.write().await;
            self.cpu
                .run(costs.lock_op + costs.kv_get + costs.kv_put + costs.wal_append)
                .await;
            let effects = self.entry_effects(&parent.key, entry);
            self.apply_and_log(None, effects, None, vec![entry.entry_id])
                .await;
            // Applier and issuer are the same server and the operation's
            // own duplicate suppression covers re-execution: retire the id
            // into the bounded FIFO immediately.
            let me = self.cfg.id;
            let now = self.handle.now();
            self.inner
                .borrow_mut()
                .queue_discard_confirm(me, me, now, [entry.entry_id]);
            Ok(())
        } else {
            let token = self.next_token();
            let discard_confirm = self.inner.borrow_mut().take_discard_confirms(owner);
            let body = Body::Server(ServerMsg::RemoteDirUpdate {
                req_id: token,
                dir_key: parent.key.clone(),
                entry: entry.clone(),
                discard_confirm,
            });
            match self
                .send_with_ack(self.cfg.node_of(owner), token, body)
                .await
            {
                Some(crate::server::TokenReply::Ack) => {
                    // The update is applied and this server will never
                    // retransmit it: confirm so the owner can retire the id.
                    let me = self.cfg.id;
                    let now = self.handle.now();
                    self.inner
                        .borrow_mut()
                        .queue_discard_confirm(me, owner, now, [entry.entry_id]);
                    Ok(())
                }
                Some(crate::server::TokenReply::Failed(e)) => Err(e),
                _ => Err(FsError::TimedOut),
            }
        }
    }

    /// The server owning a directory's updatable metadata under the
    /// synchronous (baseline) mode.
    pub(crate) fn sync_dir_owner(&self, parent: &ParentRef) -> switchfs_proto::ServerId {
        match self.cfg.placement.policy() {
            switchfs_proto::PartitionPolicy::PerDirectoryHash
            | switchfs_proto::PartitionPolicy::Subtree => {
                self.cfg.placement.dir_owner_by_id(&parent.id)
            }
            switchfs_proto::PartitionPolicy::PerFileHash => {
                self.cfg.placement.dir_owner_by_fp(parent.fp)
            }
        }
    }

    /// Baseline `mkdir` under P/C grouping: register the new directory's
    /// content replica on the server that will hold its children.
    async fn sync_init_dir_content(&self, key: &switchfs_proto::MetaKey, attrs: InodeAttrs) {
        if !matches!(
            self.cfg.placement.policy(),
            switchfs_proto::PartitionPolicy::PerDirectoryHash
                | switchfs_proto::PartitionPolicy::Subtree
        ) {
            return;
        }
        let content_owner = self.cfg.placement.dir_owner_by_id(&attrs.id);
        if content_owner == self.cfg.id {
            self.apply_and_log(
                None,
                vec![
                    KvEffect::PutInode(key.clone(), attrs.clone()),
                    KvEffect::IndexDir(attrs.id, key.clone()),
                ],
                None,
                Vec::new(),
            )
            .await;
            return;
        }
        let token = self.next_token();
        let body = Body::Server(ServerMsg::InitDirContent {
            req_id: token,
            dir_id: attrs.id,
            key: key.clone(),
            attrs,
        });
        let _ = self
            .send_with_ack(self.cfg.node_of(content_owner), token, body)
            .await;
    }

    /// Handles `rmdir` (§5.2.3): aggregate the target directory, check
    /// emptiness, then commit like the other double-inode operations.
    pub(crate) async fn handle_rmdir(
        &self,
        client_node: NodeId,
        req: &ClientRequest,
    ) -> Option<OpResult> {
        let costs = self.cfg.costs;
        self.cpu.run(costs.request_overhead()).await;
        let key = req.op.primary_key().clone();
        let Some(parent) = req.parent.as_ref() else {
            // Removing the root directory is not allowed.
            return Some(OpResult::Err(FsError::NotFound));
        };
        let target_fp = Fingerprint::of_dir(&key.pid, &key.name);
        // Lock order: parent change-log → target fingerprint group → target
        // inode.
        let cl_lock = self.locks.changelog(&parent.id);
        let _cl_guard = cl_lock.write().await;
        let fpg_lock = self.locks.fp_group(target_fp);
        let _fpg_guard = fpg_lock.write().await;
        let inode_lock = self.locks.inode(&key);
        let _inode_guard = inode_lock.write().await;
        self.cpu.run(costs.lock_op * 3 + costs.kv_get).await;
        if self.is_stale(&req.ancestors) {
            return Some(OpResult::Err(FsError::StaleCache));
        }
        let Some(attrs) = self.inner.borrow_mut().inodes.get(&key) else {
            return Some(OpResult::Err(FsError::NotFound));
        };
        if !attrs.is_dir() {
            return Some(OpResult::Err(FsError::NotADirectory));
        }
        let dir_id = attrs.id;

        if self.cfg.update_mode == crate::config::UpdateMode::Synchronous {
            return Some(self.sync_rmdir(req, &key, dir_id, parent).await);
        }

        // Collect the latest updates to the directory and have every other
        // server append it to its invalidation list (§5.2.3 steps 4–7).
        self.aggregate_group(target_fp, Some((dir_id, key.clone())))
            .await;

        // Emptiness check on the aggregated state.
        let entry_count = {
            let mut inner = self.inner.borrow_mut();
            inner.entries.get_ref(&dir_id).map_or(0, |c| c.len())
        };
        self.cpu.run(costs.kv_get).await;
        if entry_count > 0 {
            // The aggregation multicast already announced the removal to the
            // other servers' invalidation lists; retract it, since the
            // directory is staying (otherwise later operations under it would
            // be rejected as stale forever).
            self.multicast_plain(
                &self.cfg.other_servers(),
                Body::Server(ServerMsg::InvalidationRevoke { dir_id }),
            );
            return Some(OpResult::Err(FsError::NotEmpty));
        }

        // Commit the removal.
        let entry = self.make_entry(req.op_id, parent.id, &key.name, ChangeOp::Remove, -1);
        self.apply_and_log(
            Some(req.op_id),
            vec![
                KvEffect::DeleteInode(key.clone()),
                KvEffect::UnindexDir(dir_id),
                KvEffect::Invalidate(dir_id, key.clone()),
            ],
            Some((parent.id, parent.key.clone(), entry.clone())),
            Vec::new(),
        )
        .await;
        self.cpu.run(costs.changelog_append).await;
        {
            let now_t = self.handle.now();
            let mut inner = self.inner.borrow_mut();
            inner
                .changelogs
                .append(parent.id, &parent.key, parent.fp, entry.clone(), now_t);
        }
        let response = self.make_response(req.op_id, OpResult::Done);
        self.persist_completion(&req.op, &response);
        match self
            .async_commit(client_node, response.clone(), parent, &entry)
            .await
        {
            CommitOutcome::DeliveredBySwitch | CommitOutcome::FallbackHandled => None,
            CommitOutcome::NeedDirectReply => {
                self.send_plain(client_node, Body::Response(response));
                None
            }
        }
    }

    /// Baseline-mode `rmdir`: purely synchronous, no aggregation.
    async fn sync_rmdir(
        &self,
        req: &ClientRequest,
        key: &switchfs_proto::MetaKey,
        dir_id: switchfs_proto::DirId,
        parent: &ParentRef,
    ) -> OpResult {
        let costs = self.cfg.costs;
        let entry_count = {
            let mut inner = self.inner.borrow_mut();
            inner.entries.get_ref(&dir_id).map_or(0, |c| c.len())
        };
        self.cpu.run(costs.kv_get).await;
        if entry_count > 0 {
            return OpResult::Err(FsError::NotEmpty);
        }
        self.apply_and_log(
            Some(req.op_id),
            vec![
                KvEffect::DeleteInode(key.clone()),
                KvEffect::UnindexDir(dir_id),
                KvEffect::Invalidate(dir_id, key.clone()),
            ],
            None,
            Vec::new(),
        )
        .await;
        self.broadcast_invalidation(dir_id, key.clone());
        // Remove the access replica when the directory's children live on a
        // different server than its parent's (P/C grouping).
        if matches!(
            self.cfg.placement.policy(),
            switchfs_proto::PartitionPolicy::PerDirectoryHash
                | switchfs_proto::PartitionPolicy::Subtree
        ) {
            let access_owner = self.cfg.placement.file_owner(key);
            if access_owner != self.cfg.id {
                let token = self.next_token();
                let body = Body::Server(ServerMsg::RemoteTxnOp {
                    req_id: token,
                    op: switchfs_proto::message::TxnOp::DeleteInode { key: key.clone() },
                });
                let _ = self
                    .send_with_ack(self.cfg.node_of(access_owner), token, body)
                    .await;
            }
        }
        let entry = self.make_entry(req.op_id, parent.id, &key.name, ChangeOp::Remove, -1);
        match self.sync_parent_update(parent, &entry).await {
            Ok(()) => OpResult::Done,
            Err(e) => OpResult::Err(e),
        }
    }

    /// Marks the parent directory scattered and arranges for the response to
    /// reach the client, according to the tracking mode.
    pub(crate) async fn async_commit(
        &self,
        client_node: NodeId,
        response: ClientResponse,
        parent: &ParentRef,
        entry: &ChangeLogEntry,
    ) -> CommitOutcome {
        match self.cfg.tracking {
            TrackingMode::InNetwork => {
                self.async_commit_in_network(client_node, response, parent, entry)
                    .await
            }
            TrackingMode::DedicatedServer(coord) => {
                self.async_commit_dedicated(coord, parent, entry).await
            }
            TrackingMode::OwnerServer => self.async_commit_owner(parent).await,
        }
    }

    async fn async_commit_in_network(
        &self,
        client_node: NodeId,
        response: ClientResponse,
        parent: &ParentRef,
        entry: &ChangeLogEntry,
    ) -> CommitOutcome {
        let parent_owner = self.cfg.placement.dir_owner_by_fp(parent.fp);
        let parent_owner_node = self.cfg.node_of(parent_owner);
        let op_token = self.next_token();
        let body = Body::Server(ServerMsg::AsyncCommit {
            response,
            origin: self.cfg.id,
            op_token,
            fallback: SyncFallback {
                dir_key: parent.key.clone(),
                entry: entry.clone(),
                client_node: client_node.0,
            },
        });
        let hdr = DirtySetHeader::insert(parent.fp, parent_owner_node.0);
        for attempt in 0..=self.cfg.costs.max_retries {
            if attempt > 0 {
                self.inner.borrow_mut().stats.retransmissions += 1;
            }
            let (tx, rx) = switchfs_simnet::sync::oneshot::channel();
            self.inner.borrow_mut().pending_commits.insert(op_token, tx);
            // The packet is addressed to the client; the switch multicasts a
            // mirror copy back to this server when the insert succeeds.
            self.send_dirty(client_node, hdr, body.clone());
            match timeout(&self.handle, self.cfg.costs.request_timeout, rx.recv()).await {
                Some(Ok(CommitSignal::Mirrored)) => {
                    return CommitOutcome::DeliveredBySwitch;
                }
                Some(Ok(CommitSignal::FallbackDone(applier))) => {
                    // The overflow fallback applied the entry synchronously:
                    // drop it from the local change-log and mark the WAL
                    // record applied. The discard is durable, so confirm it
                    // to the server that actually applied it (the
                    // notification's sender — not the current map owner,
                    // which can differ across a shard flip).
                    self.discard_local_entry(parent, entry.entry_id);
                    if let Some(applier) = applier {
                        let me = self.cfg.id;
                        let now = self.handle.now();
                        self.inner.borrow_mut().queue_discard_confirm(
                            me,
                            applier,
                            now,
                            [entry.entry_id],
                        );
                    }
                    self.inner.borrow_mut().stats.fallback_syncs += 1;
                    return CommitOutcome::FallbackHandled;
                }
                _ => {
                    self.inner.borrow_mut().pending_commits.remove(&op_token);
                }
            }
        }
        CommitOutcome::NeedDirectReply
    }

    async fn async_commit_dedicated(
        &self,
        coord: NodeId,
        parent: &ParentRef,
        entry: &ChangeLogEntry,
    ) -> CommitOutcome {
        let token = self.next_token();
        let rx = self.register_token(token);
        self.send_plain(
            coord,
            Body::Coord(CoordMsg::Request {
                token,
                op: DirtySetOp::Insert,
                fp: parent.fp,
                seq: 0,
            }),
        );
        let reply = timeout(&self.handle, self.cfg.costs.request_timeout, rx.recv()).await;
        match reply {
            Some(Ok(crate::server::TokenReply::Dirty(DirtyRet::Overflowed))) => {
                // Fall back to a synchronous remote update, as the in-network
                // overflow path would.
                self.sync_fallback_update(parent, entry).await;
                CommitOutcome::NeedDirectReply
            }
            _ => CommitOutcome::NeedDirectReply,
        }
    }

    async fn async_commit_owner(&self, parent: &ParentRef) -> CommitOutcome {
        let owner = self.cfg.placement.dir_owner_by_fp(parent.fp);
        if owner == self.cfg.id {
            self.inner.borrow_mut().local_dirty.insert(parent.fp);
            return CommitOutcome::NeedDirectReply;
        }
        let token = self.next_token();
        let body = Body::Server(ServerMsg::MarkDirty {
            req_id: token,
            fp: parent.fp,
        });
        let _ = self
            .send_with_ack(self.cfg.node_of(owner), token, body)
            .await;
        CommitOutcome::NeedDirectReply
    }

    /// Applies a deferred update synchronously at the parent owner when the
    /// dirty-set insert cannot be used (dedicated-coordinator overflow).
    async fn sync_fallback_update(&self, parent: &ParentRef, entry: &ChangeLogEntry) {
        let owner = self.cfg.placement.dir_owner_by_fp(parent.fp);
        let token = self.next_token();
        let discard_confirm = self.inner.borrow_mut().take_discard_confirms(owner);
        let body = Body::Server(ServerMsg::RemoteDirUpdate {
            req_id: token,
            dir_key: parent.key.clone(),
            entry: entry.clone(),
            discard_confirm,
        });
        let acked = matches!(
            self.send_with_ack(self.cfg.node_of(owner), token, body)
                .await,
            Some(crate::server::TokenReply::Ack)
        );
        self.discard_local_entry(parent, entry.entry_id);
        if acked {
            let me = self.cfg.id;
            let now = self.handle.now();
            self.inner
                .borrow_mut()
                .queue_discard_confirm(me, owner, now, [entry.entry_id]);
        }
        self.inner.borrow_mut().stats.fallback_syncs += 1;
    }

    /// Removes one change-log entry that was applied out-of-band and marks
    /// its WAL record applied.
    pub(crate) fn discard_local_entry(&self, parent: &ParentRef, entry_id: OpId) {
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(log) = inner.changelogs.get_mut(&parent.id) {
                log.discard_one(entry_id);
            }
        }
        self.durable.borrow_mut().wal.mark_applied_where(|rec| {
            rec.pending_entry
                .as_ref()
                .map(|(_, _, e)| e.entry_id == entry_id)
                .unwrap_or(false)
        });
    }

    /// Handles an `AsyncCommit` packet. Depending on where it arrives it is
    /// either the mirror copy (back at the origin server) or the overflow
    /// fallback (at the parent directory's owner).
    pub(crate) async fn handle_async_commit_packet(
        &self,
        _src: NodeId,
        response: ClientResponse,
        origin: switchfs_proto::ServerId,
        op_token: u64,
        fallback: SyncFallback,
        dirty_ret: Option<DirtyRet>,
    ) {
        if origin == self.cfg.id && dirty_ret == Some(DirtyRet::Inserted) {
            // Mirror copy: release the waiting handler's locks.
            let tx = self.inner.borrow_mut().pending_commits.remove(&op_token);
            if let Some(tx) = tx {
                let _ = tx.send(CommitSignal::Mirrored);
            }
            return;
        }
        if dirty_ret == Some(DirtyRet::Overflowed) {
            // Address-rewriter fallback: apply the deferred update
            // synchronously, reply to the client, and notify the origin.
            let fb_fp =
                switchfs_proto::Fingerprint::of_dir(&fallback.dir_key.pid, &fallback.dir_key.name);
            if self.dir_update_frozen(fb_fp, &fallback.entry.dir)
                || !self.owns_dir_updates(fb_fp, &fallback.entry.dir)
            {
                // The parent directory's shard is frozen by an outbound
                // migration (or already flipped away): drop the fallback;
                // the origin's commit wait times out and the operation
                // retries against the current owner.
                return;
            }
            let costs = self.cfg.costs;
            let already = self
                .inner
                .borrow()
                .entry_already_applied(&fallback.entry.entry_id);
            if !already {
                // Serialize against the aggregation/push appliers, which
                // hold the fingerprint-group write lock but not the inode
                // lock: two appliers interleaving their read-modify-write
                // of the directory inode across the WAL await would each
                // compute the new size from the same snapshot and lose one
                // delta (surfaces as a statdir-size ≠ listing divergence;
                // disk-latency spikes widen the window). Lock order matches
                // rmdir: fp-group before inode.
                let fpg = self.locks.fp_group(fb_fp);
                let _fpg_g = fpg.write().await;
                let lock = self.locks.inode(&fallback.dir_key);
                let _g = lock.write().await;
                self.cpu
                    .run(costs.lock_op + costs.kv_get + costs.kv_put + costs.wal_append)
                    .await;
                let effects = self.entry_effects(&fallback.dir_key, &fallback.entry);
                self.apply_and_log(None, effects, None, vec![fallback.entry.entry_id])
                    .await;
                self.inner.borrow_mut().stats.remote_updates += 1;
            }
            self.send_plain(NodeId(fallback.client_node), Body::Response(response));
            self.send_plain(
                self.cfg.node_of(origin),
                Body::Server(ServerMsg::FallbackDone {
                    op_token,
                    entry_id: fallback.entry.entry_id,
                }),
            );
        }
    }

    /// Handles the origin-side notification that the overflow fallback
    /// completed.
    pub(crate) fn handle_fallback_done(&self, src: NodeId, op_token: u64, _entry_id: OpId) {
        let applier = self.server_id_of(src);
        let tx = self.inner.borrow_mut().pending_commits.remove(&op_token);
        if let Some(tx) = tx {
            let _ = tx.send(CommitSignal::FallbackDone(applier));
        }
    }

    /// Handles a `MarkDirty` request in owner-server tracking mode.
    pub(crate) async fn handle_mark_dirty(&self, src: NodeId, req_id: u64, fp: Fingerprint) {
        // The extra packet costs CPU on the owner, which is exactly the
        // overhead Fig. 16 quantifies.
        self.cpu.run(self.cfg.costs.software_path).await;
        self.inner.borrow_mut().local_dirty.insert(fp);
        self.send_plain(src, Body::Server(ServerMsg::MarkDirtyAck { req_id }));
    }

    /// Handles a synchronous remote directory update (baseline double-inode
    /// operations and the dedicated-coordinator overflow fallback).
    pub(crate) async fn handle_remote_dir_update(
        &self,
        src: NodeId,
        req_id: u64,
        dir_key: switchfs_proto::MetaKey,
        entry: ChangeLogEntry,
    ) {
        let costs = self.cfg.costs;
        self.cpu.run(costs.software_path).await;
        let upd_fp = switchfs_proto::Fingerprint::of_dir(&dir_key.pid, &dir_key.name);
        if self.dir_update_frozen(upd_fp, &entry.dir) || !self.owns_dir_updates(upd_fp, &entry.dir)
        {
            // The directory's shard is frozen by an outbound migration (or
            // already flipped away): fail the update instead of stranding
            // it at a non-owner. The caller re-resolves the owner against
            // the shared map and retries there.
            self.send_plain(
                src,
                Body::Server(ServerMsg::RemoteDirUpdateAck {
                    req_id,
                    result: Err(FsError::Unavailable),
                }),
            );
            return;
        }
        let already = self.inner.borrow().entry_already_applied(&entry.entry_id);
        let result = if already {
            Ok(())
        } else {
            // Same discipline as the overflow fallback above: exclude the
            // fp-group appliers before touching the directory inode, or a
            // concurrent aggregation apply loses this entry's size delta.
            let fpg = self.locks.fp_group(upd_fp);
            let _fpg_g = fpg.write().await;
            let lock = self.locks.inode(&dir_key);
            let _g = lock.write().await;
            self.cpu
                .run(costs.lock_op + costs.kv_get + costs.kv_put + costs.wal_append)
                .await;
            if self.inner.borrow().inodes.peek(&dir_key).is_none() {
                Err(FsError::NotFound)
            } else {
                let effects = self.entry_effects(&dir_key, &entry);
                self.apply_and_log(None, effects, None, vec![entry.entry_id])
                    .await;
                self.inner.borrow_mut().stats.remote_updates += 1;
                Ok(())
            }
        };
        self.send_plain(
            src,
            Body::Server(ServerMsg::RemoteDirUpdateAck { req_id, result }),
        );
    }
}
