//! Crash recovery (§5.4.2, §A.1).
//!
//! A crashed server loses every volatile structure (key-value store,
//! change-logs, invalidation list); only the WAL and the optional checkpoint
//! survive. Recovery proceeds in four steps:
//!
//! 1. replay the WAL (starting from the checkpoint, if present) to rebuild
//!    the key-value store and the change-log entries not yet marked
//!    "applied";
//! 2. proactively aggregate every directory this server owns, so that any
//!    aggregation it had issued before the crash runs to completion and the
//!    on-switch dirty set again reflects the true directory states;
//! 3. clone the invalidation list from another server;
//! 4. resume serving requests.
//!
//! A switch reboot is handled by the cluster harness: it clears the switch
//! state and calls [`Server::aggregate_all_owned`] on every server, after
//! which every directory is back in *normal* state, consistent with the
//! empty dirty set.

use switchfs_obs::EventKind;
use switchfs_proto::message::{Body, ServerMsg};
use switchfs_proto::{FileType, Fingerprint, TraceId};

use crate::server::rename::PreparedTxn;
use crate::server::Server;
use crate::wal::{CheckpointData, KvEffect, TxnMarker};

/// Summary of one recovery run, reported to the harness (used by the §7.7
/// experiment and asserted by the chaos checker).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records replayed.
    pub wal_records_replayed: usize,
    /// Inodes restored into the key-value store.
    pub inodes_recovered: usize,
    /// Not-yet-applied change-log entries rebuilt.
    pub changelog_entries_recovered: usize,
    /// Directories re-aggregated after the replay.
    pub directories_aggregated: usize,
    /// In-doubt prepared transactions found after the replay (crashed
    /// between prepare and decision).
    pub prepared_txns_recovered: usize,
    /// In-doubt transactions the decision query resolved to commit.
    pub txn_commits_recovered: usize,
    /// In-doubt transactions the decision query resolved to abort.
    pub txn_aborts_recovered: usize,
    /// In-doubt transactions left unresolved (coordinator unreachable); the
    /// background sweep keeps retrying them.
    pub txn_unresolved: usize,
    /// Cached responses rebuilt into the duplicate-suppression cache, so a
    /// retransmission spanning the crash still gets its original result.
    pub completed_ops_recovered: usize,
    /// Interrupted shard migrations whose flip had already happened; the
    /// replayed local copy was dropped in favor of the new owner's.
    pub migrations_resolved: usize,
    /// Records in the crashed log that failed their checksum (torn writes).
    pub wal_torn_records: usize,
    /// Records truncated from the tail before replay: torn ones plus intact
    /// records stranded past a gap a dropped write left.
    pub wal_truncated_records: usize,
    /// On-media bytes of the replayed records — with the record count, the
    /// recovery-work measure of the §7.7 experiment.
    pub wal_bytes_replayed: u64,
    /// `Resolved` markers replayed with no matching `Prepared` in sight
    /// (neither checkpointed nor replayed). Benign — a `Resolved` is only
    /// written after the decision was applied, and the decision's effects
    /// replay from their own records — but counted rather than assumed
    /// impossible, so a torn tail can never turn the pairing assumption
    /// into a panic or a silent drop.
    pub orphan_resolved_markers: usize,
    /// Virtual time the recovery took, in nanoseconds.
    pub duration_ns: u64,
}

impl Server {
    /// Recovers this server after a crash. The caller must have brought the
    /// node back up in the network before calling this.
    pub async fn recover(&self) -> RecoveryReport {
        let start = self.handle.now();
        let costs = self.cfg.costs;
        let mut report = RecoveryReport::default();

        // Volatile state starts from scratch.
        {
            let mut inner = self.inner.borrow_mut();
            inner.crashed = false;
            inner.unavailable = true;
            inner.inodes.clear();
            inner.entries.clear();
            inner.dir_index.clear();
            inner.changelogs.clear();
            inner.invalidation.clear();
            inner.applied_entry_ids.clear();
            inner.retired_entry_ids.clear();
            inner.retired_entry_order.clear();
            inner.pending_discard_confirms.clear();
            inner.completed_ops.clear();
            inner.push_timers.clear();
            inner.pending_commits.clear();
            inner.pending_tokens.clear();
            inner.pending_aggs.clear();
            inner.active_aggs.clear();
            inner.pending_agg_acks.clear();
            inner.prepared_txns.clear();
            inner.decided_txns.clear();
            inner.active_txns.clear();
            inner.resolving_txns.clear();
            inner.txn_vote_tokens.clear();
            inner.txn_ack_tokens.clear();
            inner.committed_txns.clear();
            inner.committed_txn_order.clear();
            inner.in_flight_ops.clear();
            inner.seen_request_pkts.clear();
            inner.migrating_shards.clear();
            inner.applied_installs.clear();
            inner.in_progress_installs.clear();
        }
        // Drop packets addressed to the previous incarnation.
        self.endpoint.drain();

        // Step 0a: verify the log before trusting it. A torn-write crash may
        // have corrupted or dropped records past the durable watermark;
        // recovery keeps the longest checksum-clean contiguous prefix and
        // truncates the rest. Truncated LSNs are never reissued, so they
        // cannot collide with id-based duplicate suppression rebuilt below.
        let torn = self.durable.borrow_mut().wal.recover_truncate();
        report.wal_torn_records = torn.torn;
        report.wal_truncated_records = torn.truncated;

        // Step 0b: load the checkpoint, if one exists.
        let checkpoint = self.durable.borrow().checkpoint.load();
        let replay_from = if let Some((lsn, data)) = checkpoint {
            self.load_checkpoint(&data);
            lsn
        } else {
            0
        };

        // Step 1: replay the WAL.
        let records: Vec<(u64, crate::wal::WalOp, bool, u64)> = self
            .durable
            .borrow()
            .wal
            .records()
            .iter()
            .filter(|r| r.lsn > replay_from)
            .map(|r| (r.lsn, r.payload.clone(), r.applied, r.size))
            .collect();
        let mut started_migrations: std::collections::BTreeMap<u32, switchfs_proto::ServerId> =
            std::collections::BTreeMap::new();
        let obs_on = self.obs_on();
        for (lsn, op, applied, size) in &records {
            // Each replayed record costs one KV write's worth of CPU; this is
            // what makes the §7.7 recovery time proportional to the number of
            // operations to recover.
            self.cpu.run(costs.kv_put).await;
            {
                // Causal identity mirrors the live path: the client op the
                // record was logged for, else the single change-log entry it
                // applied.
                let trace = if obs_on {
                    op.op_id
                        .or(match op.applied_entry_ids[..] {
                            [only] => Some(only),
                            _ => None,
                        })
                        .map(TraceId::of_op)
                } else {
                    None
                };
                let mut inner = self.inner.borrow_mut();
                for e in &op.effects {
                    // Per-effect replay events, peeked before the apply just
                    // like the live path in `apply_and_log`: recorder-only
                    // state, invisible to the replay digest.
                    if obs_on {
                        match e {
                            KvEffect::PutInode(key, attrs)
                                if attrs.file_type == FileType::Directory =>
                            {
                                let old = inner.inodes.peek(key).map_or(0, |a| a.size as i64);
                                let delta = attrs.size as i64 - old;
                                if delta != 0 {
                                    self.trace_event(
                                        trace,
                                        EventKind::RecoverySizeDelta {
                                            lsn: *lsn,
                                            dir: attrs.id.hash64(),
                                            delta,
                                        },
                                    );
                                }
                            }
                            KvEffect::PutEntry(dir, entry) => {
                                self.trace_event(
                                    trace,
                                    EventKind::RecoveryEntryApply {
                                        lsn: *lsn,
                                        dir: dir.hash64(),
                                        insert: true,
                                        changed: !inner.entry_exists(dir, &entry.name),
                                    },
                                );
                            }
                            KvEffect::DeleteEntry(dir, name) => {
                                self.trace_event(
                                    trace,
                                    EventKind::RecoveryEntryApply {
                                        lsn: *lsn,
                                        dir: dir.hash64(),
                                        insert: false,
                                        changed: inner.entry_exists(dir, name),
                                    },
                                );
                            }
                            _ => {}
                        }
                    }
                    inner.apply_effect(e);
                }
                for id in &op.applied_entry_ids {
                    inner.applied_entry_ids.insert(*id);
                }
            }
            if let Some((dir_id, dir_key, entry)) = &op.pending_entry {
                if !applied {
                    // The deferred update never reached the directory owner:
                    // rebuild it into the change-log.
                    let fp = Fingerprint::of_dir(&dir_key.pid, &dir_key.name);
                    let now = self.handle.now();
                    self.inner.borrow_mut().changelogs.append(
                        *dir_id,
                        dir_key,
                        fp,
                        entry.clone(),
                        now,
                    );
                    report.changelog_entries_recovered += 1;
                }
            }
            if let Some(marker) = &op.txn_marker {
                let now = self.handle.now();
                let mut inner = self.inner.borrow_mut();
                match marker {
                    TxnMarker::Prepared {
                        txn_id,
                        coordinator,
                        ops,
                    } => {
                        inner.prepared_txns.insert(
                            *txn_id,
                            PreparedTxn {
                                ops: ops.clone(),
                                coordinator: *coordinator,
                                prepared_at: now,
                            },
                        );
                    }
                    TxnMarker::Decided { txn_id, commit } => {
                        inner.decided_txns.insert(*txn_id, *commit);
                    }
                    TxnMarker::Resolved { txn_id } => {
                        if inner.prepared_txns.remove(txn_id).is_none() {
                            // No matching `Prepared` anywhere (checkpoint or
                            // replay): tolerated, not assumed away. The
                            // decision this marker witnessed was applied
                            // before it was written, and its effects replay
                            // from their own records; any txn genuinely
                            // still in doubt stays in `prepared_txns` and is
                            // resolved by coordinator query below.
                            report.orphan_resolved_markers += 1;
                        }
                    }
                    TxnMarker::Forgotten { txn_id } => {
                        inner.decided_txns.remove(txn_id);
                    }
                }
            }
            if let Some(response) = &op.completed {
                self.inner.borrow_mut().cache_response(response.clone());
                report.completed_ops_recovered += 1;
            }
            if let Some(marker) = &op.migration {
                match marker {
                    crate::wal::MigrationMarker::Started { shard, target } => {
                        started_migrations.insert(*shard, *target);
                    }
                    crate::wal::MigrationMarker::Completed { shard } => {
                        started_migrations.remove(shard);
                    }
                }
            }
            report.wal_records_replayed += 1;
            report.wal_bytes_replayed += size;
        }
        self.trace_event(
            None,
            switchfs_obs::EventKind::RecoveryReplay {
                records: report.wal_records_replayed as u64,
                bytes: report.wal_bytes_replayed,
            },
        );
        // Resolve interrupted migrations against the shared shard map: a
        // `Started` with no `Completed` whose shard no longer maps here means
        // the flip happened before the crash — the replayed copy is stale
        // and the new owner is authoritative, so drop it. A shard still
        // mapping here never left this server's ownership; the cluster
        // re-drives the migration.
        for (shard, _target) in started_migrations {
            if self.cfg.placement.owner_of_shard(shard) != self.cfg.id {
                self.drop_shard_state(shard);
                report.migrations_resolved += 1;
            }
        }
        report.inodes_recovered = self.inner.borrow().inodes.len();

        // Step 1b: resolve in-doubt transactions (§5.4.2) — prepared records
        // with no durable decision. Self-coordinated ones (this server
        // crashed mid-commit) resolve from the replayed decision table;
        // everything else re-asks its coordinator. Runs before the
        // re-aggregation so a committed rename's migrated content is in
        // place when the owned directories aggregate.
        let in_doubt: Vec<u64> = {
            let inner = self.inner.borrow();
            let mut ids: Vec<u64> = inner.prepared_txns.keys().copied().collect();
            // Deterministic resolution order: the decision queries below are
            // part of the replayable packet schedule.
            ids.sort_unstable();
            ids
        };
        report.prepared_txns_recovered = in_doubt.len();
        for txn_id in in_doubt {
            match self.resolve_prepared_txn(txn_id).await {
                Some(true) => report.txn_commits_recovered += 1,
                Some(false) => report.txn_aborts_recovered += 1,
                None => report.txn_unresolved += 1,
            }
        }

        // Step 2: proactively aggregate every directory this server owns so
        // interrupted aggregations complete and the dirty set converges.
        report.directories_aggregated = self.aggregate_all_owned().await;

        // Step 3: clone the invalidation list from another server.
        if let Some(other) = self.cfg.other_servers().first() {
            self.send_plain(
                self.cfg.node_of(*other),
                Body::Server(ServerMsg::RecoveryCloneInvalidation { from: self.cfg.id }),
            );
            // The reply is handled by the dispatcher; give it a bounded wait.
            self.handle.sleep(costs.request_timeout).await;
        }

        // Step 4: resume serving.
        {
            let mut inner = self.inner.borrow_mut();
            inner.unavailable = false;
            inner.stats.recoveries += 1;
        }
        report.duration_ns = self.handle.now().duration_since(start).as_nanos();
        report
    }

    /// Aggregates every fingerprint group that owns at least one directory on
    /// this server. Used by server recovery, switch recovery and
    /// stop-the-world reconfiguration (§5.5). Returns how many groups were
    /// aggregated.
    pub async fn aggregate_all_owned(&self) -> usize {
        // Deterministic iteration: the aggregation order below is part of
        // the replayable schedule.
        let fps: switchfs_simnet::FxHashSet<u64> = {
            let inner = self.inner.borrow();
            inner
                .dir_index
                .values()
                .map(|key| Fingerprint::of_dir(&key.pid, &key.name).raw())
                .collect()
        };
        let mut aggregated = 0;
        for raw in fps {
            let fp = Fingerprint::from_raw(raw);
            // Only aggregate groups this server actually owns (preloaded
            // namespaces can index foreign directories defensively).
            if self.cfg.placement.dir_owner_by_fp(fp) != self.cfg.id {
                continue;
            }
            let fpg = self.locks.fp_group(fp);
            let _w = fpg.write().await;
            self.aggregate_group(fp, None).await;
            aggregated += 1;
        }
        aggregated
    }

    /// Writes a checkpoint of the current volatile state, allowing the WAL
    /// prefix to be truncated (the recovery-time optimization §7.7 mentions).
    pub fn checkpoint(&self) {
        let data = {
            let inner = self.inner.borrow();
            CheckpointData {
                inodes: inner
                    .inodes
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
                entries: inner
                    .entries
                    .iter()
                    .flat_map(|(d, c)| c.iter().map(move |e| (*d, e.clone())))
                    .collect(),
                dir_index: inner
                    .dir_index
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect(),
                invalidation: inner
                    .invalidation
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect(),
                pending: {
                    let mut out = Vec::new();
                    for (dir, fp) in inner.changelogs.dirty_dirs() {
                        if let Some(log) = inner.changelogs.get(&dir) {
                            for e in log.entries() {
                                out.push((dir, log.dir_key.clone(), e.clone()));
                            }
                        }
                        let _ = fp;
                    }
                    out
                },
                applied_entry_ids: inner.applied_entry_ids.iter().copied().collect(),
                retired_entry_ids: inner
                    .retired_entry_order
                    .iter()
                    .map(|(_, id)| *id)
                    .collect(),
                prepared_txns: inner
                    .prepared_txns
                    .iter()
                    .map(|(id, p)| (*id, p.coordinator, p.ops.clone()))
                    .collect(),
                decided_txns: inner.decided_txns.iter().map(|(k, v)| (*k, *v)).collect(),
                completed_ops: {
                    let mut v: Vec<_> = inner
                        .completed_ops
                        .values()
                        .flat_map(|m| m.values().cloned())
                        .collect();
                    v.sort_by_key(|r| r.op_id);
                    v
                },
            }
        };
        let mut durable = self.durable.borrow_mut();
        // Checkpoint at the durable watermark, never past it: a record still
        // in the volatile tail may not survive the next crash, and
        // truncating it here would lose it even though the checkpointed
        // snapshot (taken at a quiesce point, after every append's flush
        // barrier has run) does reflect it. Cutting at `flushed` keeps the
        // unflushed suffix replayable either way.
        let lsn = durable.wal.flushed();
        durable.checkpoint.store(lsn, data);
        durable.wal.truncate_through(lsn);
    }

    fn load_checkpoint(&self, data: &CheckpointData) {
        let mut inner = self.inner.borrow_mut();
        for (k, v) in &data.inodes {
            inner.inodes.put(k.clone(), v.clone());
        }
        for (d, e) in &data.entries {
            inner.put_entry(*d, e.clone());
        }
        for (id, key) in &data.dir_index {
            inner.dir_index.insert(*id, key.clone());
        }
        for (id, key) in &data.invalidation {
            inner.invalidation.insert(*id, key.clone());
        }
        for id in &data.applied_entry_ids {
            inner.applied_entry_ids.insert(*id);
        }
        let now = self.handle.now();
        for id in &data.retired_entry_ids {
            inner.retire_entry_id(*id, now);
        }
        for (dir, key, entry) in &data.pending {
            let fp = Fingerprint::of_dir(&key.pid, &key.name);
            inner.changelogs.append(*dir, key, fp, entry.clone(), now);
        }
        for (txn_id, coordinator, ops) in &data.prepared_txns {
            inner.prepared_txns.insert(
                *txn_id,
                PreparedTxn {
                    ops: ops.clone(),
                    coordinator: *coordinator,
                    prepared_at: now,
                },
            );
        }
        for (txn_id, commit) in &data.decided_txns {
            inner.decided_txns.insert(*txn_id, *commit);
        }
        for response in &data.completed_ops {
            inner.cache_response(response.clone());
        }
    }
}
