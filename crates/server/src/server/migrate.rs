//! Live shard migration: the mechanism behind elastic scale-out.
//!
//! The cluster's placement is an epoch-versioned map of virtual shards to
//! servers ([`switchfs_proto::ShardMap`]). Moving one shard from its owner
//! (the *source*) to a *target* runs the freeze → stream → ack → flip
//! protocol:
//!
//! 1. the source durably logs a `MigrationMarker::Started` and freezes the
//!    shard (requests touching it are dropped; the clients' retransmission
//!    timers carry them across the window);
//! 2. the source waits for in-flight work on the shard to drain (client
//!    handlers, owner-side aggregations, prepared transactions);
//! 3. the source extracts the shard's slice of its stores — inodes, entry
//!    lists, the owner index, pending change-log entries — plus copies of
//!    the duplicate-suppression state, and streams it to the target with
//!    ack + retransmission ([`switchfs_proto::message::ServerMsg::ShardInstall`]);
//! 4. the target applies and durably logs the state, then acks;
//! 5. the source flips the shard in the shared map (bumping the epoch),
//!    deletes its now-stale copy (logged, so recovery agrees), logs
//!    `MigrationMarker::Completed`, and unfreezes.
//!
//! Clients keep routing with their cached map until a server rejects them
//! with `WrongOwner { map }`, at which point they refresh and retry — one
//! extra round trip per client per epoch bump, only on moved shards.
//!
//! A crash between steps leaves a durable `Started` with no `Completed`;
//! recovery resolves it against the shared map (see
//! [`crate::server::recovery`]): if the shard already flipped, the replayed
//! local copy is stale and is dropped; otherwise the source still owns the
//! shard and the cluster re-drives the migration.

use switchfs_proto::message::{Body, ClientResponse, ServerMsg};
use switchfs_proto::{
    ids::splitmix64, ChangeLogEntry, DirId, FileType, Fingerprint, InodeAttrs, MetaKey, OpId,
    PartitionPolicy, ServerId,
};

use crate::server::{Server, TokenReply};
use crate::wal::{KvEffect, MigrationMarker, WalOp};

/// The extracted slice of one shard's server-side state.
#[derive(Default)]
pub(crate) struct ShardExtract {
    pub inodes: Vec<(MetaKey, InodeAttrs)>,
    pub entries: Vec<(DirId, switchfs_proto::DirEntry)>,
    pub dir_index: Vec<(DirId, MetaKey)>,
    pub pending: Vec<(DirId, MetaKey, ChangeLogEntry)>,
}

impl ShardExtract {
    fn is_empty(&self) -> bool {
        self.inodes.is_empty()
            && self.entries.is_empty()
            && self.dir_index.is_empty()
            && self.pending.is_empty()
    }
}

/// The placement hashes under which an inode may be stored on its owner:
/// its routing roles under the given policy. A directory under grouping
/// policies has two (access replica with the parent's children, content
/// replica with its own).
fn inode_role_hashes(policy: PartitionPolicy, key: &MetaKey, attrs: &InodeAttrs) -> Vec<u64> {
    match policy {
        PartitionPolicy::PerFileHash => {
            if attrs.file_type == FileType::Directory {
                vec![splitmix64(Fingerprint::of_dir(&key.pid, &key.name).raw())]
            } else {
                vec![key.hash64()]
            }
        }
        PartitionPolicy::PerDirectoryHash | PartitionPolicy::Subtree => {
            let mut v = vec![key.pid.hash64()];
            if attrs.file_type == FileType::Directory {
                v.push(attrs.id.hash64());
            }
            v
        }
    }
}

/// The placement hash that owns a directory's entry list (and its owner-
/// index record): the fingerprint hash under per-file hashing, the
/// directory-id hash under the grouping policies.
fn dir_content_hash(policy: PartitionPolicy, dir: &DirId, dir_key: Option<&MetaKey>) -> u64 {
    match policy {
        PartitionPolicy::PerFileHash => match dir_key {
            Some(key) => splitmix64(Fingerprint::of_dir(&key.pid, &key.name).raw()),
            // Without an index entry the fingerprint is unknown; fall back
            // to the id hash, which never matches a foreign shard under
            // per-file hashing — the list simply stays put.
            None => dir.hash64(),
        },
        PartitionPolicy::PerDirectoryHash | PartitionPolicy::Subtree => dir.hash64(),
    }
}

impl Server {
    /// Extracts everything stored on this server that shard `shard` owns.
    /// Thin wrapper over the batched [`Server::collect_shards`].
    pub(crate) fn collect_shard(&self, shard: u32) -> ShardExtract {
        let shards: std::collections::BTreeSet<u32> = std::iter::once(shard).collect();
        self.collect_shards(&shards)
            .remove(&shard)
            .unwrap_or_default()
    }

    /// Extracts everything stored on this server that any shard in `shards`
    /// owns, in ONE bucketing pass over the stores. A drain plan moving S
    /// shards off one donor scans the donor's inodes / entry lists / owner
    /// index / change-logs once instead of S times — the difference between
    /// a linear and a quadratic decommission. An inode whose routing roles
    /// map to two shards of the batch appears in both extracts, exactly as
    /// two independent per-shard scans would collect it.
    pub(crate) fn collect_shards(
        &self,
        shards: &std::collections::BTreeSet<u32>,
    ) -> std::collections::BTreeMap<u32, ShardExtract> {
        let placement = &self.cfg.placement;
        let policy = placement.policy();
        let inner = self.inner.borrow();
        let mut out: std::collections::BTreeMap<u32, ShardExtract> = shards
            .iter()
            .map(|s| (*s, ShardExtract::default()))
            .collect();
        for (key, attrs) in inner.inodes.iter() {
            let mut first_hit: Option<u32> = None;
            for h in inode_role_hashes(policy, key, attrs) {
                let s = placement.shard_of_hash(h);
                if first_hit == Some(s) {
                    continue;
                }
                if let Some(extract) = out.get_mut(&s) {
                    extract.inodes.push((key.clone(), attrs.clone()));
                    if first_hit.is_none() {
                        first_hit = Some(s);
                    }
                }
            }
        }
        for (dir, content) in inner.entries.iter() {
            let h = dir_content_hash(policy, dir, inner.dir_index.get(dir));
            if let Some(extract) = out.get_mut(&placement.shard_of_hash(h)) {
                for e in content.iter() {
                    extract.entries.push((*dir, e.clone()));
                }
            }
        }
        for (dir, key) in inner.dir_index.iter() {
            let h = dir_content_hash(policy, dir, Some(key));
            if let Some(extract) = out.get_mut(&placement.shard_of_hash(h)) {
                extract.dir_index.push((*dir, key.clone()));
            }
        }
        for (dir, fp) in inner.changelogs.dirty_dirs() {
            let h = match policy {
                PartitionPolicy::PerFileHash => splitmix64(fp.raw()),
                _ => dir.hash64(),
            };
            if let Some(extract) = out.get_mut(&placement.shard_of_hash(h)) {
                if let Some(log) = inner.changelogs.get(&dir) {
                    let key = log.dir_key.clone();
                    for e in log.entries() {
                        extract.pending.push((dir, key.clone(), e.clone()));
                    }
                }
            }
        }
        // Deterministic stream order regardless of hash-map iteration.
        for extract in out.values_mut() {
            extract.inodes.sort_by(|a, b| a.0.cmp(&b.0));
            extract
                .entries
                .sort_by(|a, b| (a.0, &a.1.name).cmp(&(b.0, &b.1.name)));
            extract.dir_index.sort_by_key(|e| e.0);
            extract.pending.sort_by_key(|e| (e.0, e.2.entry_id));
        }
        out
    }

    /// Copies of the duplicate-suppression state shipped with every shard.
    /// Deliberately re-snapshotted per migration rather than once per
    /// rebalance: under live traffic, responses cached between two shards'
    /// freezes exist only in the later snapshot, and the later shard's flip
    /// redirects exactly those clients' retransmissions to the target — a
    /// stale snapshot would let them re-execute. A superset is always safe,
    /// and the acked watermark (responses) plus the holders' discard
    /// confirmations (entry ids) keep each snapshot within the in-flight
    /// window, so the per-shard payload stays small by construction.
    pub(crate) fn dedup_snapshot(&self) -> (Vec<OpId>, Vec<OpId>, Vec<ClientResponse>) {
        let inner = self.inner.borrow();
        let mut applied: Vec<OpId> = inner.applied_entry_ids.iter().copied().collect();
        applied.sort_unstable();
        // The retired FIFO ships in insertion order so the target's eviction
        // order matches; both halves are bounded, so the payload is small.
        let retired: Vec<OpId> = inner
            .retired_entry_order
            .iter()
            .map(|(_, id)| *id)
            .collect();
        let mut completed: Vec<ClientResponse> = inner
            .completed_ops
            .values()
            .flat_map(|m| m.values().cloned())
            .collect();
        completed.sort_by_key(|r| r.op_id);
        (applied, retired, completed)
    }

    /// True when the directory addressed by `fp`/`dir` lies in a shard this
    /// server is currently migrating out. Server-to-server update paths
    /// (change-log pushes, synchronous remote updates, overflow fallbacks)
    /// must check this before applying: an entry applied at the source
    /// after the shard was snapshotted would be stranded at the old owner
    /// when the shard flips. Senders retry, and after the flip their
    /// placement lookup routes the update to the new owner.
    pub(crate) fn dir_update_frozen(&self, fp: Fingerprint, dir: &DirId) -> bool {
        let inner = self.inner.borrow();
        if inner.migrating_shards.is_empty() {
            return false;
        }
        let placement = &self.cfg.placement;
        let h = match placement.policy() {
            PartitionPolicy::PerFileHash => splitmix64(fp.raw()),
            _ => dir.hash64(),
        };
        inner.migrating_shards.contains(&placement.shard_of_hash(h))
    }

    /// True when this server currently owns the directory addressed by
    /// `fp`/`dir` under the shared map. Owner-side apply paths must check
    /// this alongside the freeze gate: a push *in flight across a flip*
    /// lands at the old owner after it deleted its migrated copy, and the
    /// missing owner-index entry would make the apply treat the update as
    /// "directory removed, moot" — acknowledging it, so the holder durably
    /// discards an entry the *new* owner never saw (a lost directory
    /// update; found by the decommission chaos sweep as a statdir/listing
    /// divergence). A non-owner drops the message without an ack; the
    /// holder's next round routes to the new owner via the shared map.
    pub(crate) fn owns_dir_updates(&self, fp: Fingerprint, dir: &DirId) -> bool {
        let placement = &self.cfg.placement;
        let h = match placement.policy() {
            PartitionPolicy::PerFileHash => splitmix64(fp.raw()),
            _ => dir.hash64(),
        };
        placement.owner_of_hash(h) == self.cfg.id
    }

    /// True while work that predates the freeze may still touch `shard`:
    /// any client handler from the freeze-time snapshot (new ones are gated
    /// per-shard), any owner-side aggregation of a fingerprint in the
    /// shard, any prepared transaction staging mutations in it.
    fn shard_busy(&self, shard: u32, pre_freeze: &switchfs_simnet::FxHashSet<OpId>) -> bool {
        let placement = &self.cfg.placement;
        let inner = self.inner.borrow();
        if inner.in_flight_ops.iter().any(|op| pre_freeze.contains(op)) {
            return true;
        }
        if inner
            .pending_aggs
            .values()
            .any(|agg| placement.shard_of_hash(splitmix64(agg.fp.raw())) == shard)
        {
            return true;
        }
        // Owner-side aggregations that finished collecting but are still
        // applying entries (pending_aggs empties before the apply phase).
        if inner
            .active_aggs
            .keys()
            .any(|raw| placement.shard_of_hash(splitmix64(*raw)) == shard)
        {
            return true;
        }
        inner.prepared_txns.values().any(|txn| {
            txn.ops
                .iter()
                .any(|op| self.txn_op_touches_shard(op, shard))
        })
    }

    /// Conservative: true if a staged transaction mutation may land in
    /// `shard` under any of its routing roles.
    pub(crate) fn txn_op_touches_shard(
        &self,
        op: &switchfs_proto::message::TxnOp,
        shard: u32,
    ) -> bool {
        use switchfs_proto::message::TxnOp;
        let placement = &self.cfg.placement;
        let key_hits = |key: &MetaKey| {
            let fp = Fingerprint::of_dir(&key.pid, &key.name);
            placement.shard_of_hash(key.hash64()) == shard
                || placement.shard_of_hash(splitmix64(fp.raw())) == shard
                || placement.shard_of_hash(key.pid.hash64()) == shard
        };
        match op {
            TxnOp::PutInode { key, .. } | TxnOp::DeleteInode { key } => key_hits(key),
            TxnOp::DirUpdate { dir_key, entry } => {
                key_hits(dir_key) || placement.shard_of_hash(entry.dir.hash64()) == shard
            }
            TxnOp::PutDirContent { key, dir, .. } => {
                key_hits(key) || placement.shard_of_hash(dir.hash64()) == shard
            }
            TxnOp::DeleteDirContent { dir, .. } => placement.shard_of_hash(dir.hash64()) == shard,
        }
    }

    /// Durably logs a shard-migration state transition and charges one WAL
    /// append.
    pub(crate) async fn log_migration_marker(&self, marker: MigrationMarker) {
        let record = WalOp::migration(marker);
        let size = record.wire_size();
        // Append before the disk wait (the torn-write window), flush after:
        // `Started` must be durable before the freeze takes effect and
        // `Completed` before the unfreeze, or a crash between the two could
        // leave recovery blind to a half-migrated shard.
        self.durable.borrow_mut().wal.append_sized(record, size);
        self.cpu.run(self.wal_append_cost()).await;
        self.durable.borrow_mut().wal.flush();
    }

    /// Migrates `shard` to `target`: freeze → drain → stream (with ack +
    /// retransmission) → `flip` (the caller reassigns the shard in the
    /// shared map) → delete the local copy. Returns false — leaving
    /// ownership unchanged and the shard unfrozen — if the target never
    /// acked (e.g. it is down); the caller may retry later. Thin wrapper
    /// over the batched [`Server::migrate_shards`].
    pub async fn migrate_shard(&self, shard: u32, target: ServerId, flip: impl FnOnce()) -> bool {
        let flip = std::cell::RefCell::new(Some(flip));
        self.migrate_shards(&[(shard, target)], |_, _| {
            if let Some(f) = flip.borrow_mut().take() {
                f();
            }
        })
        .await
            == 1
    }

    /// Migrates a batch of shards off this server (the donor side of a
    /// decommission drain): freeze the whole batch, wait once for every
    /// pre-freeze piece of work to clear, bucket all the shards' state in a
    /// single pass over the stores ([`Server::collect_shards`]), then stream
    /// each shard to its target with ack + retransmission, flipping and
    /// deleting per shard as acks arrive. A shard whose target never acks is
    /// unfrozen with ownership unchanged (the caller may retry); if this
    /// server crashes mid-batch the remaining shards are abandoned — their
    /// durable `Started` markers resolve against the shared map on recovery.
    /// Returns the number of shards successfully migrated.
    pub async fn migrate_shards(
        &self,
        moves: &[(u32, ServerId)],
        flip: impl Fn(u32, ServerId),
    ) -> usize {
        if moves.is_empty() {
            return 0;
        }
        for (shard, target) in moves {
            self.log_migration_marker(MigrationMarker::Started {
                shard: *shard,
                target: *target,
            })
            .await;
            self.inner.borrow_mut().migrating_shards.insert(*shard);
            self.trace_event(
                None,
                switchfs_obs::EventKind::MigrationFreeze { shard: *shard },
            );
        }

        // Drain barrier for the whole batch: pre-freeze client handlers,
        // owner-side aggregations and prepared transactions touching any
        // frozen shard must finish (new work is gated per shard).
        let pre_freeze: switchfs_simnet::FxHashSet<OpId> =
            self.inner.borrow().in_flight_ops.iter().copied().collect();
        let step = self.cfg.costs.request_timeout / 4;
        while moves.iter().any(|(s, _)| self.shard_busy(*s, &pre_freeze)) {
            if self.is_crashed() {
                // Crashed mid-drain: recovery rebuilds a clean state (it
                // clears the freeze set) and resolves the durable `Started`
                // markers against the shared map.
                return 0;
            }
            self.handle.sleep(step).await;
        }

        // One bucketing pass over the stores for every shard of the batch.
        let shard_set: std::collections::BTreeSet<u32> = moves.iter().map(|(s, _)| *s).collect();
        let mut extracts = self.collect_shards(&shard_set);

        let mut migrated = 0;
        for (shard, target) in moves {
            if self.is_crashed() {
                break;
            }
            let extract = extracts.remove(shard).unwrap_or_default();
            // Re-snapshotted per shard: responses cached while earlier
            // shards of the batch streamed exist only in later snapshots,
            // and a superset is always safe.
            let (applied_entry_ids, retired_entry_ids, completed) = self.dedup_snapshot();
            // Stream cost: one KV read per extracted item.
            let items = extract.inodes.len() + extract.entries.len() + extract.pending.len();
            self.cpu
                .run(self.cfg.costs.kv_get * items.max(1) as u64)
                .await;

            self.trace_event(
                None,
                switchfs_obs::EventKind::MigrationStream {
                    shard: *shard,
                    inodes: extract.inodes.len() as u32,
                },
            );
            let token = self.next_token();
            let body = Body::Server(ServerMsg::ShardInstall {
                req_id: token,
                shard: *shard,
                inodes: extract.inodes.clone(),
                entries: extract.entries.clone(),
                dir_index: extract.dir_index.clone(),
                pending: extract.pending.clone(),
                applied_entry_ids,
                retired_entry_ids,
                completed,
            });
            let acked = matches!(
                self.send_with_ack(self.cfg.node_of(*target), token, body)
                    .await,
                Some(TokenReply::Ack)
            );
            if !acked {
                self.inner.borrow_mut().migrating_shards.remove(shard);
                continue;
            }

            // Commit point: the shard flips in the shared map; every server
            // and every subsequently-refreshed client routes to the target.
            flip(*shard, *target);
            self.trace_event(
                None,
                switchfs_obs::EventKind::MigrationFlip {
                    shard: *shard,
                    new_epoch: self.cfg.placement.epoch(),
                },
            );
            self.delete_shard_local(&extract, true).await;
            self.log_migration_marker(MigrationMarker::Completed { shard: *shard })
                .await;
            {
                let mut inner = self.inner.borrow_mut();
                inner.migrating_shards.remove(shard);
                inner.stats.shards_migrated_out += 1;
            }
            migrated += 1;
        }
        migrated
    }

    /// Deletes an extracted slice of shard state, keeping any object that
    /// still has a routing role mapping to this server (grouping policies
    /// can place two replicas of one directory on one server with only one
    /// of them migrating). All deletions are WAL-logged, so a replay
    /// reconstructs the same purge. Used by the source after the flip, and
    /// by the target to purge the stale leftovers of a lost-ack earlier
    /// install attempt before applying a retried one.
    async fn delete_shard_local(&self, extract: &ShardExtract, drop_changelogs: bool) {
        let placement = &self.cfg.placement;
        let policy = placement.policy();
        let mut effects = Vec::new();
        for (key, attrs) in &extract.inodes {
            let keep = inode_role_hashes(policy, key, attrs)
                .iter()
                .any(|h| placement.owner_of_hash(*h) == self.cfg.id);
            if !keep {
                effects.push(KvEffect::DeleteInode(key.clone()));
            }
        }
        for (dir, entry) in &extract.entries {
            effects.push(KvEffect::DeleteEntry(*dir, entry.name.clone()));
        }
        for (dir, key) in &extract.dir_index {
            if placement.owner_of_hash(dir_content_hash(policy, dir, Some(key))) != self.cfg.id {
                effects.push(KvEffect::UnindexDir(*dir));
            }
        }
        self.apply_and_log(None, effects, None, Vec::new()).await;
        // Source side only (`drop_changelogs`): the moved pending change-log
        // entries now live (durably) at the target; drop the volatile copies
        // so this server stops pushing them. Their unapplied WAL records are
        // harmless: a later recovery rebuilds and re-pushes them, and the
        // target's copied duplicate-suppression set discards anything
        // already applied. The target's stale-purge passes `false`: its
        // change-log holds live holder-side entries, never stale state.
        if drop_changelogs {
            let mut inner = self.inner.borrow_mut();
            let dirs: std::collections::BTreeSet<DirId> =
                extract.pending.iter().map(|(d, _, _)| *d).collect();
            for dir in dirs {
                inner.changelogs.remove(&dir);
            }
        }
    }

    /// Target side of the stream: applies and durably logs one shard's
    /// state, then acks. Idempotent — a retransmitted install is re-acked
    /// without re-appending the pending change-log entries.
    #[allow(clippy::too_many_arguments)]
    pub(crate) async fn handle_shard_install(
        &self,
        src: switchfs_simnet::NodeId,
        req_id: u64,
        shard: u32,
        inodes: Vec<(MetaKey, InodeAttrs)>,
        entries: Vec<(DirId, switchfs_proto::DirEntry)>,
        dir_index: Vec<(DirId, MetaKey)>,
        pending: Vec<(DirId, MetaKey, ChangeLogEntry)>,
        applied_entry_ids: Vec<OpId>,
        retired_entry_ids: Vec<OpId>,
        completed: Vec<ClientResponse>,
    ) {
        let install_key = (src.0, req_id);
        {
            let mut inner = self.inner.borrow_mut();
            if inner.applied_installs.contains(&install_key) {
                drop(inner);
                self.send_plain(src, Body::Server(ServerMsg::ShardInstallAck { req_id }));
                return;
            }
            // A retransmission racing the still-running first copy must not
            // apply concurrently (double-appended change-log entries,
            // deletes interleaved with puts) nor be acked early (the source
            // would flip before the apply finished): drop it; the source's
            // retransmission timer re-asks until the first apply is done.
            if !inner.in_progress_installs.insert(install_key) {
                return;
            }
        }
        // A *retried* migration (the previous attempt's ack was lost, the
        // source kept serving and mutating the shard, and is now streaming
        // a fresh copy under a new token) must not overlay the stale first
        // copy: anything deleted at the source in between would be
        // resurrected here. Purge local shard-s state first — a no-op on
        // the common fresh-target path. The purge must NOT touch this
        // server's change-logs: entries held here for the incoming shard's
        // directories are *live holder-side* deferred updates (the target
        // of a decommission drain is a loaded survivor, not a fresh node),
        // and dropping them would lose directory updates forever — the
        // pending-append below dedups against them by entry id instead.
        let stale = self.collect_shard(shard);
        if !stale.is_empty() {
            self.delete_shard_local(&stale, false).await;
        }
        let items = inodes.len() + entries.len() + pending.len();
        self.cpu
            .run(self.cfg.costs.kv_put * items.max(1) as u64)
            .await;
        let mut effects: Vec<KvEffect> = Vec::with_capacity(items);
        for (key, attrs) in inodes {
            // Freshness merge: a directory inode has two routing roles under
            // the grouping policies (access replica by parent hash, content
            // replica by its own id hash), so a decommission draining both
            // role shards off one donor can deliver the *stale* access-role
            // snapshot after this server's content-role copy already
            // absorbed post-flip updates — blindly overwriting would fork
            // size/ctime away from the entry list. Keep whichever copy
            // changed last (ties take the incoming copy, which keeps
            // retransmitted installs idempotent).
            let local_fresher = {
                let inner = self.inner.borrow();
                inner
                    .inodes
                    .peek(&key)
                    .is_some_and(|local| local.times.ctime > attrs.times.ctime)
            };
            if !local_fresher {
                effects.push(KvEffect::PutInode(key, attrs));
            }
        }
        for (dir, entry) in entries {
            effects.push(KvEffect::PutEntry(dir, entry));
        }
        for (dir, key) in dir_index {
            effects.push(KvEffect::IndexDir(dir, key));
        }
        self.apply_and_log(None, effects, None, applied_entry_ids)
            .await;
        for (dir, key, entry) in pending {
            // Idempotent append: a lost-ack earlier install (or this
            // server's own holder-side change-log) may already carry the
            // entry — a second copy would double-apply under the
            // presence-blind compacted delta.
            let dup = self
                .inner
                .borrow()
                .changelogs
                .get(&dir)
                .is_some_and(|log| log.entries().any(|e| e.entry_id == entry.entry_id));
            if dup {
                continue;
            }
            let fp = Fingerprint::of_dir(&key.pid, &key.name);
            let now = self.handle.now();
            self.inner
                .borrow_mut()
                .changelogs
                .append(dir, &key, fp, entry.clone(), now);
            self.apply_and_log(None, Vec::new(), Some((dir, key, entry)), Vec::new())
                .await;
        }
        {
            let now = self.handle.now();
            let mut inner = self.inner.borrow_mut();
            // The source's retired FIFO rides along so a duplicate delayed
            // across the flip is still suppressed here; entering through the
            // retire path (re-stamped with install time — conservative)
            // keeps this server's FIFO bounded.
            for id in retired_entry_ids {
                inner.retire_entry_id(id, now);
            }
            let mut durable = self.durable.borrow_mut();
            for response in completed {
                // The crash-surviving-dedup guarantee must hold for
                // migrated shards too: a retransmission that spans both
                // the migration and a later target crash still gets the
                // original result, so the cached responses are WAL-logged
                // here exactly like locally-produced ones (piggybacked on
                // the install's append, no extra simulated latency).
                let record = WalOp::completion(response.clone());
                let size = record.wire_size();
                durable.wal.append_sized(record, size);
                inner.cache_response(response);
            }
            // Flush barrier before the ack below escapes: once the source
            // sees the ack it flips ownership and deletes its copy, so the
            // completion records must not be sitting in a volatile tail a
            // target crash could tear away.
            durable.wal.flush();
            inner.applied_installs.insert(install_key);
            inner.in_progress_installs.remove(&install_key);
            inner.stats.shards_migrated_in += 1;
        }
        let _ = shard;
        self.send_plain(src, Body::Server(ServerMsg::ShardInstallAck { req_id }));
    }

    /// Force-pushes every pending change-log entry to its directory owner,
    /// ignoring the MTU / idle thresholds. Used by the decommission drain:
    /// after the victim's own shards have migrated, its change-logs still
    /// hold deferred updates to directories *other* servers own — those must
    /// reach their owners before the victim can shut down, or the updates
    /// would be stranded in a WAL nobody will ever replay.
    pub(crate) fn push_all_changelogs(&self) {
        let mut to_push: Vec<(MetaKey, Fingerprint, Vec<ChangeLogEntry>)> = Vec::new();
        {
            let inner = self.inner.borrow();
            for (dir, fp) in inner.changelogs.dirty_dirs() {
                if let Some(log) = inner.changelogs.get(&dir) {
                    if !log.is_empty() {
                        to_push.push((log.dir_key.clone(), fp, log.snapshot()));
                    }
                }
            }
        }
        for (dir_key, fp, entries) in to_push {
            self.send_changelog_push(dir_key, fp, entries);
        }
    }

    /// Sends every queued discard confirmation as an empty change-log push
    /// addressed directly to its applier. Steady-state confirms ride on
    /// messages that already flow, but a server about to shut down has no
    /// future messages — without this final flush the appliers would retain
    /// the victim's unconfirmed ids for their lifetime.
    fn flush_discard_confirms(&self) {
        let mut appliers: Vec<ServerId> = self
            .inner
            .borrow()
            .pending_discard_confirms
            .keys()
            .copied()
            .collect();
        appliers.sort_unstable();
        for applier in appliers {
            let discard_confirm = self.inner.borrow_mut().take_discard_confirms(applier);
            if discard_confirm.is_empty() {
                continue;
            }
            let dir_key = MetaKey::new(DirId::ROOT, "");
            let fp = Fingerprint::of_dir(&dir_key.pid, &dir_key.name);
            self.send_plain(
                self.cfg.node_of(applier),
                Body::Server(ServerMsg::ChangeLogPush {
                    dir_key,
                    fp,
                    from: self.cfg.id,
                    entries: Vec::new(),
                    discard_confirm,
                }),
            );
        }
    }

    /// Waits until nothing recovery-critical remains volatile on this
    /// server: change-logs flushed (force-pushed each round until the
    /// owners' acks drain them), no in-flight client handlers, no pending
    /// aggregations, no prepared transactions. Bounded: returns false if
    /// the cluster cannot quiesce within the retry budget (e.g. an owner is
    /// down), leaving the caller to retry the decommission later.
    pub async fn drain_for_shutdown(&self) -> bool {
        let step = self.cfg.costs.request_timeout;
        for _round in 0..64 {
            if self.is_crashed() {
                return false;
            }
            let quiet = {
                let inner = self.inner.borrow();
                inner.changelogs.is_empty()
                    && inner.in_flight_ops.is_empty()
                    && inner.pending_aggs.is_empty()
                    && inner.active_aggs.is_empty()
                    && inner.prepared_txns.is_empty()
                    && inner.pending_discard_confirms.is_empty()
            };
            if quiet {
                return true;
            }
            self.push_all_changelogs();
            // Queued discard confirmations normally ride on future
            // messages; a retiring server has none, so flush them
            // explicitly or the appliers keep the ids forever.
            self.flush_discard_confirms();
            self.handle.sleep(step).await;
        }
        false
    }

    /// Drops every locally-stored object owned by `shard` (recovery of an
    /// interrupted migration whose flip already happened: the WAL replay
    /// rebuilt state the target now owns). Objects with another routing
    /// role still mapping here are kept, like the post-flip source delete.
    pub(crate) fn drop_shard_state(&self, shard: u32) {
        let placement = self.cfg.placement.clone();
        let policy = placement.policy();
        let extract = self.collect_shard(shard);
        let mut inner = self.inner.borrow_mut();
        for (key, attrs) in &extract.inodes {
            let keep = inode_role_hashes(policy, key, attrs)
                .iter()
                .any(|h| placement.owner_of_hash(*h) == self.cfg.id);
            if keep {
                continue;
            }
            inner.inodes.delete(key);
        }
        for (dir, entry) in &extract.entries {
            inner.remove_entry(*dir, &entry.name);
        }
        for (dir, _) in &extract.dir_index {
            inner.dir_index.remove(dir);
        }
        let dirs: std::collections::BTreeSet<DirId> =
            extract.pending.iter().map(|(d, _, _)| *d).collect();
        for dir in dirs {
            inner.changelogs.remove(&dir);
        }
    }
}
