//! `rename`: the one operation SwitchFS executes with distributed
//! transactions (§5.2).
//!
//! Rename can touch up to four inodes (source, destination, and both parent
//! directories). The server owning the source acts as the transaction
//! coordinator: it aggregates the source directory first when the source is
//! itself a directory, performs an orphaned-loop check, then drives a
//! two-phase commit whose participants are the destination inode's owner and
//! both parent directories' owners.

use std::collections::HashMap;

use switchfs_proto::message::{Body, ClientRequest, MetaOp, ServerMsg, TxnOp};
use switchfs_proto::{
    ChangeLogEntry, ChangeOp, FsError, Fingerprint, OpResult, Placement, ServerId,
};

use crate::server::{Server, TokenReply};
use crate::wal::KvEffect;

/// A prepared-but-undecided transaction on a participant.
pub(crate) struct PreparedTxn {
    /// The staged mutations, applied when the commit decision arrives.
    pub ops: Vec<TxnOp>,
    /// The coordinating server (kept for a crash-recovery decision query).
    #[allow(dead_code)]
    pub coordinator: ServerId,
}

impl Server {
    /// Handles a `rename` request as the transaction coordinator.
    pub(crate) async fn handle_rename(&self, req: &ClientRequest) -> OpResult {
        let costs = self.cfg.costs;
        self.cpu.run(costs.request_overhead()).await;
        if self.is_stale(&req.ancestors) {
            return OpResult::Err(FsError::StaleCache);
        }
        let MetaOp::Rename { src, dst } = &req.op else {
            return OpResult::Err(FsError::NotFound);
        };
        // Lock the source inode for the duration of the transaction.
        let src_lock = self.locks.inode(src);
        let _src_guard = src_lock.write().await;
        self.cpu.run(costs.lock_op + costs.kv_get).await;
        let Some(src_attrs) = self.inner.borrow_mut().inodes.get(src) else {
            return OpResult::Err(FsError::NotFound);
        };

        if src_attrs.is_dir() {
            // Orphaned-loop prevention: the destination path must not pass
            // through the directory being moved (§5.2).
            if req.ancestors.contains(&src_attrs.id) {
                return OpResult::Err(FsError::WouldOrphan);
            }
            // Apply every delayed update to the source directory before the
            // transaction observes it.
            let fp = Fingerprint::of_dir(&src.pid, &src.name);
            let fpg = self.locks.fp_group(fp);
            let _w = fpg.write().await;
            self.aggregate_group(fp, None).await;
        }

        // Build the per-participant mutations.
        let now = self.now_ns();
        let mut dst_attrs = src_attrs.clone();
        dst_attrs.times.ctime = now;
        let src_parent_entry = ChangeLogEntry {
            entry_id: req.op_id,
            dir: src.pid,
            name: src.name.clone(),
            op: ChangeOp::Remove,
            timestamp: now,
            size_delta: -1,
        };
        let dst_parent_entry = ChangeLogEntry {
            entry_id: switchfs_proto::OpId {
                client: req.op_id.client,
                // Derive a distinct id for the second directory update so the
                // two deferred effects are tracked independently.
                seq: req.op_id.seq | (1 << 63),
            },
            dir: dst.pid,
            name: dst.name.clone(),
            op: ChangeOp::Insert {
                file_type: src_attrs.file_type,
                mode: src_attrs.perm.mode,
            },
            timestamp: now,
            size_delta: 1,
        };

        // Participant mutation lists, grouped by owning server.
        let placement = &self.cfg.placement;
        let mut per_server: HashMap<ServerId, Vec<TxnOp>> = HashMap::new();
        per_server
            .entry(placement.file_owner(dst))
            .or_default()
            .push(TxnOp::PutInode {
                key: dst.clone(),
                attrs: dst_attrs.clone(),
            });
        per_server
            .entry(self.cfg.id)
            .or_default()
            .push(TxnOp::DeleteInode { key: src.clone() });
        // Parent directory updates are applied synchronously at their owners.
        let src_parent_key = req
            .parent
            .as_ref()
            .map(|p| p.key.clone())
            .unwrap_or_else(|| switchfs_proto::MetaKey::new(switchfs_proto::DirId::ROOT, ""));
        let src_parent_fp = Fingerprint::of_dir(&src_parent_key.pid, &src_parent_key.name);
        per_server
            .entry(placement.dir_owner_by_fp(src_parent_fp))
            .or_default()
            .push(TxnOp::DirUpdate {
                dir_key: src_parent_key,
                entry: src_parent_entry,
            });
        let dst_parent_key = switchfs_proto::MetaKey::new(dst.pid, String::new());
        // The destination parent's key is not directly known from the request
        // (only its id); the directory-update participant resolves the inode
        // by scanning its owner index, so an id-keyed placeholder suffices.
        let dst_parent_fp = Fingerprint::of_dir(&dst_parent_key.pid, &dst_parent_key.name);
        per_server
            .entry(placement.dir_owner_by_fp(dst_parent_fp))
            .or_default()
            .push(TxnOp::DirUpdate {
                dir_key: dst_parent_key,
                entry: dst_parent_entry,
            });

        // Two-phase commit.
        let txn_id = self.next_token();
        let mut vote_ok = true;
        for (server, ops) in &per_server {
            if *server == self.cfg.id {
                continue;
            }
            let token = self.next_token();
            let rx = self.register_token(token);
            // The participant replies with a TxnVote; handle_txn_vote routes
            // it back to this token through the per-transaction vote table.
            self.inner.borrow_mut().txn_vote_tokens.insert(txn_id, token);
            self.send_plain(
                self.cfg.node_of(*server),
                Body::Server(ServerMsg::TxnPrepare {
                    txn_id,
                    coordinator: self.cfg.id,
                    ops: ops.clone(),
                }),
            );
            let vote = switchfs_simnet::timeout(
                &self.handle,
                self.cfg.costs.request_timeout * 4,
                rx.recv(),
            )
            .await;
            match vote {
                Some(Ok(TokenReply::Ack)) => {}
                _ => {
                    // Either an explicit negative vote or a timeout.
                    vote_ok = false;
                }
            }
        }

        if !vote_ok {
            for server in per_server.keys() {
                if *server != self.cfg.id {
                    self.send_plain(
                        self.cfg.node_of(*server),
                        Body::Server(ServerMsg::TxnAbort { txn_id }),
                    );
                }
            }
            return OpResult::Err(FsError::Unavailable);
        }

        // Commit: apply the local mutations, then tell every participant.
        if let Some(local_ops) = per_server.get(&self.cfg.id) {
            self.apply_txn_ops(local_ops).await;
        }
        for server in per_server.keys() {
            if *server != self.cfg.id {
                self.send_plain(
                    self.cfg.node_of(*server),
                    Body::Server(ServerMsg::TxnCommit { txn_id }),
                );
            }
        }
        OpResult::Done
    }

    /// Applies a participant's transaction mutations locally.
    pub(crate) async fn apply_txn_ops(&self, ops: &[TxnOp]) {
        let costs = self.cfg.costs;
        for op in ops {
            match op {
                TxnOp::PutInode { key, attrs } => {
                    let lock = self.locks.inode(key);
                    let _g = lock.write().await;
                    self.cpu.run(costs.lock_op + costs.kv_put + costs.wal_append).await;
                    self.apply_and_log(
                        None,
                        vec![KvEffect::PutInode(key.clone(), attrs.clone())],
                        None,
                        Vec::new(),
                    )
                    .await;
                }
                TxnOp::DeleteInode { key } => {
                    self.cpu.run(costs.kv_put + costs.wal_append).await;
                    self.apply_and_log(None, vec![KvEffect::DeleteInode(key.clone())], None, Vec::new())
                        .await;
                }
                TxnOp::DirUpdate { dir_key, entry } => {
                    // Resolve the directory key: prefer the provided key, but
                    // fall back to the owner index when only the id is known.
                    let resolved = {
                        let inner = self.inner.borrow();
                        if inner.inodes.peek(dir_key).is_some() {
                            Some(dir_key.clone())
                        } else {
                            inner.dir_index.get(&entry.dir).cloned()
                        }
                    };
                    if let Some(key) = resolved {
                        let lock = self.locks.inode(&key);
                        let _g = lock.write().await;
                        self.cpu
                            .run(costs.lock_op + costs.kv_get + costs.kv_put + costs.wal_append)
                            .await;
                        let effects = self.entry_effects(&key, entry);
                        self.apply_and_log(None, effects, None, vec![entry.entry_id]).await;
                    }
                }
            }
        }
    }

    /// Participant side of the two-phase commit: stage the mutations and
    /// vote.
    pub(crate) async fn handle_txn_prepare(
        &self,
        txn_id: u64,
        coordinator: ServerId,
        ops: Vec<TxnOp>,
    ) {
        self.cpu.run(self.cfg.costs.software_path + self.cfg.costs.wal_append).await;
        // Log the prepared transaction so a crash before the decision can be
        // resolved by re-asking the coordinator (simplified presumed-abort).
        self.inner.borrow_mut().prepared_txns.insert(
            txn_id,
            PreparedTxn {
                ops,
                coordinator,
            },
        );
        self.send_plain(
            self.cfg.node_of(coordinator),
            Body::Server(ServerMsg::TxnVote {
                txn_id,
                from: self.cfg.id,
                ok: true,
            }),
        );
    }

    /// Coordinator side: a participant's vote arrived.
    pub(crate) fn handle_txn_vote(&self, txn_id: u64, _from: ServerId, ok: bool) {
        // Complete the waiting prepare; the coordinator waits for the
        // participants one at a time, so the table holds the current token.
        let token = self.inner.borrow_mut().txn_vote_tokens.remove(&txn_id);
        if let Some(token) = token {
            self.complete_token(
                token,
                if ok {
                    TokenReply::Ack
                } else {
                    TokenReply::Failed(FsError::Unavailable)
                },
            );
        }
    }

    /// Participant side: the coordinator's commit/abort decision arrived.
    pub(crate) async fn handle_txn_decision(&self, txn_id: u64, commit: bool) {
        let prepared = self.inner.borrow_mut().prepared_txns.remove(&txn_id);
        let Some(prepared) = prepared else {
            return;
        };
        if commit {
            self.apply_txn_ops(&prepared.ops).await;
        }
    }
}
