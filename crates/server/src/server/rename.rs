//! `rename`: the one operation SwitchFS executes with distributed
//! transactions (§5.2).
//!
//! Rename can touch up to four inodes (source, destination, and both parent
//! directories). The server owning the source acts as the transaction
//! coordinator: it aggregates the source directory first when the source is
//! itself a directory, performs an orphaned-loop check, then drives a
//! two-phase commit whose participants are the destination inode's owner and
//! both parent directories' owners.

use std::collections::BTreeMap;

use switchfs_obs::EventKind;
use switchfs_proto::message::{Body, ClientRequest, MetaOp, ServerMsg, TxnOp};
use switchfs_proto::{
    ChangeLogEntry, ChangeOp, FileType, Fingerprint, FsError, OpResult, ServerId, TraceId,
};
use switchfs_simnet::SimTime;

use crate::server::{Server, TokenReply};
use crate::wal::{KvEffect, TxnMarker};

/// A prepared-but-undecided transaction on a participant. Mirrored by a WAL
/// `TxnMarker::Prepared` record, so the staged state survives a crash; the
/// `coordinator` field is what the recovery-time decision query (§5.4.2)
/// asks.
pub(crate) struct PreparedTxn {
    /// The staged mutations, applied when the commit decision arrives.
    pub ops: Vec<TxnOp>,
    /// The coordinating server, queried when the decision is lost.
    pub coordinator: ServerId,
    /// When the transaction was staged; drives the background sweep that
    /// resolves transactions whose decision packets were all lost.
    pub prepared_at: SimTime,
}

impl Server {
    /// Handles a `rename` request as the transaction coordinator. Returns
    /// `None` when the request was re-routed to the real coordinator (which
    /// replies to the client directly); `Some(result)` otherwise.
    pub(crate) async fn handle_rename(
        &self,
        client_node: switchfs_simnet::NodeId,
        req: &std::rc::Rc<ClientRequest>,
    ) -> Option<OpResult> {
        let costs = self.cfg.costs;
        self.cpu.run(costs.request_overhead()).await;
        if self.is_stale(&req.ancestors) {
            return Some(OpResult::Err(FsError::StaleCache));
        }
        let MetaOp::Rename {
            src,
            dst,
            dst_parent,
        } = &req.op
        else {
            return Some(OpResult::Err(FsError::NotFound));
        };
        // Cold-cache routing fold (the client never probes the source's
        // type): under per-file hashing a directory's inode lives with its
        // fingerprint group, not at the per-file-hash owner the client
        // defaults to. If the source is not stored here, hand the request to
        // the group owner — it either coordinates the directory rename or
        // authoritatively answers NotFound.
        if matches!(
            self.cfg.placement.policy(),
            switchfs_proto::PartitionPolicy::PerFileHash
        ) && !self.inner.borrow().inodes.contains(src)
        {
            let group_owner = self
                .cfg
                .placement
                .dir_owner_by_fp(Fingerprint::of_dir(&src.pid, &src.name));
            if group_owner != self.cfg.id {
                self.send_plain(
                    self.cfg.node_of(group_owner),
                    Body::Server(ServerMsg::ForwardedRequest {
                        client_node: client_node.0,
                        req: req.clone(),
                    }),
                );
                return None;
            }
        }
        // Destination conflict pre-check for the placements that scatter a
        // key's file and directory inodes across different servers
        // (per-file hashing): the 2PC participants only validate the stores
        // they own, so an existing inode of the *other* kind must be probed
        // explicitly — one typed probe RTT, replacing the two advisory
        // `stat`/`statdir` probes the client used to pay on every rename.
        // Runs BEFORE the source lock, like the client probes did: holding
        // the hot source lock across a round-trip would serialize
        // conflict-heavy rename bursts. The race this leaves open (a
        // conflicting inode appearing between probe and commit) is the same
        // one the client-side probes had.
        if src != dst
            && matches!(
                self.cfg.placement.policy(),
                switchfs_proto::PartitionPolicy::PerFileHash
            )
        {
            let src_is_dir = self
                .inner
                .borrow()
                .inodes
                .peek(src)
                .is_some_and(|a| a.is_dir());
            if src_is_dir {
                // A directory may not land on an existing file (the file
                // inode lives at the per-file-hash owner, which the
                // dir-routed transaction never consults).
                let file_owner = self.cfg.placement.file_owner(dst);
                if self.probe_inode_type(file_owner, dst).await == Some(FileType::File) {
                    return Some(OpResult::RenameDstExists {
                        dst_type: FileType::File,
                    });
                }
            } else if self.probe_is_directory(dst).await {
                // A file may not overwrite an existing directory (the
                // directory inode lives with its fingerprint group).
                return Some(OpResult::RenameDstExists {
                    dst_type: FileType::Directory,
                });
            }
        }

        // Lock the source inode for the duration of the transaction.
        let src_lock = self.locks.inode(src);
        let _src_guard = src_lock.write().await;
        self.cpu.run(costs.lock_op + costs.kv_get).await;
        let Some(mut src_attrs) = self.inner.borrow_mut().inodes.get(src) else {
            return Some(OpResult::Err(FsError::NotFound));
        };
        // POSIX: renaming a path onto itself is a successful no-op. Guarded
        // here too (not only in LibFs) because running the transaction with
        // src == dst would self-deadlock on the held source inode lock.
        if src == dst {
            return Some(OpResult::Done);
        }

        if src_attrs.is_dir() {
            // Orphaned-loop prevention: the destination path must not pass
            // through the directory being moved (§5.2).
            if req.ancestors.contains(&src_attrs.id) {
                return Some(OpResult::Err(FsError::WouldOrphan));
            }
            // Apply every delayed update to the source directory before the
            // transaction observes (and migrates) its content. Synchronous
            // systems have nothing deferred and no aggregation machinery.
            if self.cfg.update_mode.is_async() {
                let fp = Fingerprint::of_dir(&src.pid, &src.name);
                let fpg = self.locks.fp_group(fp);
                let _w = fpg.write().await;
                self.aggregate_group(fp, None).await;
                // The aggregation just mutated the source inode (entry-count
                // and timestamps); re-read it so the migrated attributes are
                // current.
                if let Some(fresh) = self.inner.borrow_mut().inodes.get(src) {
                    src_attrs = fresh;
                }
            }
        }

        // Build the per-participant mutations.
        let now = self.now_ns();
        let mut dst_attrs = src_attrs.clone();
        dst_attrs.times.ctime = now;
        let src_parent_entry = ChangeLogEntry {
            entry_id: req.op_id,
            dir: src.pid,
            name: src.name.clone(),
            op: ChangeOp::Remove,
            timestamp: now,
            size_delta: -1,
        };
        let dst_parent_entry = ChangeLogEntry {
            entry_id: switchfs_proto::OpId {
                client: req.op_id.client,
                // Derive a distinct id for the second directory update so the
                // two deferred effects are tracked independently.
                seq: req.op_id.seq | (1 << 63),
            },
            dir: dst.pid,
            name: dst.name.clone(),
            op: ChangeOp::Insert {
                file_type: src_attrs.file_type,
                mode: src_attrs.perm.mode,
            },
            timestamp: now,
            size_delta: 1,
        };

        // Participant mutation lists, grouped by owning server. Ordered so
        // prepare/decision packets go out in the same order every run — the
        // fault RNG draws per packet, so iteration order is part of the
        // deterministic schedule.
        let placement = &self.cfg.placement;
        let mut per_server: BTreeMap<ServerId, Vec<TxnOp>> = BTreeMap::new();
        // The destination inode goes where a fresh create/mkdir of `dst`
        // would have placed it: for directories under per-file hashing that
        // is the fingerprint-group owner, not the per-file-hash owner.
        let dst_inode_owner = if src_attrs.is_dir()
            && matches!(
                placement.policy(),
                switchfs_proto::PartitionPolicy::PerFileHash
            ) {
            placement.dir_owner_by_fp(Fingerprint::of_dir(&dst.pid, &dst.name))
        } else {
            placement.file_owner(dst)
        };
        per_server
            .entry(dst_inode_owner)
            .or_default()
            .push(TxnOp::PutInode {
                key: dst.clone(),
                attrs: dst_attrs.clone(),
            });
        if src_attrs.is_dir() {
            // The directory's content (owner-index registration and, under
            // per-file hashing, the entry list keyed by its stable id)
            // follows the inode. The coordinator owns the source content
            // replica, so it can read the entries locally; under grouping
            // policies content is placed by the unchanged directory id and
            // only the id → key index needs re-pointing.
            let dir_id = src_attrs.id;
            let (content_owner, entries) = match placement.policy() {
                switchfs_proto::PartitionPolicy::PerFileHash => {
                    let inner = self.inner.borrow();
                    let entries: Vec<switchfs_proto::DirEntry> = inner
                        .entries
                        .peek(&dir_id)
                        .map(|c| c.iter().cloned().collect())
                        .unwrap_or_default();
                    (dst_inode_owner, entries)
                }
                _ => (placement.dir_owner_by_id(&dir_id), Vec::new()),
            };
            let migrating = content_owner != self.cfg.id
                && matches!(
                    placement.policy(),
                    switchfs_proto::PartitionPolicy::PerFileHash
                );
            per_server
                .entry(content_owner)
                .or_default()
                .push(TxnOp::PutDirContent {
                    key: dst.clone(),
                    dir: dir_id,
                    entries: entries.clone(),
                });
            if migrating {
                per_server
                    .entry(self.cfg.id)
                    .or_default()
                    .push(TxnOp::DeleteDirContent {
                        dir: dir_id,
                        names: entries.iter().map(|e| e.name.clone()).collect(),
                    });
            }
        }
        per_server
            .entry(self.cfg.id)
            .or_default()
            .push(TxnOp::DeleteInode { key: src.clone() });
        // Parent directory updates are applied synchronously at the servers
        // owning the parents' *content* replicas: the fingerprint owner
        // under per-file hashing, the directory-id owner under the grouping
        // policies (the same placement preloading and `mkdir` use).
        let src_parent_key = req
            .parent
            .as_ref()
            .map(|p| p.key.clone())
            .unwrap_or_else(|| switchfs_proto::MetaKey::new(switchfs_proto::DirId::ROOT, ""));
        let src_parent_fp = Fingerprint::of_dir(&src_parent_key.pid, &src_parent_key.name);
        let src_parent_owner = match placement.policy() {
            switchfs_proto::PartitionPolicy::PerFileHash => {
                placement.dir_owner_by_fp(src_parent_fp)
            }
            _ => placement.dir_owner_by_id(&src.pid),
        };
        per_server
            .entry(src_parent_owner)
            .or_default()
            .push(TxnOp::DirUpdate {
                dir_key: src_parent_key,
                entry: src_parent_entry,
            });
        let (dst_parent_key, dst_parent_owner) = match dst_parent {
            Some(p) => {
                let owner = match placement.policy() {
                    switchfs_proto::PartitionPolicy::PerFileHash => placement.dir_owner_by_fp(p.fp),
                    _ => placement.dir_owner_by_id(&p.id),
                };
                (p.key.clone(), owner)
            }
            None => {
                // Destination directly under the root: its parent is the
                // root directory, whose content replica every placement
                // keeps at the root-id owner (and at the root-fp owner
                // under per-file hashing; both are preloaded).
                let key = switchfs_proto::MetaKey::new(switchfs_proto::DirId::ROOT, "");
                let owner = match placement.policy() {
                    switchfs_proto::PartitionPolicy::PerFileHash => {
                        placement.dir_owner_by_fp(Fingerprint::of_dir(&key.pid, &key.name))
                    }
                    _ => placement.dir_owner_by_id(&switchfs_proto::DirId::ROOT),
                };
                (key, owner)
            }
        };
        per_server
            .entry(dst_parent_owner)
            .or_default()
            .push(TxnOp::DirUpdate {
                dir_key: dst_parent_key,
                entry: dst_parent_entry,
            });

        // Coordinator-local destination check (mirroring the participant's
        // prepare-time validation): an inode overwrite is only legal for
        // file-over-file. The reject carries the occupying inode's type so
        // the client can map it to the right POSIX error without having
        // probed the destination.
        if dst_inode_owner == self.cfg.id {
            if let Some(existing) = self.inner.borrow().inodes.peek(dst) {
                if existing.is_dir() || dst_attrs.is_dir() {
                    return Some(OpResult::RenameDstExists {
                        dst_type: existing.file_type,
                    });
                }
            }
        }

        // Two-phase commit. The transaction id embeds the coordinating
        // server: txn ids must be unique *cluster-wide*, not just per
        // coordinator — participants key prepared state by txn id, and two
        // coordinators concurrently using the same local counter value would
        // overwrite each other's staged ops on a shared participant (the
        // commit then applies the wrong mutations; found by the chaos
        // checker as rename updates vanishing under concurrent load).
        let txn_id = (u64::from(self.cfg.id.0) << 48) | self.next_token();
        // While the voting phase runs, decision queries for this transaction
        // answer "undecided" instead of a premature presumed-abort (a
        // crashed-and-quickly-recovered participant may ask before we
        // decide).
        self.inner.borrow_mut().active_txns.insert(txn_id);
        let mut vote_ok = true;
        let mut typed_reject: Option<switchfs_proto::FileType> = None;
        for (server, ops) in &per_server {
            if *server == self.cfg.id {
                continue;
            }
            if !vote_ok {
                // A vote already failed; skip the remaining prepares (the
                // abort below covers every participant, prepared or not).
                break;
            }
            let token = self.next_token();
            let rx = self.register_token(token);
            // The participant replies with a TxnVote; handle_txn_vote routes
            // it back to this token. Keyed by (txn_id, participant) so a
            // network-duplicated vote from an earlier participant is not
            // credited to the one currently being awaited.
            self.inner
                .borrow_mut()
                .txn_vote_tokens
                .insert((txn_id, *server), token);
            self.send_plain(
                self.cfg.node_of(*server),
                Body::Server(ServerMsg::TxnPrepare {
                    txn_id,
                    coordinator: self.cfg.id,
                    ops: ops.clone(),
                }),
            );
            let vote = switchfs_simnet::timeout(
                &self.handle,
                self.cfg.costs.request_timeout * 4,
                rx.recv(),
            )
            .await;
            match vote {
                Some(Ok(TokenReply::Ack)) => {}
                other => {
                    // Either an explicit negative vote or a timeout; drop
                    // the stale routing entry (so a late vote is ignored)
                    // and the orphaned oneshot sender.
                    if let Some(Ok(TokenReply::VoteRejected(Some(t)))) = other {
                        typed_reject = Some(t);
                    }
                    let mut inner = self.inner.borrow_mut();
                    inner.txn_vote_tokens.remove(&(txn_id, *server));
                    inner.pending_tokens.remove(&token);
                    vote_ok = false;
                }
            }
        }

        if !vote_ok {
            // The abort is decided: presumed-abort needs no durable record,
            // and decision queries may now answer `Some(false)`.
            self.inner.borrow_mut().active_txns.remove(&txn_id);
            self.trace_event(
                Some(TraceId::of_op(req.op_id)),
                EventKind::TxnDecide {
                    txn: txn_id,
                    commit: false,
                },
            );
            // Abort with acknowledgment so no participant is left holding a
            // prepared transaction after a lost abort packet.
            let _ = self.broadcast_decision(txn_id, &per_server, false).await;
            // A typed reject (destination occupied) is a definitive POSIX
            // error; anything else (timeout, crash) stays retryable.
            return Some(match typed_reject {
                Some(dst_type) => OpResult::RenameDstExists { dst_type },
                None => OpResult::Err(FsError::Unavailable),
            });
        }

        // Commit point (§5.4.2): stage the local half durably, then log the
        // decision — once the `Decided` record is in the WAL the rename is
        // committed, whatever crashes next. A coordinator crash before this
        // record is a presumed abort; after it, recovery re-applies the
        // staged local half and participants learn the outcome from the
        // decision query.
        let local_ops = per_server.get(&self.cfg.id).cloned();
        if let Some(ops) = &local_ops {
            self.log_txn_marker(TxnMarker::Prepared {
                txn_id,
                coordinator: self.cfg.id,
                ops: ops.clone(),
            })
            .await;
            self.trace_event(
                Some(TraceId::of_op(req.op_id)),
                EventKind::TxnPrepare {
                    txn: txn_id,
                    vote_commit: true,
                },
            );
        }
        self.log_txn_marker(TxnMarker::Decided {
            txn_id,
            commit: true,
        })
        .await;
        self.trace_event(
            Some(TraceId::of_op(req.op_id)),
            EventKind::TxnDecide {
                txn: txn_id,
                commit: true,
            },
        );
        {
            let mut inner = self.inner.borrow_mut();
            inner.decided_txns.insert(txn_id, true);
            inner.active_txns.remove(&txn_id);
        }

        // Apply the local mutations, then tell every participant and wait
        // for its acknowledgment (retransmitting the decision over the
        // unreliable fabric), so the rename is visible everywhere — a
        // following `statdir` must observe it — before the client sees
        // `Done` (§5.2: rename is fully synchronous).
        if let Some(ops) = &local_ops {
            self.apply_txn_ops(ops).await;
            self.log_txn_marker(TxnMarker::Resolved { txn_id }).await;
        }
        if self.broadcast_decision(txn_id, &per_server, true).await {
            // Every participant applied and acknowledged the commit: nobody
            // can query this decision again, so drop it from the decision
            // table (and durably, so checkpoints/replay drop it too). A
            // participant that never acked keeps the entry alive forever —
            // it may still recover and ask.
            self.inner.borrow_mut().decided_txns.remove(&txn_id);
            self.log_txn_marker(TxnMarker::Forgotten { txn_id }).await;
        }
        Some(OpResult::Done)
    }

    /// Applies a participant's transaction mutations locally.
    pub(crate) async fn apply_txn_ops(&self, ops: &[TxnOp]) {
        let costs = self.cfg.costs;
        for op in ops {
            match op {
                TxnOp::PutInode { key, attrs } => {
                    let lock = self.locks.inode(key);
                    let _g = lock.write().await;
                    self.cpu
                        .run(costs.lock_op + costs.kv_put + costs.wal_append)
                        .await;
                    self.apply_and_log(
                        None,
                        vec![KvEffect::PutInode(key.clone(), attrs.clone())],
                        None,
                        Vec::new(),
                    )
                    .await;
                }
                TxnOp::DeleteInode { key } => {
                    self.cpu.run(costs.kv_put + costs.wal_append).await;
                    self.apply_and_log(
                        None,
                        vec![KvEffect::DeleteInode(key.clone())],
                        None,
                        Vec::new(),
                    )
                    .await;
                }
                TxnOp::PutDirContent { key, dir, entries } => {
                    let lock = self.locks.inode(key);
                    let _g = lock.write().await;
                    self.cpu
                        .run(
                            costs.lock_op
                                + costs.kv_put * (1 + entries.len() as u64)
                                + costs.wal_append,
                        )
                        .await;
                    // Under grouping placement this server holds the
                    // directory's *content* inode replica (the one whose
                    // size tracks the entry list) under the old key; re-key
                    // it so id-routed reads keep observing the live attrs.
                    let moved = {
                        let inner = self.inner.borrow();
                        match inner.dir_index.get(dir) {
                            Some(old_key) if old_key != key => inner
                                .inodes
                                .peek(old_key)
                                .cloned()
                                .map(|attrs| (old_key.clone(), attrs)),
                            _ => None,
                        }
                    };
                    let mut effects = Vec::new();
                    if let Some((old_key, attrs)) = moved {
                        effects.push(KvEffect::DeleteInode(old_key));
                        effects.push(KvEffect::PutInode(key.clone(), attrs));
                    }
                    effects.push(KvEffect::IndexDir(*dir, key.clone()));
                    effects.extend(entries.iter().map(|e| KvEffect::PutEntry(*dir, e.clone())));
                    self.apply_and_log(None, effects, None, Vec::new()).await;
                }
                TxnOp::DeleteDirContent { dir, names } => {
                    self.cpu
                        .run(costs.kv_put * (1 + names.len() as u64) + costs.wal_append)
                        .await;
                    let mut effects = vec![KvEffect::UnindexDir(*dir)];
                    effects.extend(names.iter().map(|n| KvEffect::DeleteEntry(*dir, n.clone())));
                    self.apply_and_log(None, effects, None, Vec::new()).await;
                }
                TxnOp::DirUpdate { dir_key, entry } => {
                    // Resolve the directory key: prefer the provided key, but
                    // fall back to the owner index when only the id is known.
                    let resolved = {
                        let inner = self.inner.borrow();
                        if inner.inodes.peek(dir_key).is_some() {
                            Some(dir_key.clone())
                        } else {
                            inner.dir_index.get(&entry.dir).cloned()
                        }
                    };
                    if let Some(key) = resolved {
                        let fp = Fingerprint::of_dir(&key.pid, &key.name);
                        let fpg = self.locks.fp_group(fp);
                        let _w = fpg.write().await;
                        // Under asynchronous updates the directory may hold
                        // deferred change-log entries that logically precede
                        // this synchronous update (e.g. the create of the
                        // entry being renamed away). Apply them first, or a
                        // later aggregation would replay them over the
                        // rename's effect (§5.2: rename is fully
                        // synchronous, so it must observe the aggregated
                        // directory).
                        if self.cfg.update_mode.is_async() {
                            self.aggregate_group(fp, None).await;
                        }
                        let lock = self.locks.inode(&key);
                        let _g = lock.write().await;
                        self.cpu
                            .run(costs.lock_op + costs.kv_get + costs.kv_put + costs.wal_append)
                            .await;
                        let effects = self.entry_effects(&key, entry);
                        self.apply_and_log(None, effects, None, vec![entry.entry_id])
                            .await;
                    }
                }
            }
        }
    }

    /// Participant side of the two-phase commit: validate and stage the
    /// mutations, then vote.
    pub(crate) async fn handle_txn_prepare(
        &self,
        txn_id: u64,
        coordinator: ServerId,
        ops: Vec<TxnOp>,
    ) {
        self.cpu.run(self.cfg.costs.software_path).await;
        // A network-duplicated prepare arriving after this participant
        // already committed the transaction must not re-stage it (the
        // re-staged copy would be stranded forever); just re-vote yes.
        if self.inner.borrow().committed_txns.contains(&txn_id) {
            self.send_plain(
                self.cfg.node_of(coordinator),
                Body::Server(ServerMsg::TxnVote {
                    txn_id,
                    from: self.cfg.id,
                    ok: true,
                    dst_type: None,
                }),
            );
            return;
        }
        // Never stage mutations into a shard this server is migrating out:
        // the drain barrier only covers transactions prepared before the
        // freeze, so a prepare arriving during the stream window would
        // commit into the already-extracted slice and be stranded at the
        // old owner after the flip. Vote no — the coordinator aborts, the
        // client retries, and the retry lands after the flip.
        {
            let frozen_shards: Vec<u32> = {
                let inner = self.inner.borrow();
                inner.migrating_shards.iter().copied().collect()
            };
            if !frozen_shards.is_empty()
                && ops.iter().any(|op| {
                    frozen_shards
                        .iter()
                        .any(|s| self.txn_op_touches_shard(op, *s))
                })
            {
                self.send_plain(
                    self.cfg.node_of(coordinator),
                    Body::Server(ServerMsg::TxnVote {
                        txn_id,
                        from: self.cfg.id,
                        ok: false,
                        dst_type: None,
                    }),
                );
                return;
            }
        }
        // Authoritative destination check: an inode overwrite is only legal
        // for file-over-file (POSIX rename). Overwriting a directory, or
        // landing a directory on an existing inode, votes the transaction
        // down; the vote carries the occupying inode's type so the
        // coordinator can reject the client with the right POSIX error and
        // the client never needs its own destination probe.
        let mut dst_type: Option<switchfs_proto::FileType> = None;
        for op in &ops {
            if let TxnOp::PutInode { key, attrs } = op {
                if let Some(existing) = self.inner.borrow().inodes.peek(key) {
                    if existing.is_dir() || attrs.is_dir() {
                        dst_type = Some(existing.file_type);
                        break;
                    }
                }
            }
        }
        let ok = dst_type.is_none();
        self.trace_event(
            None,
            EventKind::TxnPrepare {
                txn: txn_id,
                vote_commit: ok,
            },
        );
        if ok {
            // Durably stage the prepared transaction *before* voting yes: a
            // crash between this vote and the coordinator's decision leaves
            // an in-doubt transaction that recovery resolves by re-asking
            // the coordinator (simplified presumed-abort), instead of
            // silently losing the staged ops and diverging the namespace.
            self.log_txn_marker(TxnMarker::Prepared {
                txn_id,
                coordinator,
                ops: ops.clone(),
            })
            .await;
            let now = self.handle.now();
            self.inner.borrow_mut().prepared_txns.insert(
                txn_id,
                PreparedTxn {
                    ops,
                    coordinator,
                    prepared_at: now,
                },
            );
        }
        self.send_plain(
            self.cfg.node_of(coordinator),
            Body::Server(ServerMsg::TxnVote {
                txn_id,
                from: self.cfg.id,
                ok,
                dst_type,
            }),
        );
    }

    /// Coordinator side: a participant's vote arrived.
    pub(crate) fn handle_txn_vote(
        &self,
        txn_id: u64,
        from: ServerId,
        ok: bool,
        dst_type: Option<switchfs_proto::FileType>,
    ) {
        // Complete the waiting prepare. Duplicates and votes for timed-out
        // prepares find no entry and are dropped.
        let token = self
            .inner
            .borrow_mut()
            .txn_vote_tokens
            .remove(&(txn_id, from));
        if let Some(token) = token {
            self.complete_token(
                token,
                if ok {
                    TokenReply::Ack
                } else {
                    TokenReply::VoteRejected(dst_type)
                },
            );
        }
    }

    /// Coordinator side: a participant acknowledged a commit/abort decision.
    pub(crate) fn handle_txn_ack(&self, txn_id: u64, from: ServerId) {
        let token = self
            .inner
            .borrow_mut()
            .txn_ack_tokens
            .remove(&(txn_id, from));
        if let Some(token) = token {
            self.complete_token(token, TokenReply::Ack);
        }
    }

    /// Participant side: the coordinator's commit/abort decision arrived.
    /// Returns whether the decision is fully applied (and therefore safe to
    /// acknowledge): true when this call applied it, when a commit was
    /// already applied by an earlier copy, or for any abort (idempotent).
    pub(crate) async fn handle_txn_decision(&self, txn_id: u64, commit: bool) -> bool {
        let prepared = self.inner.borrow_mut().prepared_txns.remove(&txn_id);
        if prepared.is_some() {
            self.trace_event(
                None,
                EventKind::TxnDecide {
                    txn: txn_id,
                    commit,
                },
            );
        }
        if !commit {
            if prepared.is_some() {
                // Clear the durable `Prepared` record so recovery does not
                // re-resolve an already-aborted transaction.
                self.log_txn_marker(TxnMarker::Resolved { txn_id }).await;
            }
            return true;
        }
        match prepared {
            Some(prepared) => {
                self.apply_txn_ops(&prepared.ops).await;
                // The staged ops are fully applied (and their effects WAL-
                // logged); mark the prepared record resolved.
                self.log_txn_marker(TxnMarker::Resolved { txn_id }).await;
                let mut inner = self.inner.borrow_mut();
                if inner.committed_txns.insert(txn_id) {
                    inner.committed_txn_order.push_back(txn_id);
                    // Duplicates only arrive within the coordinator's
                    // bounded retry window; cap the memory.
                    while inner.committed_txn_order.len() > 4096 {
                        if let Some(old) = inner.committed_txn_order.pop_front() {
                            inner.committed_txns.remove(&old);
                        }
                    }
                }
                true
            }
            // A duplicate: acknowledgeable only once the first copy's apply
            // has finished.
            None => self.inner.borrow().committed_txns.contains(&txn_id),
        }
    }

    /// Coordinator side of the recovery-time decision query (§5.4.2): a
    /// participant that lost the decision asks what became of `txn_id`.
    /// Answers from the durable decision table; a transaction still in its
    /// voting phase gets "undecided" (the participant keeps its prepared
    /// state and asks again), anything else without a commit record is
    /// presumed aborted.
    pub(crate) async fn handle_txn_decision_query(&self, req_id: u64, txn_id: u64, from: ServerId) {
        self.cpu.run(self.cfg.costs.software_path).await;
        let commit = {
            let inner = self.inner.borrow();
            match inner.decided_txns.get(&txn_id) {
                Some(c) => Some(*c),
                None if inner.active_txns.contains(&txn_id) => None,
                None => Some(false),
            }
        };
        self.send_plain(
            self.cfg.node_of(from),
            Body::Server(ServerMsg::TxnDecisionReply { req_id, commit }),
        );
    }

    /// Resolves one in-doubt prepared transaction: asks its coordinator for
    /// the decision (answering locally for self-coordinated transactions)
    /// and applies or drops the staged ops. Returns the decision, or `None`
    /// when the transaction could not be resolved yet (coordinator
    /// unreachable or still voting) — the prepared state is kept and the
    /// background sweep retries later.
    pub(crate) async fn resolve_prepared_txn(&self, txn_id: u64) -> Option<bool> {
        let coordinator = {
            let mut inner = self.inner.borrow_mut();
            let coordinator = inner.prepared_txns.get(&txn_id).map(|p| p.coordinator)?;
            if !inner.resolving_txns.insert(txn_id) {
                // Another resolution (sweep vs. recovery) is already
                // running.
                return None;
            }
            coordinator
        };
        let decision = if coordinator == self.cfg.id {
            // Self-coordinated (the coordinator crashed mid-commit): the
            // durable decision table is authoritative, and an absent record
            // means the crash preceded the commit point — presumed abort.
            Some(
                self.inner
                    .borrow()
                    .decided_txns
                    .get(&txn_id)
                    .copied()
                    .unwrap_or(false),
            )
        } else {
            let mut decision = None;
            // "Undecided" replies are re-asked a few times; unreachable
            // coordinators exhaust `send_with_ack`'s own retry budget.
            for _ in 0..4 {
                let token = self.next_token();
                let body = Body::Server(ServerMsg::TxnDecisionQuery {
                    req_id: token,
                    txn_id,
                    from: self.cfg.id,
                });
                match self
                    .send_with_ack(self.cfg.node_of(coordinator), token, body)
                    .await
                {
                    Some(TokenReply::Decision(Some(c))) => {
                        decision = Some(c);
                        break;
                    }
                    Some(TokenReply::Decision(None)) => {
                        // Still voting: back off for one decision window.
                        self.handle.sleep(self.cfg.costs.request_timeout * 4).await;
                    }
                    _ => break,
                }
            }
            decision
        };
        if let Some(commit) = decision {
            self.handle_txn_decision(txn_id, commit).await;
        }
        self.inner.borrow_mut().resolving_txns.remove(&txn_id);
        decision
    }

    /// Background sweep run from the proactive loop: resolves prepared
    /// transactions whose decision has been missing for much longer than the
    /// whole decision-retransmission window (e.g. every decision packet was
    /// lost, or the coordinator crashed mid-broadcast and the client gave
    /// up).
    pub(crate) async fn sweep_prepared_txns(&self) {
        // Far beyond the worst-case voting phase (participants × 4 timeouts)
        // so an in-flight transaction is never presumed aborted under its
        // coordinator's feet.
        let threshold = self.cfg.costs.request_timeout * 256;
        let now = self.handle.now();
        let stale: Vec<u64> = {
            let inner = self.inner.borrow();
            inner
                .prepared_txns
                .iter()
                .filter(|(id, p)| {
                    now.duration_since(p.prepared_at) >= threshold
                        && !inner.resolving_txns.contains(*id)
                })
                .map(|(id, _)| *id)
                .collect()
        };
        for txn_id in stale {
            self.resolve_prepared_txn(txn_id).await;
        }
    }

    /// Sends a commit/abort decision to every remote participant and waits
    /// for each acknowledgment, retransmitting over the unreliable fabric.
    /// Returns true when every participant acknowledged (nobody will ever
    /// query this transaction's decision again).
    async fn broadcast_decision(
        &self,
        txn_id: u64,
        per_server: &BTreeMap<ServerId, Vec<TxnOp>>,
        commit: bool,
    ) -> bool {
        let msg = if commit {
            ServerMsg::TxnCommit { txn_id }
        } else {
            ServerMsg::TxnAbort { txn_id }
        };
        let mut all_acked = true;
        for server in per_server.keys() {
            if *server == self.cfg.id {
                continue;
            }
            let mut acked = false;
            for _attempt in 0..=self.cfg.costs.max_retries {
                let token = self.next_token();
                let rx = self.register_token(token);
                self.inner
                    .borrow_mut()
                    .txn_ack_tokens
                    .insert((txn_id, *server), token);
                self.send_plain(self.cfg.node_of(*server), Body::Server(msg.clone()));
                let ack = switchfs_simnet::timeout(
                    &self.handle,
                    self.cfg.costs.request_timeout * 4,
                    rx.recv(),
                )
                .await;
                if matches!(ack, Some(Ok(TokenReply::Ack))) {
                    acked = true;
                    break;
                }
                let mut inner = self.inner.borrow_mut();
                inner.txn_ack_tokens.remove(&(txn_id, *server));
                inner.pending_tokens.remove(&token);
            }
            all_acked &= acked;
        }
        all_acked
    }
}
