//! Directory reads, metadata aggregation, change-log compaction and the
//! proactive push / aggregation machinery (§5.2.2, §5.3).
//!
//! Every set/map on this path uses the deterministic FxHash hasher: the
//! aggregation schedule is part of the replayable simulation, so no
//! std-`RandomState` structure — even a lookup-only one — is allowed here
//! (cross-process same-seed runs must be bit-identical; asserted by
//! `tests/conformance.rs`).

use switchfs_simnet::FxHashSet;

use switchfs_proto::message::{AggregationPayload, Body, ClientRequest, ServerMsg};
use switchfs_proto::message::{CoordMsg, MetaOp};
use switchfs_proto::{
    changelog::CompactedChanges, ChangeLogEntry, ChangeOp, DirEntry, DirId, DirtyRet,
    DirtySetHeader, DirtySetOp, DirtyState, Fingerprint, FsError, MetaKey, OpId, OpResult,
    ServerId, Timestamps,
};
use switchfs_simnet::timeout;

use crate::config::{TrackingMode, UpdateMode};
use crate::server::{AggCollector, Server};
use crate::wal::KvEffect;

impl Server {
    /// Handles `statdir` and `readdir` (§5.2.2). The dirty-set query result
    /// attached by the switch decides whether an aggregation is needed.
    pub(crate) async fn handle_dir_read(
        &self,
        req: &ClientRequest,
        dirty_ret: Option<DirtyRet>,
    ) -> OpResult {
        let costs = self.cfg.costs;
        self.cpu.run(costs.request_overhead()).await;
        if self.is_stale(&req.ancestors) {
            return OpResult::Err(FsError::StaleCache);
        }
        let key = req.op.primary_key().clone();
        let want_listing = matches!(req.op, MetaOp::Readdir { .. });
        if self.cfg.update_mode == UpdateMode::Synchronous {
            // Baseline systems read directories in place: the inode is always
            // up to date, no dirty-set involvement.
            let lock = self.locks.inode(&key);
            let _g = lock.read().await;
            self.cpu.run(costs.lock_op + costs.kv_get).await;
            return self.finish_dir_read(&key, want_listing).await;
        }
        let fp = Fingerprint::of_dir(&key.pid, &key.name);
        let state = self.dirty_state_for_read(fp, dirty_ret).await;

        if state == DirtyState::Scattered {
            // Aggregation path: block every directory read of the fingerprint
            // group, pull the change-logs, apply them, then serve the read.
            let fpg = self.locks.fp_group(fp);
            let _w = fpg.write().await;
            self.cpu.run(costs.lock_op).await;
            // The directory may have been removed concurrently.
            if self.inner.borrow().inodes.peek(&key).is_none() {
                return OpResult::Err(FsError::NotFound);
            }
            // Boxed: the aggregation machinery dominates this future's size
            // but runs only on the scattered path.
            Box::pin(self.aggregate_group(fp, None)).await;
            self.finish_dir_read(&key, want_listing).await
        } else {
            // Normal state: a plain read, serialized after any in-flight
            // aggregation of the same group.
            let fpg = self.locks.fp_group(fp);
            let _r = fpg.read().await;
            let lock = self.locks.inode(&key);
            let _g = lock.read().await;
            self.cpu.run(costs.lock_op + costs.kv_get).await;
            self.finish_dir_read(&key, want_listing).await
        }
    }

    async fn finish_dir_read(&self, key: &MetaKey, want_listing: bool) -> OpResult {
        if want_listing {
            match self.read_listing(key).await {
                Some((attrs, entries)) => OpResult::Listing { attrs, entries },
                None => OpResult::Err(FsError::NotFound),
            }
        } else {
            match self.inner.borrow_mut().inodes.get(key) {
                Some(attrs) if attrs.is_dir() => OpResult::Attrs(attrs),
                Some(_) => OpResult::Err(FsError::NotADirectory),
                None => OpResult::Err(FsError::NotFound),
            }
        }
    }

    /// Runs one aggregation for a fingerprint group this server owns.
    ///
    /// The caller must hold the fingerprint-group write lock. Returns the
    /// number of change-log entries applied.
    pub(crate) async fn aggregate_group(
        &self,
        fp: Fingerprint,
        invalidate: Option<(DirId, MetaKey)>,
    ) -> usize {
        // Counted for the whole call — including the apply phase after the
        // collection completes — so a shard migration's drain barrier can
        // wait for every in-progress aggregation of the shard, not just
        // the ones still collecting (`pending_aggs` empties earlier).
        {
            let mut inner = self.inner.borrow_mut();
            *inner.active_aggs.entry(fp.raw()).or_insert(0) += 1;
        }
        let applied = self.aggregate_group_counted(fp, invalidate).await;
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(c) = inner.active_aggs.get_mut(&fp.raw()) {
                *c -= 1;
                if *c == 0 {
                    inner.active_aggs.remove(&fp.raw());
                }
            }
        }
        applied
    }

    async fn aggregate_group_counted(
        &self,
        fp: Fingerprint,
        invalidate: Option<(DirId, MetaKey)>,
    ) -> usize {
        let costs = self.cfg.costs;
        let others = self.cfg.other_servers();
        let agg_id = self.next_token();
        let payload = AggregationPayload {
            fp,
            agg_id,
            owner: self.cfg.id,
        };
        self.trace_event(
            None,
            switchfs_obs::EventKind::AggregationFanout {
                fp: fp.raw(),
                peers: others.len() as u32,
            },
        );

        // Locally-held entries for directories in this group (the file owner
        // and the directory owner can be the same server).
        let local_entries: Vec<ChangeLogEntry> = {
            let inner = self.inner.borrow();
            inner.changelogs.snapshot_group(fp)
        };

        // Collect remote change-logs, retrying lost requests (§5.4.1).
        // Entries are *accumulated* across attempts (deduplicated by entry
        // id): a server that responded to attempt 1 is acknowledged below,
        // so its attempt-1 entries must survive even if a later attempt's
        // partial collection no longer contains them (the responder may lose
        // its re-sent copy to the same faults that forced the retry).
        let mut remote_entries: Vec<ChangeLogEntry> = Vec::new();
        let mut collected_ids: FxHashSet<OpId> = FxHashSet::default();
        let collect = |remote_entries: &mut Vec<ChangeLogEntry>,
                       collected_ids: &mut FxHashSet<OpId>,
                       entries: Vec<ChangeLogEntry>| {
            for e in entries {
                if collected_ids.insert(e.entry_id) {
                    remote_entries.push(e);
                }
            }
        };
        // Iterated below to send acknowledgments: must have a
        // process-independent iteration order, or the ack packet order (and
        // with it the whole downstream schedule) varies run to run.
        let mut responders: FxHashSet<ServerId> = FxHashSet::default();
        if !others.is_empty() {
            let mut attempt = 0;
            loop {
                let (tx, rx) = switchfs_simnet::sync::oneshot::channel();
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.pending_aggs.insert(
                        agg_id,
                        AggCollector {
                            fp,
                            expected: others.iter().copied().collect(),
                            entries: Vec::new(),
                            done: Some(tx),
                        },
                    );
                }
                self.send_aggregation_request(&payload, invalidate.clone());
                let wait = timeout(
                    &self.handle,
                    costs.request_timeout * (attempt as u64 + 2),
                    rx.recv(),
                )
                .await;
                match wait {
                    Some(Ok(entries)) => {
                        self.inner.borrow_mut().pending_aggs.remove(&agg_id);
                        responders = others.iter().copied().collect();
                        collect(&mut remote_entries, &mut collected_ids, entries);
                        break;
                    }
                    _ => {
                        // Timeout: collect whatever arrived so far, then
                        // retry with a fresh multicast.
                        let collector = self.inner.borrow_mut().pending_aggs.remove(&agg_id);
                        if let Some(mut c) = collector {
                            responders
                                .extend(others.iter().copied().filter(|s| !c.expected.contains(s)));
                            collect(
                                &mut remote_entries,
                                &mut collected_ids,
                                std::mem::take(&mut c.entries),
                            );
                        }
                        attempt += 1;
                        self.inner.borrow_mut().stats.retransmissions += 1;
                        if attempt > costs.max_retries {
                            break;
                        }
                    }
                }
            }
        }

        // Filter out anything already applied (duplicate aggregations,
        // re-sent entries).
        let local_ids: Vec<OpId> = local_entries.iter().map(|e| e.entry_id).collect();
        let mut entries: Vec<ChangeLogEntry> = Vec::new();
        {
            let inner = self.inner.borrow();
            for e in local_entries.into_iter().chain(remote_entries) {
                if !inner.entry_already_applied(&e.entry_id) {
                    entries.push(e);
                }
            }
        }
        let applied = self.apply_entries_to_owned_dirs(fp, &entries).await;

        // Acknowledge the responders so they can mark their entries applied
        // and release their change-log locks (§5.2.2 steps 9a/9b).
        for s in &responders {
            self.send_plain(
                self.cfg.node_of(*s),
                Body::Server(ServerMsg::AggregationAck { agg: payload }),
            );
        }
        // The owner's own deferred entries for this group are now applied.
        let own_ids: FxHashSet<OpId> = entries.iter().map(|e| e.entry_id).collect();
        {
            let mut inner = self.inner.borrow_mut();
            inner.changelogs.discard_applied_in_group(fp, &own_ids);
            inner.push_timers.remove(&fp.raw());
            inner.stats.aggregations += 1;
        }
        self.durable.borrow_mut().wal.mark_applied_where(|rec| {
            rec.pending_entry
                .as_ref()
                .map(|(_, _, e)| own_ids.contains(&e.entry_id))
                .unwrap_or(false)
        });
        // The owner held (and just durably discarded) its own local entries:
        // holder and applier are the same server, so the discard confirms
        // itself and those ids retire into the bounded FIFO immediately.
        {
            let me = self.cfg.id;
            let now = self.handle.now();
            let mut inner = self.inner.borrow_mut();
            inner.queue_discard_confirm(me, me, now, local_ids);
        }
        applied
    }

    /// Sends the aggregation request according to the tracking mode: through
    /// the switch (which removes the fingerprint and multicasts), or by
    /// removing the state locally / at the coordinator and unicasting.
    fn send_aggregation_request(
        &self,
        payload: &AggregationPayload,
        invalidate: Option<(DirId, MetaKey)>,
    ) {
        let body = Body::Server(ServerMsg::AggregationRequest {
            agg: *payload,
            invalidate,
        });
        match self.cfg.tracking {
            TrackingMode::InNetwork => {
                let seq = self.next_remove_seq();
                let hdr = DirtySetHeader::remove(payload.fp, seq);
                // Destination is nominally this server; the switch replaces it
                // with a multicast to every other metadata server.
                self.send_dirty(self.cfg.node, hdr, body);
            }
            TrackingMode::DedicatedServer(coord) => {
                let token = self.next_token();
                self.send_plain(
                    coord,
                    Body::Coord(CoordMsg::Request {
                        token,
                        op: DirtySetOp::Remove,
                        fp: payload.fp,
                        seq: self.next_remove_seq(),
                    }),
                );
                self.multicast_plain(&self.cfg.other_servers(), body);
            }
            TrackingMode::OwnerServer => {
                self.inner.borrow_mut().local_dirty.remove(payload.fp);
                self.multicast_plain(&self.cfg.other_servers(), body);
            }
        }
    }

    /// Applies change-log entries to the directories of a fingerprint group
    /// owned by this server, with or without compaction depending on the
    /// update mode (Fig. 14's "+Async" vs "+Compaction").
    pub(crate) async fn apply_entries_to_owned_dirs(
        &self,
        _fp: Fingerprint,
        entries: &[ChangeLogEntry],
    ) -> usize {
        if entries.is_empty() {
            return 0;
        }
        let costs = self.cfg.costs;
        // Group entries per directory by reference, preserving FIFO order
        // within each — nothing is cloned just to be regrouped.
        let mut per_dir: Vec<(DirId, Vec<&ChangeLogEntry>)> = Vec::new();
        for e in entries {
            match per_dir.iter_mut().find(|(d, _)| *d == e.dir) {
                Some((_, v)) => v.push(e),
                None => per_dir.push((e.dir, vec![e])),
            }
        }
        let mut applied = 0usize;
        for (dir, dir_entries) in per_dir {
            let dir_key = {
                let inner = self.inner.borrow();
                inner.dir_index.get(&dir).cloned()
            };
            let Some(dir_key) = dir_key else {
                // The directory was removed; its deferred updates are moot,
                // but they still count as consumed.
                applied += dir_entries.len();
                continue;
            };
            match self.cfg.update_mode {
                UpdateMode::AsyncCompacted => {
                    let compacted = CompactedChanges::from_entry_refs(dir_entries.iter().copied());
                    {
                        let mut inner = self.inner.borrow_mut();
                        inner.stats.entries_compacted_away += compacted.merged_entries as u64;
                    }
                    // One attribute update for the whole batch.
                    let attr_effect = {
                        let inner = self.inner.borrow();
                        inner.inodes.peek(&dir_key).cloned().map(|mut attrs| {
                            attrs.size = (attrs.size as i64 + compacted.size_delta).max(0) as u64;
                            let mut t = Timestamps::at(compacted.max_timestamp);
                            t.atime = attrs.times.atime;
                            attrs.times.merge_max(&t);
                            KvEffect::PutInode(dir_key.clone(), attrs)
                        })
                    };
                    let mut effects: Vec<KvEffect> = attr_effect.into_iter().collect();
                    for (name, op) in &compacted.entry_ops {
                        match op {
                            ChangeOp::Insert { file_type, mode } => {
                                effects.push(KvEffect::PutEntry(
                                    dir,
                                    DirEntry {
                                        name: name.clone(),
                                        file_type: *file_type,
                                        mode: *mode,
                                    },
                                ));
                            }
                            ChangeOp::Remove => {
                                effects.push(KvEffect::DeleteEntry(dir, name.clone()));
                            }
                        }
                    }
                    // Entry-list mutations are spread across cores: different
                    // keys do not conflict, which is what restores
                    // intra-server parallelism (Fig. 14).
                    let per_core = entries_chunk_cost(
                        compacted.entry_ops.len(),
                        self.cpu.num_cores(),
                        costs.entry_apply,
                    );
                    let mut joins = Vec::new();
                    for chunk_cost in per_core {
                        let cpu = self.cpu.clone();
                        joins.push(self.handle.spawn_with_result(async move {
                            cpu.run(chunk_cost).await;
                        }));
                    }
                    for j in joins {
                        j.join().await;
                    }
                    let ids: Vec<OpId> = dir_entries.iter().map(|e| e.entry_id).collect();
                    self.apply_and_log(None, effects, None, ids).await;
                }
                UpdateMode::AsyncNoCompaction | UpdateMode::Synchronous => {
                    // Apply every entry individually and serially: one
                    // attribute read-modify-write plus one entry mutation per
                    // deferred update, all under the key-value store's
                    // serialization (the "+Async" bar of Fig. 14).
                    for e in &dir_entries {
                        self.cpu.run(costs.entry_apply + costs.kv_get).await;
                        let effects = self.entry_effects(&dir_key, e);
                        self.apply_and_log(None, effects, None, vec![e.entry_id])
                            .await;
                    }
                }
            }
            applied += dir_entries.len();
        }
        self.inner.borrow_mut().stats.entries_applied += applied as u64;
        applied
    }

    // ------------------------------------------------------------------
    // Remote-side aggregation handling.
    // ------------------------------------------------------------------

    /// Handles an aggregation request multicast by the switch (or unicast by
    /// the owner in the server-tracking modes): send the matching change-log
    /// entries to the owner, then hold the change-log read locks until the
    /// owner's acknowledgment arrives (§5.2.2 step 6 / 9a).
    pub(crate) async fn handle_aggregation_request(
        &self,
        agg: AggregationPayload,
        invalidate: Option<(DirId, MetaKey)>,
    ) {
        let costs = self.cfg.costs;
        self.cpu.run(costs.software_path).await;
        if agg.owner == self.cfg.id {
            // Our own multicast reflected back (possible in the unicast
            // modes); nothing to do.
            return;
        }
        if let Some((dir_id, dir_key)) = invalidate {
            self.apply_and_log(
                None,
                vec![KvEffect::Invalidate(dir_id, dir_key)],
                None,
                Vec::new(),
            )
            .await;
        }
        // Read-lock every change-log in the fingerprint group while its
        // entries are in flight.
        let dirs = {
            let inner = self.inner.borrow();
            inner.changelogs.dirs_in_group(agg.fp)
        };
        let mut guards = Vec::new();
        for d in &dirs {
            let lock = self.locks.changelog(d);
            guards.push(lock.read().await);
        }
        self.cpu.run(costs.lock_op * dirs.len().max(1) as u64).await;
        let entries = {
            let inner = self.inner.borrow();
            inner.changelogs.snapshot_group(agg.fp)
        };
        let sent_ids: FxHashSet<OpId> = entries.iter().map(|e| e.entry_id).collect();
        let owner_node = self.cfg.node_of(agg.owner);
        let discard_confirm = self.inner.borrow_mut().take_discard_confirms(agg.owner);
        self.send_plain(
            owner_node,
            Body::Server(ServerMsg::AggregationEntries {
                agg,
                from: self.cfg.id,
                entries,
                discard_confirm,
            }),
        );
        // Wait for the owner's ack (bounded), then mark the entries applied.
        // Only a real ack counts: when a retried aggregation request spawns a
        // second handler for the same agg id, its sender registration drops
        // ours — `recv` then completes with `Err(RecvError)`, which must NOT
        // be mistaken for an acknowledgment (discarding un-applied entries
        // here silently loses deferred directory updates; found by the chaos
        // checker as a listing/inode divergence).
        let (tx, rx) = switchfs_simnet::sync::oneshot::channel();
        self.inner
            .borrow_mut()
            .pending_agg_acks
            .insert(agg.agg_id, tx);
        let acked = matches!(
            timeout(
                &self.handle,
                costs.request_timeout * (costs.max_retries as u64 + 2),
                rx.recv(),
            )
            .await,
            Some(Ok(()))
        );
        self.inner.borrow_mut().pending_agg_acks.remove(&agg.agg_id);
        if acked && !sent_ids.is_empty() {
            {
                let mut inner = self.inner.borrow_mut();
                inner.changelogs.discard_applied_in_group(agg.fp, &sent_ids);
            }
            self.durable.borrow_mut().wal.mark_applied_where(|rec| {
                rec.pending_entry
                    .as_ref()
                    .map(|(_, _, e)| sent_ids.contains(&e.entry_id))
                    .unwrap_or(false)
            });
            // The discard is durable (WAL records marked applied): this
            // holder can never re-send these entries, so tell the owner —
            // on the next message that flows there — to retire them from
            // its duplicate-suppression set.
            let me = self.cfg.id;
            let now = self.handle.now();
            self.inner.borrow_mut().queue_discard_confirm(
                me,
                agg.owner,
                now,
                sent_ids.iter().copied(),
            );
        }
        drop(guards);
    }

    /// Owner side: a server's change-log entries arrived.
    pub(crate) fn handle_aggregation_entries(
        &self,
        agg: AggregationPayload,
        from: ServerId,
        entries: Vec<ChangeLogEntry>,
    ) {
        let mut inner = self.inner.borrow_mut();
        let Some(collector) = inner.pending_aggs.get_mut(&agg.agg_id) else {
            return;
        };
        if collector.expected.remove(&from) {
            collector.entries.extend(entries);
        }
        if collector.expected.is_empty() {
            let all = std::mem::take(&mut collector.entries);
            if let Some(tx) = collector.done.take() {
                let _ = tx.send(all);
            }
        }
    }

    /// Remote side: the owner acknowledged our entries.
    pub(crate) fn handle_aggregation_ack(&self, agg: AggregationPayload) {
        let tx = self.inner.borrow_mut().pending_agg_acks.remove(&agg.agg_id);
        if let Some(tx) = tx {
            let _ = tx.send(());
        }
    }

    // ------------------------------------------------------------------
    // Proactive pushing and proactive aggregation (§5.3).
    // ------------------------------------------------------------------

    /// Owner side: a holder proactively pushed change-log entries.
    pub(crate) async fn handle_changelog_push(
        &self,
        dir_key: MetaKey,
        fp: Fingerprint,
        from: ServerId,
        entries: Vec<ChangeLogEntry>,
    ) {
        let costs = self.cfg.costs;
        self.cpu.run(costs.software_path).await;
        if let Some(first) = entries.first() {
            if self.dir_update_frozen(fp, &first.dir) {
                // The target directory's shard is frozen by an outbound
                // migration: applying now would strand the entries at the
                // old owner after the flip. No ack — the pusher retries,
                // and its placement lookup then routes to the new owner.
                return;
            }
            if !self.owns_dir_updates(fp, &first.dir) {
                // A push that was in flight across a flip: this server no
                // longer owns the directory and already deleted its copy —
                // acknowledging would let the holder discard an entry the
                // new owner never saw. Drop without ack; the holder's next
                // push round routes to the new owner.
                return;
            }
        }
        let fpg = self.locks.fp_group(fp);
        let _w = fpg.write().await;
        let applied_ids: Vec<OpId> = entries.iter().map(|e| e.entry_id).collect();
        let fresh: Vec<ChangeLogEntry> = {
            let inner = self.inner.borrow();
            entries
                .into_iter()
                .filter(|e| !inner.entry_already_applied(&e.entry_id))
                .collect()
        };
        self.apply_entries_to_owned_dirs(fp, &fresh).await;
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.pushes_received += 1;
            let now = self.handle.now();
            inner.push_timers.insert(fp.raw(), now);
        }
        self.send_plain(
            self.cfg.node_of(from),
            Body::Server(ServerMsg::ChangeLogPushAck {
                dir_key,
                applied: applied_ids,
            }),
        );
    }

    /// Pusher side: the owner applied our pushed entries.
    pub(crate) fn handle_push_ack(
        &self,
        src: switchfs_simnet::NodeId,
        _dir_key: MetaKey,
        applied: Vec<OpId>,
    ) {
        let ids: FxHashSet<OpId> = applied.iter().copied().collect();
        {
            let mut inner = self.inner.borrow_mut();
            let dirty: Vec<(DirId, Fingerprint)> = inner.changelogs.dirty_dirs();
            for (_, fp) in dirty {
                inner.changelogs.discard_applied_in_group(fp, &ids);
            }
        }
        self.durable.borrow_mut().wal.mark_applied_where(|rec| {
            rec.pending_entry
                .as_ref()
                .map(|(_, _, e)| ids.contains(&e.entry_id))
                .unwrap_or(false)
        });
        // The discard is durable: confirm it — on the next outgoing message
        // — to the server that *sent this ack* (the one actually holding
        // the ids in its suppression set), not to the directory's current
        // map owner: across a shard flip the two differ, and the confirm
        // would otherwise never reach the real applier.
        if let Some(applier) = self.server_id_of(src) {
            let me = self.cfg.id;
            let now = self.handle.now();
            self.inner
                .borrow_mut()
                .queue_discard_confirm(me, applier, now, applied);
        }
    }

    /// The background loop driving MTU/idle-based pushes (holder side) and
    /// idle-triggered aggregations (owner side).
    pub(crate) async fn proactive_loop(&self) {
        let cfg = self.cfg.proactive;
        loop {
            self.handle.sleep(cfg.scan_interval).await;
            // Shutdown first: a *crashed* server's loop must still terminate
            // when the harness quiesces the simulation, or a run with an
            // unrecovered server never reaches quiescence (the crashed
            // `continue` would re-arm the timer forever).
            if self.shutdown_requested() {
                return;
            }
            if self.inner.borrow().crashed {
                continue;
            }
            self.proactive_push_round().await;
            self.proactive_aggregate_round().await;
            // Resolve prepared transactions whose decision never arrived
            // (§5.4.2): without this, a coordinator crash mid-broadcast
            // would strand staged rename halves forever.
            self.sweep_prepared_txns().await;
        }
    }

    /// One round of holder-side pushes.
    pub(crate) async fn proactive_push_round(&self) {
        let cfg = self.cfg.proactive;
        let now = self.handle.now();
        let mut to_push: Vec<(DirId, MetaKey, Fingerprint, Vec<ChangeLogEntry>)> = Vec::new();
        {
            let inner = self.inner.borrow();
            for (dir, fp) in inner.changelogs.dirty_dirs() {
                if let Some(log) = inner.changelogs.get(&dir) {
                    let idle = now.duration_since(log.last_append()) >= cfg.idle_push_after;
                    if log.pending_bytes() >= cfg.mtu_bytes || (idle && !log.is_empty()) {
                        to_push.push((dir, log.dir_key.clone(), fp, log.snapshot()));
                    }
                }
            }
        }
        for (_dir, dir_key, fp, entries) in to_push {
            self.send_changelog_push(dir_key, fp, entries);
        }
    }

    /// Sends one directory's change-log snapshot to the directory's current
    /// owner, draining any queued discard confirmations addressed to it.
    /// Shared by the steady-state proactive rounds and the decommission
    /// flush so the holder-side push protocol exists exactly once.
    pub(crate) fn send_changelog_push(
        &self,
        dir_key: MetaKey,
        fp: Fingerprint,
        entries: Vec<ChangeLogEntry>,
    ) {
        let owner = self.cfg.placement.dir_owner_by_fp(fp);
        let discard_confirm = self.inner.borrow_mut().take_discard_confirms(owner);
        self.inner.borrow_mut().stats.pushes_sent += 1;
        if self.obs_on() {
            let trace = match entries[..] {
                [ref only] => Some(switchfs_proto::TraceId::of_op(only.entry_id)),
                _ => None,
            };
            self.trace_event(
                trace,
                switchfs_obs::EventKind::ChangeLogPush {
                    dir: entries.first().map_or(0, |e| e.dir.hash64()),
                    entries: entries.len() as u32,
                },
            );
        }
        self.send_plain(
            self.cfg.node_of(owner),
            Body::Server(ServerMsg::ChangeLogPush {
                dir_key,
                fp,
                from: self.cfg.id,
                entries,
                discard_confirm,
            }),
        );
    }

    /// One round of owner-side proactive aggregations.
    pub(crate) async fn proactive_aggregate_round(&self) {
        let cfg = self.cfg.proactive;
        let now = self.handle.now();
        let due: Vec<u64> = {
            let inner = self.inner.borrow();
            inner
                .push_timers
                .iter()
                .filter(|(_, last)| now.duration_since(**last) >= cfg.owner_aggregate_after)
                .map(|(fp, _)| *fp)
                .collect()
        };
        for raw in due {
            let fp = Fingerprint::from_raw(raw);
            // Never start an owner-side aggregation for a group in a shard
            // that is mid-migration: entries pulled and applied after the
            // shard snapshot would be stranded at the old owner when the
            // shard flips. The new owner aggregates after the flip. The
            // fingerprint covers the per-file-hash policy; the group's
            // directory ids cover the (id-hashed) grouping policies.
            let dirs = self.inner.borrow().changelogs.dirs_in_group(fp);
            if self.dir_update_frozen(fp, &DirId::ROOT)
                || dirs.iter().any(|d| self.dir_update_frozen(fp, d))
            {
                continue;
            }
            // Nor for a group whose shard already flipped away: this server
            // would pull remote entries, find no owner-index record, count
            // them "applied" as moot and acknowledge — silently losing
            // updates the new owner never saw. The new owner aggregates.
            if self.cfg.placement.dir_owner_by_fp(fp) != self.cfg.id {
                self.inner.borrow_mut().push_timers.remove(&raw);
                continue;
            }
            let fpg = self.locks.fp_group(fp);
            let _w = fpg.write().await;
            self.aggregate_group(fp, None).await;
        }
    }

    fn shutdown_requested(&self) -> bool {
        self.inner.borrow().shutdown
    }
}

/// Splits `n` entry applications across `cores` chunks and returns the CPU
/// cost of each chunk.
fn entries_chunk_cost(
    n: usize,
    cores: usize,
    unit: switchfs_simnet::SimDuration,
) -> Vec<switchfs_simnet::SimDuration> {
    if n == 0 {
        return Vec::new();
    }
    let cores = cores.max(1);
    let chunks = cores.min(n);
    let base = n / chunks;
    let extra = n % chunks;
    (0..chunks)
        .map(|i| {
            let count = base + usize::from(i < extra);
            unit * count as u64
        })
        .collect()
}
