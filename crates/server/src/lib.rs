//! The SwitchFS metadata server (§5).
//!
//! A metadata server owns a shard of the namespace (per-file hashed inodes
//! plus the directories whose fingerprints map to it), executes metadata
//! operations, and participates in the asynchronous-update protocol:
//!
//! * double-inode operations (`create`, `delete`, `mkdir`, `rmdir`) execute
//!   their *local half* here — update the target inode, persist a change-log
//!   entry for the parent directory, mark the parent *scattered* in the
//!   in-network dirty set, and return in a single round trip (§5.2.1);
//! * directory reads (`statdir`, `readdir`) run the *remote half* — when the
//!   switch reports the directory scattered, the owner aggregates change-log
//!   entries from every server, compacts them and applies them before
//!   replying (§5.2.2, §5.3);
//! * proactive pushing and proactive aggregation bound the amount of work a
//!   directory read can encounter (§5.3);
//! * the write-ahead log plus the recovery procedure of §5.4.2 restore a
//!   crashed server; a rebooted switch is handled by aggregating every
//!   directory.
//!
//! The crate also provides the calibrated [`costs::CostModel`] shared with
//! the baseline systems, so all systems run on identical substrate costs as
//! in the paper's emulation methodology (§7.1).

pub mod changelog;
pub mod config;
pub mod costs;
pub mod locks;
pub mod server;
pub mod wal;

pub use changelog::{ChangeLog, ChangeLogStore};
pub use config::{ProactiveConfig, ServerConfig, TrackingMode, UpdateMode};
pub use costs::CostModel;
pub use locks::LockManager;
pub use server::{DirContent, Server, ServerStats};
pub use switchfs_kvstore::TornTail;
pub use wal::{DurableState, KvEffect, TxnMarker, WalOp};
