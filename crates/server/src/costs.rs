//! The calibrated cost model charged to the simulated clock.
//!
//! The SwitchFS paper's testbed (Tab. 4) uses Xeon Gold servers, Optane
//! persistent memory, 100 GbE NICs with DPDK, and RocksDB in asynchronous
//! write mode. We do not reproduce those components; instead every server
//! code path charges the service times below to its [`switchfs_simnet::CpuPool`],
//! calibrated against the latency breakdown of Fig. 2(b), the operation
//! latencies of Fig. 13 and the ~3 µs RTT of Fig. 15(a). The DESIGN.md table
//! documents each value's source.

use switchfs_simnet::SimDuration;

/// Per-operation CPU and storage service times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed software path per request handled (parsing, dispatch, RPC).
    pub software_path: SimDuration,
    /// One key-value store point lookup.
    pub kv_get: SimDuration,
    /// One key-value store put or delete.
    pub kv_put: SimDuration,
    /// One write-ahead-log append (asynchronous write mode).
    pub wal_append: SimDuration,
    /// Acquiring or releasing one lock.
    pub lock_op: SimDuration,
    /// Appending one change-log entry.
    pub changelog_append: SimDuration,
    /// Applying one change-log entry to a directory inode / entry list.
    pub entry_apply: SimDuration,
    /// Scanning one directory entry during `readdir`.
    pub readdir_per_entry: SimDuration,
    /// Additional fixed software overhead per operation; zero for SwitchFS
    /// and the emulated InfiniFS/CFS baselines, large for the CephFS-like
    /// and IndexFS-like stacks (Fig. 13).
    pub extra_software: SimDuration,
    /// Retransmission timeout for unacknowledged protocol packets (§5.4.1).
    pub request_timeout: SimDuration,
    /// Maximum retransmissions before an operation fails with `ETIMEDOUT`.
    pub max_retries: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            software_path: SimDuration::from_micros_f64(1.2),
            kv_get: SimDuration::from_micros_f64(0.8),
            kv_put: SimDuration::from_micros_f64(1.0),
            wal_append: SimDuration::from_micros_f64(0.5),
            lock_op: SimDuration::from_micros_f64(0.1),
            changelog_append: SimDuration::from_micros_f64(0.4),
            entry_apply: SimDuration::from_micros_f64(0.6),
            readdir_per_entry: SimDuration::from_micros_f64(0.05),
            extra_software: SimDuration::ZERO,
            request_timeout: SimDuration::micros(300),
            max_retries: 8,
        }
    }
}

impl CostModel {
    /// The cost model used for the CephFS-like baseline: a heavyweight
    /// software stack dominates every operation (Fig. 13 reports 587–1140 µs
    /// per metadata operation).
    pub fn cephfs_like() -> Self {
        CostModel {
            extra_software: SimDuration::micros(400),
            request_timeout: SimDuration::millis(5),
            ..Self::default()
        }
    }

    /// The cost model used for the IndexFS-like baseline (Fig. 13 reports
    /// 171–441 µs per operation).
    pub fn indexfs_like() -> Self {
        CostModel {
            extra_software: SimDuration::micros(120),
            request_timeout: SimDuration::millis(2),
            ..Self::default()
        }
    }

    /// Total fixed cost of handling one request before touching storage.
    pub fn request_overhead(&self) -> SimDuration {
        self.software_path + self.extra_software
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_single_digit_microseconds() {
        let c = CostModel::default();
        assert!(c.software_path.as_micros_f64() < 5.0);
        assert!(c.kv_put.as_micros_f64() < 5.0);
        assert_eq!(c.extra_software, SimDuration::ZERO);
        assert_eq!(c.request_overhead(), c.software_path);
    }

    #[test]
    fn baseline_stacks_are_much_heavier() {
        let ceph = CostModel::cephfs_like();
        let index = CostModel::indexfs_like();
        assert!(ceph.extra_software > index.extra_software);
        assert!(index.extra_software > CostModel::default().extra_software);
        assert!(ceph.request_overhead().as_micros() >= 400);
    }
}
