//! The per-server lock manager.
//!
//! SwitchFS serializes conflicting operations with three families of locks
//! (§5.2):
//!
//! * **inode locks** — per `(pid, name)` key; write-locked by the operation
//!   that creates/deletes/updates the inode, read-locked by reads;
//! * **change-log locks** — per parent directory; write-locked while a
//!   double-inode operation appends its deferred update, read-locked while
//!   an aggregation drains the log;
//! * **fingerprint-group locks** — per fingerprint; write-locked for the
//!   duration of an aggregation so that directory reads of any directory in
//!   the group wait for the aggregation to finish (§5.2.2).
//!
//! Locks are created lazily and kept forever; the number of distinct keys a
//! single simulated server touches is bounded by the experiment size.

use std::cell::RefCell;
use std::rc::Rc;

use switchfs_proto::{DirId, Fingerprint, MetaKey};
use switchfs_simnet::sync::SimRwLock;
use switchfs_simnet::FxHashMap;

/// Lazily-created named reader–writer locks.
#[derive(Clone, Default)]
pub struct LockManager {
    inodes: Rc<RefCell<FxHashMap<MetaKey, SimRwLock<()>>>>,
    changelogs: Rc<RefCell<FxHashMap<DirId, SimRwLock<()>>>>,
    fp_groups: Rc<RefCell<FxHashMap<u64, SimRwLock<()>>>>,
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lock guarding the inode stored under `key`.
    pub fn inode(&self, key: &MetaKey) -> SimRwLock<()> {
        let mut map = self.inodes.borrow_mut();
        // Look up by reference first: the common hit path must not clone
        // the key just to satisfy the entry API.
        if let Some(l) = map.get(key) {
            return l.clone();
        }
        let lock = SimRwLock::new(());
        map.insert(key.clone(), lock.clone());
        lock
    }

    /// The lock guarding the change-log of directory `dir`.
    pub fn changelog(&self, dir: &DirId) -> SimRwLock<()> {
        let mut map = self.changelogs.borrow_mut();
        map.entry(*dir)
            .or_insert_with(|| SimRwLock::new(()))
            .clone()
    }

    /// The lock guarding reads and aggregations of a fingerprint group.
    pub fn fp_group(&self, fp: Fingerprint) -> SimRwLock<()> {
        let mut map = self.fp_groups.borrow_mut();
        map.entry(fp.raw())
            .or_insert_with(|| SimRwLock::new(()))
            .clone()
    }

    /// Number of distinct inode locks created so far (used by tests).
    pub fn inode_lock_count(&self) -> usize {
        self.inodes.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use switchfs_simnet::{Sim, SimDuration};

    #[test]
    fn same_key_returns_same_lock() {
        let sim = Sim::new(1);
        let mgr = LockManager::new();
        let key = MetaKey::new(DirId::ROOT, "a");
        let order = Rc::new(Cell::new(0u32));
        {
            let l = mgr.inode(&key);
            let order = order.clone();
            let h = sim.handle();
            sim.spawn(async move {
                let _g = l.write().await;
                h.sleep(SimDuration::micros(10)).await;
                order.set(1);
            });
        }
        {
            let l = mgr.inode(&key);
            let order = order.clone();
            sim.spawn(async move {
                let _g = l.write().await;
                assert_eq!(order.get(), 1, "second writer must wait for the first");
                order.set(2);
            });
        }
        sim.run();
        assert_eq!(order.get(), 2);
        assert_eq!(mgr.inode_lock_count(), 1);
    }

    #[test]
    fn different_keys_do_not_conflict() {
        let sim = Sim::new(1);
        let mgr = LockManager::new();
        let done = Rc::new(Cell::new(0u32));
        for name in ["a", "b", "c"] {
            let l = mgr.inode(&MetaKey::new(DirId::ROOT, name));
            let h = sim.handle();
            let done = done.clone();
            sim.spawn(async move {
                let _g = l.write().await;
                h.sleep(SimDuration::micros(10)).await;
                done.set(done.get() + 1);
            });
        }
        let stats = sim.run();
        assert_eq!(done.get(), 3);
        // All three ran in parallel: total time is one critical section.
        assert_eq!(stats.end_time.as_micros(), 10);
        assert_eq!(mgr.inode_lock_count(), 3);
    }

    #[test]
    fn changelog_and_fp_group_locks_are_distinct_namespaces() {
        let mgr = LockManager::new();
        let dir = DirId::generate(switchfs_proto::ServerId(0), 1);
        let fp = Fingerprint::of_dir(&DirId::ROOT, "x");
        let a = mgr.changelog(&dir);
        let b = mgr.fp_group(fp);
        // Locking one must not affect the other.
        let sim = Sim::new(1);
        sim.spawn(async move {
            let _ga = a.write().await;
            let _gb = b.write().await;
        });
        let stats = sim.run();
        assert_eq!(stats.tasks_pending, 0);
    }
}
