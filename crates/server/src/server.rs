//! The metadata server runtime: state, packet dispatch, single-inode
//! operations, bulk loading and crash/recovery entry points.
//!
//! The double-inode operation handlers live in [`crate::server::ops`], the
//! directory-read / aggregation machinery in [`crate::server::aggregate`],
//! and `rename` in [`crate::server::rename`]. They are sub-modules so they
//! can share the [`Server`] context.
//!
//! Lock ordering (deadlock freedom): handlers acquire locks in the order
//! *parent change-log lock* → *fingerprint-group lock* → *inode lock*, and
//! never wait for a remote server while holding a lock that a remote
//! handler on this server would need in conflicting mode before replying.

pub mod aggregate;
pub mod migrate;
pub mod ops;
pub mod recovery;
pub mod rename;

use std::cell::RefCell;

use std::rc::Rc;
use switchfs_simnet::{FxHashMap, FxHashSet};

use switchfs_kvstore::KvStore;
use switchfs_obs::{EventKind, TraceEvent};
use switchfs_proto::message::{
    Body, ClientRequest, ClientResponse, CoordMsg, MetaOp, NetMsg, OpResult, PacketSeq, ServerMsg,
};
use switchfs_proto::{
    ChangeLogEntry, ClientId, DirEntry, DirId, DirtyRet, DirtySetOp, DirtyState, FileType,
    Fingerprint, FsError, InodeAttrs, MetaKey, OpId, ServerId, Timestamps, TraceId,
};
use switchfs_simnet::sync::oneshot;
use switchfs_simnet::{timeout, CpuPool, Endpoint, NodeId, SimHandle, SimTime};
use switchfs_switch::SoftwareDirtySet;

use crate::changelog::ChangeLogStore;
use crate::config::{ServerConfig, TrackingMode};
use crate::locks::LockManager;
use crate::wal::{DurableState, KvEffect, WalOp};

/// Counters describing what a server has done; read by tests and by the
/// evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Client operations answered (including errors).
    pub ops_completed: u64,
    /// Client operations that failed.
    pub ops_failed: u64,
    /// Aggregations this server initiated as directory owner.
    pub aggregations: u64,
    /// Change-log entries applied to directories this server owns.
    pub entries_applied: u64,
    /// Entries that change-log compaction merged away before applying.
    pub entries_compacted_away: u64,
    /// Proactive change-log pushes sent.
    pub pushes_sent: u64,
    /// Proactive change-log pushes received and applied.
    pub pushes_received: u64,
    /// Asynchronous commits that overflowed the dirty set and fell back to a
    /// synchronous update.
    pub fallback_syncs: u64,
    /// Synchronous remote directory updates served (baseline path and
    /// overflow fallback).
    pub remote_updates: u64,
    /// Retransmissions performed by this server.
    pub retransmissions: u64,
    /// Crash recoveries completed.
    pub recoveries: u64,
    /// Shards this server migrated away (live scale-out): completed
    /// freeze→stream→flip cycles.
    pub shards_migrated_out: u64,
    /// Shard installs this server applied. Counts install *events*: a
    /// migration retried after a lost acknowledgment (the source never saw
    /// the ack, re-streamed under a fresh token, and the target purged the
    /// stale first copy) applies — and counts — twice, so under faults
    /// this can exceed `shards_migrated_out`.
    pub shards_migrated_in: u64,
    /// Requests rejected because the client routed them with a stale shard
    /// map (answered with the current map for refresh-and-retry).
    pub wrong_owner_rejects: u64,
}

/// Reply delivered to a waiting double-inode handler when its asynchronous
/// commit resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CommitSignal {
    /// The switch stored the fingerprint and mirrored the packet back.
    Mirrored,
    /// The insert overflowed; the fallback server applied the update
    /// synchronously and notified us. Carries the applier's identity (from
    /// the notification's source) so the later discard confirmation reaches
    /// the server that actually holds the id — which may differ from the
    /// current map owner if the shard flips in between.
    FallbackDone(Option<ServerId>),
}

/// Reply to a token-matched request (coordinator RPC, remote update, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokenReply {
    /// A dirty-set RPC result.
    Dirty(DirtyRet),
    /// A remote update / mark-dirty acknowledgment.
    Ack,
    /// A remote update failed.
    Failed(FsError),
    /// A transaction participant voted no because an inode of this type
    /// occupies the destination key (typed rename reject).
    VoteRejected(Option<FileType>),
    /// A type probe's answer: the type of the inode under the probed key.
    Type(Option<FileType>),
    /// A recovery-time decision query's answer: `Some(commit)` once the
    /// coordinator knows the outcome, `None` while the transaction is still
    /// in its voting phase (ask again later).
    Decision(Option<bool>),
}

/// One directory's entry list: a name-ordered map for O(log n) mutation
/// plus a lazily materialized, `Rc`-shared listing for O(1) reads.
///
/// `readdir`/`statdir`, the duplicate-suppression response cache and every
/// in-flight packet copy all share the one materialized allocation; a
/// mutation drops the memo (copy-on-write at the granularity of the whole
/// listing) and the next reader rebuilds it once. This keeps hot mutate
/// paths free of per-entry memmoves and hot read paths free of deep copies.
#[derive(Debug, Clone, Default)]
pub struct DirContent {
    map: std::collections::BTreeMap<String, DirEntry>,
    listing: Option<Rc<Vec<DirEntry>>>,
}

impl DirContent {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the directory lists nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True when an entry called `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Iterates the entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &DirEntry> {
        self.map.values()
    }

    /// The shared, name-sorted listing; materialized on first use after a
    /// mutation and shared (`Rc`) by every subsequent reader.
    pub fn listing(&mut self) -> Rc<Vec<DirEntry>> {
        match &self.listing {
            Some(l) => Rc::clone(l),
            None => {
                let l = Rc::new(self.map.values().cloned().collect::<Vec<_>>());
                self.listing = Some(Rc::clone(&l));
                l
            }
        }
    }

    /// Inserts or replaces an entry, invalidating the shared listing memo.
    pub fn insert(&mut self, entry: DirEntry) {
        self.listing = None;
        self.map.insert(entry.name.clone(), entry);
    }

    /// Removes an entry by name, invalidating the shared listing memo.
    pub fn remove(&mut self, name: &str) {
        self.listing = None;
        self.map.remove(name);
    }
}

/// Collector for an aggregation this server owns. The expected set uses the
/// deterministic hasher like every other aggregation-path structure: no
/// std-`RandomState` may influence (even only potentially) the replayable
/// schedule.
pub(crate) struct AggCollector {
    pub fp: Fingerprint,
    pub expected: FxHashSet<ServerId>,
    pub entries: Vec<ChangeLogEntry>,
    pub done: Option<oneshot::Sender<Vec<ChangeLogEntry>>>,
}

/// Cap on cached responses kept per client when the piggybacked acked
/// watermark lags (e.g. a client that stops talking to this server): the
/// fallback eviction drops the oldest (lowest-sequence) entries first, which
/// are exactly the ones the client can no longer retransmit.
pub(crate) const COMPLETED_OPS_PER_CLIENT_CAP: usize = 512;

/// How long a retired entry id stays in the suppression FIFO before
/// eviction. The only copies of an entry that can arrive *after* its
/// holder's discard confirmation are ones sent earlier and still sitting in
/// the fabric or in a handler queue (e.g. a re-pushed batch whose handler
/// is parked behind the fingerprint-group lock while the confirmation is
/// processed at dispatch); those windows are bounded by virtual time, not
/// by a count, so eviction is by retention age. 256 retransmission
/// timeouts (~100 ms of virtual time) dwarfs every retry budget and every
/// observed queueing backlog, while keeping the FIFO bounded by the recent
/// apply *rate* instead of the server's lifetime.
pub(crate) const RETIRED_ENTRY_RETENTION: switchfs_simnet::SimDuration =
    switchfs_simnet::SimDuration::millis(100);

/// The volatile state of a metadata server. Rebuilt from the WAL after a
/// crash.
pub(crate) struct ServerInner {
    /// Inode store: `(pid, name)` → attributes.
    pub inodes: KvStore<MetaKey, InodeAttrs>,
    /// Entry-list store: directory id → entry list with a shareable
    /// materialized listing (see [`DirContent`]). Mutations go through
    /// [`ServerInner::put_entry`] / [`ServerInner::remove_entry`].
    pub entries: KvStore<DirId, DirContent>,
    /// Index of directories this server owns: id → key.
    pub dir_index: FxHashMap<DirId, MetaKey>,
    /// Per-directory change-logs of deferred updates to remote parents.
    pub changelogs: ChangeLogStore,
    /// Invalidation list (§5.2): directories removed/renamed elsewhere whose
    /// client cache entries must be invalidated lazily.
    pub invalidation: FxHashMap<DirId, MetaKey>,
    /// Remote change-log entries applied but not yet confirmed discarded by
    /// their holders (duplicate suppression). Bounded: once a holder's
    /// piggybacked `discard_confirm` arrives — the holder durably dropped
    /// the entry after the acknowledgment round trip and can never re-send
    /// it — the id moves to the [`ServerInner::retired_entry_ids`] FIFO, so
    /// this set tracks the in-flight confirmation window, not the server's
    /// lifetime.
    pub applied_entry_ids: FxHashSet<OpId>,
    /// Recently retired (holder-confirmed) entry ids, still honored for
    /// duplicate suppression. A copy of a confirmed entry can only arrive
    /// within a bounded virtual-time window (fabric reorder + handler
    /// queueing), so ids are evicted once they outlive
    /// [`RETIRED_ENTRY_RETENTION`] — the set is bounded by the recent apply
    /// rate, not by the server's lifetime.
    pub retired_entry_ids: FxHashSet<OpId>,
    /// Retirement times of `retired_entry_ids` in FIFO order, driving the
    /// retention-based eviction.
    pub retired_entry_order: std::collections::VecDeque<(SimTime, OpId)>,
    /// Ids this server discarded (as a change-log holder) after an
    /// acknowledgment round trip, awaiting confirmation to the applying
    /// server. Drained onto the next message that already flows there
    /// (push, aggregation reply, remote update) — no extra packets.
    pub pending_discard_confirms: FxHashMap<ServerId, Vec<OpId>>,
    /// Responses already sent, re-sent verbatim on duplicate requests.
    /// Keyed per client and ordered by sequence so the piggybacked acked
    /// watermark can prune everything the client will never retransmit —
    /// the map is bounded by each client's in-flight window (plus the
    /// [`COMPLETED_OPS_PER_CLIENT_CAP`] fallback), not by uptime.
    pub completed_ops: FxHashMap<ClientId, std::collections::BTreeMap<u64, ClientResponse>>,
    /// Requests currently executing; retransmissions of these are dropped
    /// (the client's timer re-asks until the cached response exists). This
    /// keeps slow multi-round operations like the rename 2PC from running
    /// twice concurrently for one op id, and gives shard migration a
    /// drain-barrier: the freeze waits until every op in flight at freeze
    /// time has finished (new ones are gated per-shard).
    pub in_flight_ops: FxHashSet<OpId>,
    /// Per-sender window of recently seen request packet sequences.
    /// Detects *network-duplicated* request packets (same `PacketSeq`;
    /// deliberate retransmissions carry fresh ones, §5.4.1): a delayed
    /// duplicate of an operation the client already acknowledged would
    /// otherwise re-execute, because its cached response was legitimately
    /// pruned by the acked watermark. Bounded: duplicates only arrive
    /// within the network's reorder window, so a short per-sender FIFO
    /// suffices.
    pub seen_request_pkts: FxHashMap<u32, (FxHashSet<u64>, std::collections::VecDeque<u64>)>,
    /// Shards currently frozen by an outbound live migration: requests
    /// touching them are dropped (clients retransmit; after the flip the
    /// retry is re-routed to the new owner).
    pub migrating_shards: std::collections::BTreeSet<u32>,
    /// `(source node, token)` of shard installs already applied, so a
    /// retransmitted install is acked without double-appending the shard's
    /// pending change-log entries.
    pub applied_installs: FxHashSet<(u32, u64)>,
    /// Shard installs currently being applied; a retransmission racing the
    /// still-running first copy is dropped (the source's retransmission
    /// timer re-asks until the apply finished), exactly like in-flight
    /// client requests.
    pub in_progress_installs: FxHashSet<(u32, u64)>,
    /// Local software dirty set, used in [`TrackingMode::OwnerServer`].
    pub local_dirty: SoftwareDirtySet,
    /// Per-fingerprint time of the last received proactive push, driving
    /// owner-side proactive aggregation.
    pub push_timers: FxHashMap<u64, SimTime>,
    /// Counter used to build fresh directory ids.
    pub dir_counter: u64,
    /// Counter for request tokens, aggregation ids and packet sequences.
    pub next_token: u64,
    /// Monotonic remove-sequence number for dirty-set removes (§5.4.1).
    pub remove_seq: u64,
    /// Pending asynchronous commits: token → waker.
    pub pending_commits: FxHashMap<u64, oneshot::Sender<CommitSignal>>,
    /// Pending token-matched acknowledgments.
    pub pending_tokens: FxHashMap<u64, oneshot::Sender<TokenReply>>,
    /// Aggregations in flight, keyed by aggregation id.
    pub pending_aggs: FxHashMap<u64, AggCollector>,
    /// Owner-side aggregations currently executing (collection *and* apply
    /// phase), counted per raw fingerprint; a shard migration's drain
    /// barrier waits on these.
    pub active_aggs: FxHashMap<u64, usize>,
    /// Remote-side aggregation lock holders waiting for the owner's ack.
    pub pending_agg_acks: FxHashMap<u64, oneshot::Sender<()>>,
    /// Rename transactions prepared on this participant, awaiting a decision.
    /// Durable: every entry has a matching WAL `TxnMarker::Prepared` record
    /// (cleared by `TxnMarker::Resolved`), so a crash between prepare and
    /// decision leaves an in-doubt transaction that recovery resolves by
    /// re-querying the coordinator instead of silently dropping it.
    pub prepared_txns: FxHashMap<u64, crate::server::rename::PreparedTxn>,
    /// Commit decisions this server made as a rename coordinator, rebuilt
    /// from WAL `TxnMarker::Decided` records; answers recovery-time decision
    /// queries (absent = presumed abort).
    pub decided_txns: FxHashMap<u64, bool>,
    /// Transactions this server currently coordinates whose outcome is not
    /// yet decided: a decision query for one of these gets "undecided, ask
    /// again" rather than a premature presumed-abort.
    pub active_txns: FxHashSet<u64>,
    /// Prepared transactions currently being resolved by a decision query
    /// (recovery or the background sweep); prevents duplicate resolutions.
    pub resolving_txns: FxHashSet<u64>,
    /// WAL-append slow-down multiplier (chaos disk-latency spikes; 1 = no
    /// spike).
    pub disk_slowdown: u64,
    /// Coordinator-side routing of transaction votes to waiting tokens,
    /// keyed by `(txn_id, participant)` so a duplicated vote from one
    /// participant cannot be credited to another (§5.4.1).
    pub txn_vote_tokens: FxHashMap<(u64, ServerId), u64>,
    /// Coordinator-side routing of decision acknowledgments, kept separate
    /// from the vote table so a duplicated vote cannot masquerade as a
    /// commit acknowledgment.
    pub txn_ack_tokens: FxHashMap<(u64, ServerId), u64>,
    /// Transactions whose commit this participant fully applied; lets a
    /// retransmitted `TxnCommit` be acked if and only if the first copy
    /// finished applying (a copy racing a still-running apply is dropped).
    /// Bounded FIFO: duplicates only arrive within the coordinator's retry
    /// window, so old ids are evicted once the set outgrows the cap.
    pub committed_txns: FxHashSet<u64>,
    /// Insertion order of `committed_txns`, driving the FIFO eviction.
    pub committed_txn_order: std::collections::VecDeque<u64>,
    /// Whether the server is currently crashed (drops all work).
    pub crashed: bool,
    /// Whether the server was gracefully decommissioned: it owns no shards,
    /// serves no work, and only answers client requests with a `WrongOwner`
    /// redirect carrying the current map — the tombstone that lets clients
    /// holding a pre-shrink map refresh instead of timing out against a
    /// silent node. (A real deployment keeps exactly this thin redirector
    /// until the lease on the old membership expires.)
    pub decommissioned: bool,
    /// Whether the server is recovering or migrating (rejects client work).
    pub unavailable: bool,
    /// Whether background loops should terminate (end of experiment).
    pub shutdown: bool,
    /// Statistics.
    pub stats: ServerStats,
}

impl ServerInner {
    fn new() -> Self {
        ServerInner {
            inodes: KvStore::new(),
            entries: KvStore::new(),
            dir_index: FxHashMap::default(),
            changelogs: ChangeLogStore::new(),
            invalidation: FxHashMap::default(),
            applied_entry_ids: FxHashSet::default(),
            retired_entry_ids: FxHashSet::default(),
            retired_entry_order: std::collections::VecDeque::new(),
            pending_discard_confirms: FxHashMap::default(),
            completed_ops: FxHashMap::default(),
            in_flight_ops: FxHashSet::default(),
            seen_request_pkts: FxHashMap::default(),
            migrating_shards: std::collections::BTreeSet::new(),
            applied_installs: FxHashSet::default(),
            in_progress_installs: FxHashSet::default(),
            local_dirty: SoftwareDirtySet::new(),
            push_timers: FxHashMap::default(),
            dir_counter: 0,
            next_token: 1,
            remove_seq: 0,
            pending_commits: FxHashMap::default(),
            pending_tokens: FxHashMap::default(),
            pending_aggs: FxHashMap::default(),
            active_aggs: FxHashMap::default(),
            pending_agg_acks: FxHashMap::default(),
            prepared_txns: FxHashMap::default(),
            decided_txns: FxHashMap::default(),
            active_txns: FxHashSet::default(),
            resolving_txns: FxHashSet::default(),
            disk_slowdown: 1,
            txn_vote_tokens: FxHashMap::default(),
            txn_ack_tokens: FxHashMap::default(),
            committed_txns: FxHashSet::default(),
            committed_txn_order: std::collections::VecDeque::new(),
            crashed: false,
            decommissioned: false,
            unavailable: false,
            shutdown: false,
            stats: ServerStats::default(),
        }
    }

    /// Applies one replayable effect to the volatile stores.
    pub fn apply_effect(&mut self, effect: &KvEffect) {
        match effect {
            KvEffect::PutInode(k, v) => {
                self.inodes.put(k.clone(), v.clone());
            }
            KvEffect::DeleteInode(k) => {
                self.inodes.delete(k);
            }
            KvEffect::PutEntry(dir, e) => {
                self.put_entry(*dir, e.clone());
            }
            KvEffect::DeleteEntry(dir, name) => {
                self.remove_entry(*dir, name);
            }
            KvEffect::IndexDir(id, key) => {
                self.dir_index.insert(*id, key.clone());
            }
            KvEffect::UnindexDir(id) => {
                self.dir_index.remove(id);
            }
            KvEffect::Invalidate(id, key) => {
                self.invalidation.insert(*id, key.clone());
            }
        }
    }

    /// Inserts or replaces an entry in a directory's list, invalidating the
    /// directory's shared listing memo.
    pub fn put_entry(&mut self, dir: DirId, entry: DirEntry) {
        if let Some(content) = self.entries.get_mut_counted(&dir) {
            content.insert(entry);
        } else {
            let mut content = DirContent::default();
            content.insert(entry);
            self.entries.put(dir, content);
        }
    }

    /// Removes an entry from a directory's list, dropping the list once it
    /// becomes empty.
    pub fn remove_entry(&mut self, dir: DirId, name: &str) {
        let emptied = match self.entries.get_mut_counted(&dir) {
            Some(content) => {
                content.remove(name);
                content.is_empty()
            }
            None => false,
        };
        if emptied {
            self.entries.delete(&dir);
        }
    }

    /// True if `dir` currently lists an entry called `name`.
    pub fn entry_exists(&self, dir: &DirId, name: &str) -> bool {
        self.entries.peek(dir).is_some_and(|c| c.contains(name))
    }

    /// The cached response of a completed operation, if still retained.
    pub fn cached_response(&self, op_id: &OpId) -> Option<&ClientResponse> {
        self.completed_ops.get(&op_id.client)?.get(&op_id.seq)
    }

    /// Caches a response for duplicate suppression, evicting the oldest
    /// entries past the per-client cap (op ids are per-client sequences, so
    /// the lowest sequence is the least likely to be retransmitted).
    pub fn cache_response(&mut self, response: ClientResponse) {
        let per = self.completed_ops.entry(response.op_id.client).or_default();
        per.insert(response.op_id.seq, response);
        while per.len() > COMPLETED_OPS_PER_CLIENT_CAP {
            let oldest = *per.keys().next().expect("cap overflow implies entries");
            per.remove(&oldest);
        }
    }

    /// Prunes every cached response of `client` below its piggybacked acked
    /// watermark: the client confirmed receipt of those responses and will
    /// never retransmit the operations.
    pub fn prune_completed(&mut self, client: ClientId, acked_below: u64) {
        if acked_below == 0 {
            return;
        }
        if let Some(per) = self.completed_ops.get_mut(&client) {
            // Only rebuild the map when there is actually something to
            // drop — this runs on every request.
            if per
                .first_key_value()
                .is_some_and(|(seq, _)| *seq < acked_below)
            {
                *per = per.split_off(&acked_below);
                if per.is_empty() {
                    self.completed_ops.remove(&client);
                }
            }
        }
    }

    /// Total cached responses across all clients (test observability).
    pub fn completed_ops_len(&self) -> usize {
        self.completed_ops.values().map(|m| m.len()).sum()
    }

    /// True when a remote change-log entry was already applied here — still
    /// awaiting its holder's discard confirmation, or recently retired.
    pub fn entry_already_applied(&self, id: &OpId) -> bool {
        self.applied_entry_ids.contains(id) || self.retired_entry_ids.contains(id)
    }

    /// Retires one applied entry id: its holder confirmed the durable
    /// discard, so the only copies that can still arrive were sent earlier
    /// and are bounded in (virtual) time — covered by the retention FIFO
    /// this moves the id into.
    pub fn retire_entry_id(&mut self, id: OpId, now: SimTime) {
        self.applied_entry_ids.remove(&id);
        if self.retired_entry_ids.insert(id) {
            self.retired_entry_order.push_back((now, id));
        }
        while let Some((at, old)) = self.retired_entry_order.front().copied() {
            if now.duration_since(at) <= RETIRED_ENTRY_RETENTION {
                break;
            }
            self.retired_entry_order.pop_front();
            self.retired_entry_ids.remove(&old);
        }
    }

    /// Queues discard confirmations for `applier`, to ride on the next
    /// message that flows there. `applier == self` short-circuits to an
    /// immediate retire (the owner applied its own entries).
    pub fn queue_discard_confirm(
        &mut self,
        me: ServerId,
        applier: ServerId,
        now: SimTime,
        ids: impl IntoIterator<Item = OpId>,
    ) {
        if applier == me {
            for id in ids {
                self.retire_entry_id(id, now);
            }
        } else {
            self.pending_discard_confirms
                .entry(applier)
                .or_default()
                .extend(ids);
        }
    }

    /// Takes the pending discard confirmations addressed to `applier` (to
    /// attach to an outgoing message).
    pub fn take_discard_confirms(&mut self, applier: ServerId) -> Vec<OpId> {
        self.pending_discard_confirms
            .remove(&applier)
            .unwrap_or_default()
    }

    /// Records a request packet's sequence number; returns false when this
    /// exact packet was already seen (a network duplicate to drop). The
    /// per-sender window is FIFO-bounded: duplicates arrive within the
    /// fabric's reorder window, far shorter than 128 packets.
    pub fn note_request_pkt(&mut self, sender: u32, seq: u64) -> bool {
        const PKT_WINDOW: usize = 128;
        let (set, order) = self.seen_request_pkts.entry(sender).or_default();
        if !set.insert(seq) {
            return false;
        }
        order.push_back(seq);
        while order.len() > PKT_WINDOW {
            let old = order.pop_front().expect("window overflow implies entries");
            set.remove(&old);
        }
        true
    }
}

/// One SwitchFS metadata server, bound to a simulated network endpoint.
#[derive(Clone)]
pub struct Server {
    pub(crate) handle: SimHandle,
    pub(crate) cpu: CpuPool,
    pub(crate) endpoint: Rc<Endpoint<NetMsg>>,
    pub(crate) cfg: Rc<ServerConfig>,
    pub(crate) inner: Rc<RefCell<ServerInner>>,
    pub(crate) durable: Rc<RefCell<DurableState>>,
    pub(crate) locks: LockManager,
    /// Snapshot of `cfg.obs.on()` taken at construction. Hot-path
    /// instrumentation guards read this plain immutable bool instead of
    /// the recorder's interior-mutable flag (a `Cell` behind two `Rc`s
    /// that the optimizer must re-read at every site). Recording is
    /// always decided at cluster construction, so the snapshot never
    /// goes stale.
    pub(crate) obs_enabled: bool,
}

impl Server {
    /// Creates a server bound to `endpoint`. `durable` is the crash-surviving
    /// WAL/checkpoint bundle owned by the cluster harness.
    pub fn new(
        handle: SimHandle,
        endpoint: Endpoint<NetMsg>,
        cfg: ServerConfig,
        durable: Rc<RefCell<DurableState>>,
    ) -> Self {
        let cpu = CpuPool::new(handle.clone(), cfg.cores);
        let obs_enabled = cfg.obs.on();
        Server {
            handle,
            cpu,
            endpoint: Rc::new(endpoint),
            cfg: Rc::new(cfg),
            inner: Rc::new(RefCell::new(ServerInner::new())),
            durable,
            locks: LockManager::new(),
            obs_enabled,
        }
    }

    /// This server's identity.
    pub fn id(&self) -> ServerId {
        self.cfg.id
    }

    /// This server's network node.
    pub fn node(&self) -> NodeId {
        self.cfg.node
    }

    /// Snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.borrow().stats
    }

    /// Combined counters of the server's KV stores (inode + entry-list).
    pub fn kv_stats(&self) -> switchfs_kvstore::KvStats {
        let inner = self.inner.borrow();
        let a = inner.inodes.stats();
        let b = inner.entries.stats();
        switchfs_kvstore::KvStats {
            gets: a.gets + b.gets,
            puts: a.puts + b.puts,
            deletes: a.deletes + b.deletes,
            scans: a.scans + b.scans,
        }
    }

    /// Number of change-log entries waiting to be applied remotely.
    pub fn pending_changelog_entries(&self) -> usize {
        self.inner.borrow().changelogs.total_pending()
    }

    /// Number of inodes stored on this server.
    pub fn inode_count(&self) -> usize {
        self.inner.borrow().inodes.len()
    }

    /// Number of prepared-but-undecided transactions staged on this server
    /// (test/chaos observability).
    pub fn prepared_txn_count(&self) -> usize {
        self.inner.borrow().prepared_txns.len()
    }

    /// Total duplicate-suppression cache entries across all clients
    /// (test observability for the bounded-dedup guarantee).
    pub fn completed_op_count(&self) -> usize {
        self.inner.borrow().completed_ops_len()
    }

    /// Applied-but-unconfirmed remote change-log entry ids currently held
    /// (test observability for the bounded `applied_entry_ids` guarantee).
    pub fn applied_entry_id_count(&self) -> usize {
        self.inner.borrow().applied_entry_ids.len()
    }

    /// Retired (holder-confirmed) entry ids currently in the bounded FIFO.
    pub fn retired_entry_id_count(&self) -> usize {
        self.inner.borrow().retired_entry_ids.len()
    }

    /// Number of shards currently frozen by outbound migrations.
    pub fn migrating_shard_count(&self) -> usize {
        self.inner.borrow().migrating_shards.len()
    }

    /// Sets the WAL-append slow-down multiplier (chaos disk-latency spikes;
    /// 1 restores normal speed).
    pub fn set_disk_slowdown(&self, mult: u64) {
        self.inner.borrow_mut().disk_slowdown = mult.max(1);
    }

    /// Looks up an inode directly (test/verification helper; does not charge
    /// simulated cost).
    pub fn peek_inode(&self, key: &MetaKey) -> Option<InodeAttrs> {
        self.inner.borrow().inodes.peek(key).cloned()
    }

    /// Lists a directory's entry names directly (test/verification helper).
    pub fn peek_entries(&self, dir: &DirId) -> Vec<String> {
        let inner = self.inner.borrow();
        inner
            .entries
            .peek(dir)
            .map(|c| c.iter().map(|e| e.name.clone()).collect())
            .unwrap_or_default()
    }

    /// Starts the server: spawns the packet loop and, if enabled, the
    /// proactive push/aggregation loop.
    pub fn start(&self) {
        let me = self.clone();
        self.handle.spawn(async move { me.run_loop().await });
        if self.cfg.proactive.enabled {
            let me = self.clone();
            self.handle.spawn(async move { me.proactive_loop().await });
        }
    }

    async fn run_loop(&self) {
        loop {
            let Some(pkt) = self.endpoint.recv().await else {
                return;
            };
            if self.inner.borrow().crashed {
                continue;
            }
            let me = self.clone();
            self.handle.spawn(async move {
                me.dispatch(pkt.src, pkt.payload).await;
            });
        }
    }

    async fn dispatch(&self, src: NodeId, msg: NetMsg) {
        if self.inner.borrow().crashed {
            return;
        }
        if self.inner.borrow().decommissioned {
            // Redirect tombstone: the server owns nothing and serves
            // nothing, but a client that still routes here with a
            // pre-shrink map gets the current map back instead of a
            // timeout — the ordinary WrongOwner refresh-and-retry path.
            // Everything else (stray server-to-server traffic addressed to
            // the previous incarnation) is dropped.
            if let Body::Request(req) = msg.body {
                self.inner.borrow_mut().stats.wrong_owner_rejects += 1;
                self.trace_event(
                    Some(TraceId::of_op(req.op_id)),
                    EventKind::WrongOwner {
                        op: req.op_id,
                        client_epoch: req.epoch,
                    },
                );
                self.send_plain(
                    src,
                    Body::Response(ClientResponse {
                        op_id: req.op_id,
                        result: OpResult::WrongOwner {
                            map: self.cfg.placement.snapshot(),
                        },
                        server: self.cfg.id,
                    }),
                );
            }
            return;
        }
        let dirty_ret = msg.dirty.map(|h| h.ret);
        let pkt_seq = msg.pkt_seq;
        match msg.body {
            // Boxed: the packet-loop spawns one dispatch future per packet;
            // keeping it at pointer size makes that copy cheap and pays for
            // the handler box only when a request/server message arrives.
            Body::Request(req) => {
                // Network-duplicate suppression below the op-level cache:
                // a delayed duplicate of an already-acknowledged operation
                // must not re-execute after the acked watermark pruned its
                // cached response. Retransmissions carry fresh packet
                // sequences and pass through.
                if !self
                    .inner
                    .borrow_mut()
                    .note_request_pkt(pkt_seq.sender, pkt_seq.seq)
                {
                    return;
                }
                Box::pin(self.handle_client_request(src, req, dirty_ret)).await
            }
            Body::Server(smsg) => Box::pin(self.handle_server_msg(src, smsg, dirty_ret)).await,
            Body::Coord(CoordMsg::Reply { token, ret }) => {
                self.complete_token(token, TokenReply::Dirty(ret));
            }
            Body::Coord(CoordMsg::Request { .. }) => {
                // Metadata servers are not coordinators; ignore.
            }
            Body::Response(_) | Body::Empty => {}
        }
    }

    async fn handle_client_request(
        &self,
        client_node: NodeId,
        req: Rc<ClientRequest>,
        dirty_ret: Option<DirtyRet>,
    ) {
        // Duplicate suppression: a retransmitted request gets the cached
        // response back without re-executing. (Bind the lookup first so the
        // RefCell borrow is released before sending.)
        let cached = self.inner.borrow().cached_response(&req.op_id).cloned();
        if let Some(resp) = cached {
            self.send_plain(client_node, Body::Response(resp));
            return;
        }
        // The piggybacked watermark bounds the dedup cache: everything this
        // client acknowledged receiving can never be retransmitted again.
        self.inner
            .borrow_mut()
            .prune_completed(req.op_id.client, req.acked_below);
        if self.inner.borrow().in_flight_ops.contains(&req.op_id) {
            // Already executing (a retransmission raced a slow operation,
            // e.g. the rename 2PC): drop it; the client keeps re-asking and
            // gets the cached response once the first execution replies.
            // Checked BEFORE the availability gate: a stop-the-world window
            // (switch-reboot re-aggregation, §5.5) does not kill in-flight
            // handlers, and answering their retransmissions with
            // `Unavailable` would tell the client "nothing happened" about
            // an operation that is still happening (the chaos checker flags
            // the resulting phantom mutation).
            return;
        }
        if self.inner.borrow().unavailable {
            self.reply(
                client_node,
                &req.op,
                req.op_id,
                OpResult::Err(FsError::Unavailable),
            );
            return;
        }
        // Both checks below are off the hot path: shard classification runs
        // only while an outbound migration is active, and the ownership
        // re-check only when the client's map epoch is stale.
        if !self.inner.borrow().migrating_shards.is_empty() {
            let shards = self.request_shards(&req.op);
            let inner = self.inner.borrow();
            if shards.iter().any(|s| inner.migrating_shards.contains(s)) {
                // The target shard is frozen by an outbound migration: drop
                // the request; the client's retransmission lands after the
                // flip and is either served here (shard kept) or rejected
                // with the new map (shard moved).
                return;
            }
        }
        if req.epoch != self.cfg.placement.epoch() && !self.may_own(&req.op) {
            // Routed with a stale shard map after the target shard moved
            // away: hand back the current map for refresh-and-retry.
            self.inner.borrow_mut().stats.wrong_owner_rejects += 1;
            self.trace_event(
                Some(TraceId::of_op(req.op_id)),
                EventKind::WrongOwner {
                    op: req.op_id,
                    client_epoch: req.epoch,
                },
            );
            self.send_plain(
                client_node,
                Body::Response(ClientResponse {
                    op_id: req.op_id,
                    result: OpResult::WrongOwner {
                        map: self.cfg.placement.snapshot(),
                    },
                    server: self.cfg.id,
                }),
            );
            return;
        }
        self.inner.borrow_mut().in_flight_ops.insert(req.op_id);
        self.trace_event(
            Some(TraceId::of_op(req.op_id)),
            EventKind::Dispatch { op: req.op_id },
        );
        // The rarely-taken handlers with huge state machines (rename's 2PC,
        // rmdir's aggregation) are boxed so the per-packet dispatch future —
        // whose size is the MAX over these branches and which is copied into
        // a fresh allocation on every spawn — stays small for the hot ops.
        let result = match &req.op {
            MetaOp::Create { .. } | MetaOp::Delete { .. } | MetaOp::Mkdir { .. } => {
                Box::pin(self.handle_double_inode(client_node, &req)).await
            }
            MetaOp::Rmdir { .. } => Box::pin(self.handle_rmdir(client_node, &req)).await,
            MetaOp::Statdir { .. } | MetaOp::Readdir { .. } => {
                Some(Box::pin(self.handle_dir_read(&req, dirty_ret)).await)
            }
            MetaOp::Rename { .. } => Box::pin(self.handle_rename(client_node, &req)).await,
            _ => Some(self.handle_single_inode(&req).await),
        };
        self.inner.borrow_mut().in_flight_ops.remove(&req.op_id);
        // `None` means the operation replies through the switch multicast
        // (asynchronous commit); anything else is replied here.
        if let Some(result) = result {
            self.reply(client_node, &req.op, req.op_id, result);
        }
    }

    /// The placement-hash shards a request's primary key may legitimately
    /// map to under the current policy (its per-file hash, its fingerprint
    /// and its parent-directory hash, plus a locally-known directory id for
    /// grouping policies). Used by the migration freeze gate; computed only
    /// while a migration is active, never on the hot path.
    fn request_shards(&self, op: &MetaOp) -> Vec<u32> {
        let key = op.primary_key();
        let fp = Fingerprint::of_dir(&key.pid, &key.name);
        let placement = &self.cfg.placement;
        let mut shards = vec![
            placement.shard_of_hash(key.hash64()),
            placement.shard_of_hash(switchfs_proto::ids::splitmix64(fp.raw())),
            placement.shard_of_hash(key.pid.hash64()),
        ];
        let dir_id = self.inner.borrow().inodes.peek(key).map(|a| a.id);
        if let Some(id) = dir_id {
            shards.push(placement.shard_of_hash(id.hash64()));
        }
        shards.dedup();
        shards
    }

    /// Ownership check for stale-epoch requests, mirroring the client
    /// router's per-op routing under the *current* map. The check must be
    /// exactly as strict as the router: accepting a non-owner (e.g. the
    /// per-file-hash server for a fingerprint-routed `mkdir`) would let a
    /// stale-routed create materialize state on the wrong server.
    fn may_own(&self, op: &MetaOp) -> bool {
        let key = op.primary_key();
        let placement = &self.cfg.placement;
        let me = self.cfg.id;
        match placement.policy() {
            switchfs_proto::PartitionPolicy::PerFileHash => match op {
                // Fingerprint-routed directory-target operations.
                MetaOp::Mkdir { .. }
                | MetaOp::Rmdir { .. }
                | MetaOp::Statdir { .. }
                | MetaOp::Readdir { .. }
                | MetaOp::Lookup { .. } => {
                    placement.dir_owner_by_fp(Fingerprint::of_dir(&key.pid, &key.name)) == me
                }
                // Rename is legitimately addressed to either the source's
                // fingerprint owner (directory source) or its per-file-hash
                // owner (file source / cold cache, re-routed server-side).
                MetaOp::Rename { src, .. } => {
                    placement.owner_of_hash(src.hash64()) == me
                        || placement.dir_owner_by_fp(Fingerprint::of_dir(&src.pid, &src.name)) == me
                }
                _ => placement.owner_of_hash(key.hash64()) == me,
            },
            // Grouping policies: most operations target the parent's
            // children server; directory reads / rmdir target the content
            // owner, addressed by an id only the client resolved — accept
            // when the replica is locally stored.
            _ => {
                placement.dir_owner_by_id(&key.pid) == me
                    || self.inner.borrow().inodes.contains(key)
            }
        }
    }

    /// Durably records a completed mutating operation's response (piggybacked
    /// on the operation's WAL append, so it costs no extra simulated
    /// latency): a retransmission that spans a crash must get the original
    /// result, not a re-execution.
    pub(crate) fn persist_completion(
        &self,
        op: &MetaOp,
        response: &switchfs_proto::message::ClientResponse,
    ) {
        let mutates =
            op.is_double_inode() || matches!(op, MetaOp::Chmod { .. } | MetaOp::Rename { .. });
        if !mutates {
            return;
        }
        let record = WalOp::completion(response.clone());
        let size = record.wire_size();
        let mut durable = self.durable.borrow_mut();
        let lsn = durable.wal.append_sized(record, size);
        // Flush barrier: the caller is about to release the acknowledgment,
        // and a completion record still sitting in the volatile tail would
        // be exactly the torn-tail casualty that turns a post-crash
        // retransmission into a re-execution. The flush rides the group
        // commit already charged to the operation's own append, so it still
        // costs no extra simulated latency.
        let newly = durable.wal.flush();
        if self.obs_on() {
            let trace = Some(TraceId::of_op(response.op_id));
            self.trace_event(trace, EventKind::WalAppend { lsn, bytes: size });
            self.trace_event(
                trace,
                EventKind::WalFlush {
                    through_lsn: durable.wal.flushed(),
                    records: newly as u64,
                },
            );
        }
    }

    // Handlers with large state machines are boxed: the per-packet dispatch
    // future's size is the max over every arm below, and it is copied into a
    // fresh allocation on every packet spawn — keeping the arms small keeps
    // the per-packet copy small.
    async fn handle_server_msg(&self, src: NodeId, msg: ServerMsg, dirty_ret: Option<DirtyRet>) {
        match msg {
            ServerMsg::AsyncCommit {
                response,
                origin,
                op_token,
                fallback,
            } => {
                Box::pin(self.handle_async_commit_packet(
                    src, response, origin, op_token, fallback, dirty_ret,
                ))
                .await;
            }
            ServerMsg::AggregationRequest { agg, invalidate } => {
                Box::pin(self.handle_aggregation_request(agg, invalidate)).await;
            }
            ServerMsg::AggregationEntries {
                agg,
                from,
                entries,
                discard_confirm,
            } => {
                self.retire_confirmed(discard_confirm);
                self.handle_aggregation_entries(agg, from, entries);
            }
            ServerMsg::AggregationAck { agg } => {
                self.handle_aggregation_ack(agg);
            }
            ServerMsg::ChangeLogPush {
                dir_key,
                fp,
                from,
                entries,
                discard_confirm,
            } => {
                self.retire_confirmed(discard_confirm);
                Box::pin(self.handle_changelog_push(dir_key, fp, from, entries)).await;
            }
            ServerMsg::ChangeLogPushAck { dir_key, applied } => {
                self.handle_push_ack(src, dir_key, applied);
            }
            ServerMsg::RemoteDirUpdate {
                req_id,
                dir_key,
                entry,
                discard_confirm,
            } => {
                self.retire_confirmed(discard_confirm);
                Box::pin(self.handle_remote_dir_update(src, req_id, dir_key, entry)).await;
            }
            ServerMsg::RemoteDirUpdateAck { req_id, result } => {
                let reply = match result {
                    Ok(()) => TokenReply::Ack,
                    Err(e) => TokenReply::Failed(e),
                };
                self.complete_token(req_id, reply);
            }
            ServerMsg::FallbackDone { op_token, entry_id } => {
                self.handle_fallback_done(src, op_token, entry_id);
            }
            ServerMsg::MarkDirty { req_id, fp } => {
                self.handle_mark_dirty(src, req_id, fp).await;
            }
            ServerMsg::MarkDirtyAck { req_id } => {
                self.complete_token(req_id, TokenReply::Ack);
            }
            ServerMsg::InvalidationBroadcast { dir_id, dir_key } => {
                self.apply_and_log(
                    None,
                    vec![KvEffect::Invalidate(dir_id, dir_key)],
                    None,
                    Vec::new(),
                )
                .await;
            }
            ServerMsg::InvalidationRevoke { dir_id } => {
                self.inner.borrow_mut().invalidation.remove(&dir_id);
            }
            ServerMsg::TxnPrepare {
                txn_id,
                coordinator,
                ops,
            } => {
                self.handle_txn_prepare(txn_id, coordinator, ops).await;
            }
            ServerMsg::TxnVote {
                txn_id,
                from,
                ok,
                dst_type,
            } => {
                self.handle_txn_vote(txn_id, from, ok, dst_type);
            }
            ServerMsg::TxnCommit { txn_id } => {
                // Ack once the commit is fully applied — by this copy or a
                // previously completed one. A retransmitted copy racing a
                // still-running apply is dropped; the coordinator's
                // retransmission timer re-asks until the apply finished.
                if Box::pin(self.handle_txn_decision(txn_id, true)).await {
                    self.send_plain(
                        src,
                        Body::Server(ServerMsg::TxnDecisionAck {
                            txn_id,
                            from: self.cfg.id,
                        }),
                    );
                }
            }
            ServerMsg::TxnDecisionAck { txn_id, from } => {
                self.handle_txn_ack(txn_id, from);
            }
            ServerMsg::TxnAbort { txn_id } => {
                Box::pin(self.handle_txn_decision(txn_id, false)).await;
                // Abort is idempotent (nothing is applied): always ack so
                // the coordinator stops retransmitting.
                self.send_plain(
                    src,
                    Body::Server(ServerMsg::TxnDecisionAck {
                        txn_id,
                        from: self.cfg.id,
                    }),
                );
            }
            ServerMsg::TxnDecisionQuery {
                req_id,
                txn_id,
                from,
            } => {
                self.handle_txn_decision_query(req_id, txn_id, from).await;
            }
            ServerMsg::TxnDecisionReply { req_id, commit } => {
                self.complete_token(req_id, TokenReply::Decision(commit));
            }
            ServerMsg::ForwardedRequest { client_node, req } => {
                // A rename re-routed by the source's per-file-hash owner:
                // handle it as if the client had sent it here, replying to
                // the client directly. Duplicate suppression keys on the
                // unchanged op id, so client retransmissions (which are
                // forwarded again) collapse onto one execution.
                Box::pin(self.handle_client_request(NodeId(client_node), req, dirty_ret)).await;
            }
            ServerMsg::RecoveryCloneInvalidation { from } => {
                let list: Vec<(DirId, MetaKey)> = self
                    .inner
                    .borrow()
                    .invalidation
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect();
                self.send_plain(
                    self.cfg.node_of(from),
                    Body::Server(ServerMsg::RecoveryInvalidationList { list }),
                );
            }
            ServerMsg::RecoveryInvalidationList { list } => {
                let mut inner = self.inner.borrow_mut();
                for (id, key) in list {
                    inner.invalidation.insert(id, key);
                }
            }
            ServerMsg::InitDirContent {
                req_id,
                dir_id,
                key,
                attrs,
            } => {
                // Baseline helper: register a directory's content replica on
                // the server that will hold its children.
                self.cpu
                    .run(self.cfg.costs.software_path + self.cfg.costs.kv_put)
                    .await;
                self.apply_and_log(
                    None,
                    vec![
                        KvEffect::PutInode(key.clone(), attrs),
                        KvEffect::IndexDir(dir_id, key),
                    ],
                    None,
                    Vec::new(),
                )
                .await;
                self.send_plain(src, Body::Server(ServerMsg::InitDirContentAck { req_id }));
            }
            ServerMsg::InitDirContentAck { req_id } => {
                self.complete_token(req_id, TokenReply::Ack);
            }
            ServerMsg::RemoteTxnOp { req_id, op } => {
                self.cpu.run(self.cfg.costs.software_path).await;
                Box::pin(self.apply_txn_ops(std::slice::from_ref(&op))).await;
                self.send_plain(
                    src,
                    Body::Server(ServerMsg::RemoteDirUpdateAck {
                        req_id,
                        result: Ok(()),
                    }),
                );
            }
            ServerMsg::TypeProbe { req_id, key } => {
                self.cpu
                    .run(self.cfg.costs.software_path + self.cfg.costs.kv_get)
                    .await;
                let file_type = self
                    .inner
                    .borrow_mut()
                    .inodes
                    .get_ref(&key)
                    .map(|a| a.file_type);
                self.send_plain(
                    src,
                    Body::Server(ServerMsg::TypeProbeAck { req_id, file_type }),
                );
            }
            ServerMsg::TypeProbeAck { req_id, file_type } => {
                self.complete_token(req_id, TokenReply::Type(file_type));
            }
            ServerMsg::ShardInstall {
                req_id,
                shard,
                inodes,
                entries,
                dir_index,
                pending,
                applied_entry_ids,
                retired_entry_ids,
                completed,
            } => {
                Box::pin(self.handle_shard_install(
                    src,
                    req_id,
                    shard,
                    inodes,
                    entries,
                    dir_index,
                    pending,
                    applied_entry_ids,
                    retired_entry_ids,
                    completed,
                ))
                .await;
            }
            ServerMsg::ShardInstallAck { req_id } => {
                self.complete_token(req_id, TokenReply::Ack);
            }
        }
    }

    // ------------------------------------------------------------------
    // Single-inode operations (§5.2: performed synchronously).
    // ------------------------------------------------------------------

    async fn handle_single_inode(&self, req: &ClientRequest) -> OpResult {
        let costs = self.cfg.costs;
        self.cpu.run(costs.request_overhead()).await;
        if self.is_stale(&req.ancestors) {
            return OpResult::Err(FsError::StaleCache);
        }
        let key = req.op.primary_key().clone();
        match &req.op {
            MetaOp::Stat { .. }
            | MetaOp::Open { .. }
            | MetaOp::Lookup { .. }
            | MetaOp::Close { .. } => {
                let lock = self.locks.inode(&key);
                let _g = lock.read().await;
                self.cpu.run(costs.lock_op + costs.kv_get).await;
                match self.inner.borrow_mut().inodes.get(&key) {
                    Some(attrs) => OpResult::Attrs(attrs),
                    None => OpResult::Err(FsError::NotFound),
                }
            }
            MetaOp::Chmod { mode, .. } => {
                let lock = self.locks.inode(&key);
                let _g = lock.write().await;
                self.cpu
                    .run(costs.lock_op + costs.kv_get + costs.kv_put + costs.wal_append)
                    .await;
                let existing = self.inner.borrow_mut().inodes.get(&key);
                let Some(mut attrs) = existing else {
                    return OpResult::Err(FsError::NotFound);
                };
                attrs.perm.mode = *mode;
                attrs.times.ctime = self.now_ns();
                let effects = vec![KvEffect::PutInode(key.clone(), attrs.clone())];
                self.apply_and_log(Some(req.op_id), effects, None, Vec::new())
                    .await;
                OpResult::Done
            }
            _ => OpResult::Err(FsError::NotFound),
        }
    }

    // ------------------------------------------------------------------
    // Helpers shared by the operation modules.
    // ------------------------------------------------------------------

    /// Current virtual time in nanoseconds (used as the timestamp source).
    pub(crate) fn now_ns(&self) -> u64 {
        self.handle.now().as_nanos()
    }

    /// True when the observability layer is recording. Instrumentation
    /// sites check this before computing event payloads, so a disabled run
    /// pays one branch per site (on a construction-time snapshot; see the
    /// `obs_enabled` field).
    #[inline]
    pub(crate) fn obs_on(&self) -> bool {
        self.obs_enabled
    }

    /// Records a flight-recorder event stamped with virtual time, this
    /// server's node and the current placement epoch. Pure reads plus a
    /// ring-buffer write: never touches protocol state, stats or the
    /// schedule, so the replay digest is identical with tracing on or off.
    pub(crate) fn trace_event(&self, trace: Option<TraceId>, kind: EventKind) {
        if !self.obs_enabled {
            return;
        }
        self.cfg.obs.record(TraceEvent {
            at_ns: self.now_ns(),
            node: self.cfg.node.0,
            epoch: self.cfg.placement.epoch(),
            trace,
            kind,
        });
    }

    /// True if any ancestor directory appears in the invalidation list.
    pub(crate) fn is_stale(&self, ancestors: &[DirId]) -> bool {
        let inner = self.inner.borrow();
        ancestors.iter().any(|a| inner.invalidation.contains_key(a))
    }

    /// The server identity hosted on `node`, if it is a metadata server.
    pub(crate) fn server_id_of(&self, node: NodeId) -> Option<ServerId> {
        self.cfg
            .server_nodes
            .borrow()
            .iter()
            .position(|n| *n == node)
            .map(|i| ServerId(i as u32))
    }

    /// Retires entry ids whose holders confirmed the durable discard
    /// (piggybacked on an incoming push / aggregation reply / remote
    /// update). Pure state motion — no modeled cost, no packets.
    pub(crate) fn retire_confirmed(&self, ids: Vec<OpId>) {
        if ids.is_empty() {
            return;
        }
        let now = self.handle.now();
        let obs_on = self.obs_on();
        let mut inner = self.inner.borrow_mut();
        for id in ids {
            if obs_on {
                self.trace_event(
                    Some(TraceId::of_op(id)),
                    EventKind::DiscardConfirm { entry: id },
                );
            }
            inner.retire_entry_id(id, now);
        }
    }

    /// Allocates a fresh token / aggregation id.
    pub(crate) fn next_token(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let t = inner.next_token;
        inner.next_token += 1;
        t
    }

    /// Allocates the next dirty-set remove sequence number (§5.4.1).
    pub(crate) fn next_remove_seq(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        inner.remove_seq += 1;
        inner.remove_seq
    }

    fn next_pkt_seq(&self) -> PacketSeq {
        PacketSeq {
            sender: self.cfg.node.0,
            seq: self.next_token(),
        }
    }

    /// Sends a plain (no dirty-set header) packet.
    pub(crate) fn send_plain(&self, dst: NodeId, body: Body) {
        let msg = NetMsg::plain(self.next_pkt_seq(), body);
        self.endpoint.send(dst, msg);
    }

    /// Sends a packet carrying a dirty-set operation header.
    pub(crate) fn send_dirty(&self, dst: NodeId, hdr: switchfs_proto::DirtySetHeader, body: Body) {
        let msg = NetMsg::with_dirty(self.next_pkt_seq(), hdr, body);
        self.endpoint.send(dst, msg);
    }

    /// Sends a response to a client and records it for duplicate
    /// suppression. The completion record is made durable *before* the
    /// acknowledgment escapes: an ack that outruns its completion record
    /// would be re-executed (not answered from the dedup cache) by a
    /// recovered server when the client gives up waiting and retransmits.
    pub(crate) fn reply(
        &self,
        client_node: NodeId,
        op: &MetaOp,
        op_id: OpId,
        result: OpResult,
    ) -> ClientResponse {
        let response = ClientResponse {
            op_id,
            result,
            server: self.cfg.id,
        };
        {
            let mut inner = self.inner.borrow_mut();
            inner.stats.ops_completed += 1;
            if !response.result.is_ok() {
                inner.stats.ops_failed += 1;
            }
            inner.cache_response(response.clone());
        }
        self.persist_completion(op, &response);
        self.send_plain(client_node, Body::Response(response.clone()));
        response
    }

    /// Builds the response object without sending it (the asynchronous commit
    /// path lets the switch deliver it).
    pub(crate) fn make_response(&self, op_id: OpId, result: OpResult) -> ClientResponse {
        let response = ClientResponse {
            op_id,
            result,
            server: self.cfg.id,
        };
        let mut inner = self.inner.borrow_mut();
        inner.stats.ops_completed += 1;
        inner.cache_response(response.clone());
        response
    }

    /// Completes a token-matched wait, if still registered.
    pub(crate) fn complete_token(&self, token: u64, reply: TokenReply) {
        let tx = self.inner.borrow_mut().pending_tokens.remove(&token);
        if let Some(tx) = tx {
            let _ = tx.send(reply);
        }
    }

    /// Registers a token-matched wait and returns its receiver.
    pub(crate) fn register_token(&self, token: u64) -> oneshot::Receiver<TokenReply> {
        let (tx, rx) = oneshot::channel();
        self.inner.borrow_mut().pending_tokens.insert(token, tx);
        rx
    }

    /// Sends `body` to `dst` and waits for a token-matched acknowledgment,
    /// retransmitting on timeout (§5.4.1). Returns `None` after exhausting
    /// the retry budget.
    pub(crate) async fn send_with_ack(
        &self,
        dst: NodeId,
        token: u64,
        body: Body,
    ) -> Option<TokenReply> {
        // Exponential backoff, mirroring the client: duplicates are
        // suppressed by the receiver, so pacing retries only sheds packets.
        let mut wait = self.cfg.costs.request_timeout;
        let max_wait = self.cfg.costs.request_timeout * 16;
        for attempt in 0..=self.cfg.costs.max_retries {
            if attempt > 0 {
                self.inner.borrow_mut().stats.retransmissions += 1;
            }
            let rx = self.register_token(token);
            self.send_plain(dst, body.clone());
            match timeout(&self.handle, wait, rx.recv()).await {
                Some(Ok(reply)) => return Some(reply),
                _ => {
                    self.inner.borrow_mut().pending_tokens.remove(&token);
                    wait = (wait * 2).min(max_wait);
                }
            }
        }
        None
    }

    /// Appends a WAL record, applies its effects to the volatile stores and
    /// charges the corresponding storage costs.
    pub(crate) async fn apply_and_log(
        &self,
        op_id: Option<OpId>,
        effects: Vec<KvEffect>,
        pending_entry: Option<(DirId, MetaKey, ChangeLogEntry)>,
        applied_entry_ids: Vec<OpId>,
    ) -> u64 {
        let costs = self.cfg.costs;
        let kv_cost = costs.kv_put * effects.len().max(1) as u64;
        let record = WalOp {
            op_id,
            effects,
            pending_entry,
            applied_entry_ids,
            txn_marker: None,
            completed: None,
            migration: None,
        };
        let size = record.wire_size();
        // The record is handed to the log *before* the simulated disk wait:
        // for the duration of the await it is appended but unflushed, which
        // is exactly the window a torn-write crash may corrupt. The flush
        // barrier and the volatile-state application share one no-await
        // block after the wait, so volatile state never reflects a record
        // the media could still lose — and the record is applied from a
        // borrow of its WAL slot, one materialization instead of a deep
        // clone per logged operation.
        let lsn = self.durable.borrow_mut().wal.append_sized(record, size);
        self.cpu.run(self.wal_append_cost() + kv_cost).await;
        let durable = &mut *self.durable.borrow_mut();
        let newly_flushed = durable.wal.flush();
        if let Ok(idx) = durable.wal.records().binary_search_by_key(&lsn, |r| r.lsn) {
            let record = &durable.wal.records()[idx].payload;
            // Observability: derive the batch's causal identity (the client
            // op when logged on its behalf, else the single change-log
            // entry applied) and emit events from the *actually applied*
            // record — not from the caller's intent — so a divergence
            // between the two is visible in a dump. Everything here is
            // non-counting peeks and ring-buffer writes; the replay digest
            // cannot see it.
            let obs_on = self.obs_on();
            let (trace, batch) = if obs_on {
                let trace = record
                    .op_id
                    .or(match record.applied_entry_ids[..] {
                        [only] => Some(only),
                        _ => None,
                    })
                    .map(TraceId::of_op);
                self.trace_event(trace, EventKind::WalAppend { lsn, bytes: size });
                self.trace_event(
                    trace,
                    EventKind::WalFlush {
                        through_lsn: durable.wal.flushed(),
                        records: newly_flushed as u64,
                    },
                );
                (trace, self.cfg.obs.next_batch())
            } else {
                (None, 0)
            };
            let mut inner = self.inner.borrow_mut();
            for e in &record.effects {
                if obs_on {
                    match e {
                        KvEffect::PutInode(key, attrs)
                            if attrs.file_type == FileType::Directory =>
                        {
                            let old = inner.inodes.peek(key).map_or(0, |a| a.size as i64);
                            let delta = attrs.size as i64 - old;
                            if delta != 0 {
                                self.trace_event(
                                    trace,
                                    EventKind::SizeDelta {
                                        batch,
                                        dir: attrs.id.hash64(),
                                        delta,
                                    },
                                );
                            }
                        }
                        KvEffect::PutEntry(dir, entry) => {
                            self.trace_event(
                                trace,
                                EventKind::EntryApply {
                                    batch,
                                    dir: dir.hash64(),
                                    insert: true,
                                    changed: !inner.entry_exists(dir, &entry.name),
                                },
                            );
                        }
                        KvEffect::DeleteEntry(dir, name) => {
                            self.trace_event(
                                trace,
                                EventKind::EntryApply {
                                    batch,
                                    dir: dir.hash64(),
                                    insert: false,
                                    changed: inner.entry_exists(dir, name),
                                },
                            );
                        }
                        _ => {}
                    }
                }
                inner.apply_effect(e);
            }
            for id in &record.applied_entry_ids {
                inner.applied_entry_ids.insert(*id);
            }
        }
        lsn
    }

    /// The effective cost of one WAL append, including any chaos-injected
    /// disk-latency spike.
    pub(crate) fn wal_append_cost(&self) -> switchfs_simnet::SimDuration {
        self.cfg.costs.wal_append * self.inner.borrow().disk_slowdown
    }

    /// Durably logs a 2PC state transition (§5.4.2) and charges one WAL
    /// append.
    pub(crate) async fn log_txn_marker(&self, marker: crate::wal::TxnMarker) -> u64 {
        let record = WalOp::txn(marker);
        let size = record.wire_size();
        // Append before the disk wait (the torn-write window), flush after:
        // every caller relies on the marker being durable when this returns
        // — `Prepared` before the vote escapes, `Decided` before the
        // decision broadcast, `Resolved` before the decision ack.
        let lsn = self.durable.borrow_mut().wal.append_sized(record, size);
        self.cpu.run(self.wal_append_cost()).await;
        let mut durable = self.durable.borrow_mut();
        let newly = durable.wal.flush();
        if self.obs_on() {
            self.trace_event(None, EventKind::WalAppend { lsn, bytes: size });
            self.trace_event(
                None,
                EventKind::WalFlush {
                    through_lsn: durable.wal.flushed(),
                    records: newly as u64,
                },
            );
        }
        lsn
    }

    /// Sends one body to every listed server, building the message once and
    /// cloning only for all recipients but the last (alloc-free for the
    /// common single-recipient fan-out).
    pub(crate) fn multicast_plain(&self, servers: &[ServerId], body: Body) {
        let Some((last, rest)) = servers.split_last() else {
            return;
        };
        for s in rest {
            self.send_plain(self.cfg.node_of(*s), body.clone());
        }
        self.send_plain(self.cfg.node_of(*last), body);
    }

    /// Broadcasts an invalidation-list append to every other server.
    pub(crate) fn broadcast_invalidation(&self, dir_id: DirId, dir_key: MetaKey) {
        self.multicast_plain(
            &self.cfg.other_servers(),
            Body::Server(ServerMsg::InvalidationBroadcast { dir_id, dir_key }),
        );
    }

    /// Resolves the dirty state of a fingerprint according to the tracking
    /// mode: the value attached by the switch, a coordinator RPC, or the
    /// local software set.
    pub(crate) async fn dirty_state_for_read(
        &self,
        fp: Fingerprint,
        attached: Option<DirtyRet>,
    ) -> DirtyState {
        match self.cfg.tracking {
            TrackingMode::InNetwork => match attached {
                Some(DirtyRet::State(s)) => s,
                // Without switch information be conservative: aggregating an
                // already-clean group is correct, just slower.
                _ => DirtyState::Scattered,
            },
            TrackingMode::DedicatedServer(coord) => {
                let token = self.next_token();
                let rx = self.register_token(token);
                self.send_plain(
                    coord,
                    Body::Coord(CoordMsg::Request {
                        token,
                        op: DirtySetOp::Query,
                        fp,
                        seq: 0,
                    }),
                );
                match timeout(&self.handle, self.cfg.costs.request_timeout, rx.recv()).await {
                    Some(Ok(TokenReply::Dirty(DirtyRet::State(s)))) => s,
                    _ => DirtyState::Scattered,
                }
            }
            TrackingMode::OwnerServer => {
                if self.inner.borrow_mut().local_dirty.query(fp) {
                    DirtyState::Scattered
                } else {
                    DirtyState::Normal
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Bulk loading (experiment setup) and direct state inspection.
    // ------------------------------------------------------------------

    /// Directly installs a directory inode this server owns, without going
    /// through the protocol. Used to pre-populate experiment namespaces
    /// (e.g. "10 million files in 1024 directories") at setup time.
    pub fn preload_dir(&self, key: MetaKey, id: DirId, now: u64) {
        let attrs = InodeAttrs::new_dir(id, now, Default::default());
        let mut inner = self.inner.borrow_mut();
        inner.inodes.put(key.clone(), attrs);
        inner.dir_index.insert(id, key);
    }

    /// Directly installs a file inode (and optionally counts it in the parent
    /// directory entry list if this server also owns the parent).
    pub fn preload_file(&self, key: MetaKey, now: u64) {
        let id = DirId::generate(self.cfg.id, {
            let mut inner = self.inner.borrow_mut();
            inner.dir_counter += 1;
            inner.dir_counter
        });
        let attrs = InodeAttrs::new_file(id, now, Default::default());
        self.inner.borrow_mut().inodes.put(key, attrs);
    }

    /// Directly installs a directory entry on the owner of the directory.
    pub fn preload_entry(&self, dir: DirId, entry: DirEntry) {
        self.inner.borrow_mut().put_entry(dir, entry);
    }

    /// Directly bumps a preloaded directory's entry count so `statdir`
    /// reports a size consistent with preloaded entries.
    pub fn preload_dir_size(&self, key: &MetaKey, size: u64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(attrs) = inner.inodes.peek(key).cloned() {
            let mut attrs = attrs;
            attrs.size = size;
            inner.inodes.put(key.clone(), attrs);
        }
    }

    /// Generates a fresh directory id.
    pub(crate) fn fresh_dir_id(&self) -> DirId {
        let mut inner = self.inner.borrow_mut();
        inner.dir_counter += 1;
        DirId::generate(self.cfg.id, inner.dir_counter)
    }

    /// Builds a change-log entry for a deferred parent-directory update.
    pub(crate) fn make_entry(
        &self,
        op_id: OpId,
        parent_id: DirId,
        name: &str,
        op: switchfs_proto::ChangeOp,
        size_delta: i64,
    ) -> ChangeLogEntry {
        ChangeLogEntry {
            entry_id: op_id,
            dir: parent_id,
            name: name.to_string(),
            op,
            timestamp: self.now_ns(),
            size_delta,
        }
    }

    /// Applies a single change-log entry to a locally-owned directory inode
    /// and entry list, returning the KV effects (shared by the aggregation,
    /// push, fallback and baseline remote-update paths).
    pub(crate) fn entry_effects(&self, dir_key: &MetaKey, entry: &ChangeLogEntry) -> Vec<KvEffect> {
        let mut effects = Vec::new();
        let inner = self.inner.borrow();
        let Some(attrs) = inner.inodes.peek(dir_key) else {
            return effects;
        };
        let mut attrs = attrs.clone();
        // The size delta only applies when the entry's presence actually
        // changes: a rename overwriting an existing name re-puts the entry
        // (no growth), and a remove of an already-absent name must not
        // shrink the directory below its entry count.
        let target_exists = inner.entry_exists(&entry.dir, &entry.name);
        let effective_delta = match entry.op {
            switchfs_proto::ChangeOp::Insert { .. } if target_exists => 0,
            switchfs_proto::ChangeOp::Remove if !target_exists => 0,
            _ => entry.size_delta,
        };
        attrs.size = (attrs.size as i64 + effective_delta).max(0) as u64;
        let mut times = Timestamps::at(entry.timestamp);
        times.atime = attrs.times.atime;
        attrs.times.merge_max(&times);
        effects.push(KvEffect::PutInode(dir_key.clone(), attrs));
        match entry.op {
            switchfs_proto::ChangeOp::Insert { file_type, mode } => {
                effects.push(KvEffect::PutEntry(
                    entry.dir,
                    DirEntry {
                        name: entry.name.clone(),
                        file_type,
                        mode,
                    },
                ));
            }
            switchfs_proto::ChangeOp::Remove => {
                effects.push(KvEffect::DeleteEntry(entry.dir, entry.name.clone()));
            }
        }
        effects
    }

    /// Reads a directory's attributes and entries for `readdir`, charging the
    /// per-entry scan cost. The listing is shared (`Rc`), not copied: the
    /// same allocation flows into the response, the duplicate-suppression
    /// cache and every in-flight packet copy.
    pub(crate) async fn read_listing(
        &self,
        key: &MetaKey,
    ) -> Option<(InodeAttrs, Rc<Vec<DirEntry>>)> {
        let (attrs, entries) = {
            let mut inner = self.inner.borrow_mut();
            let attrs = inner.inodes.get(key)?;
            if attrs.file_type != FileType::Directory {
                return None;
            }
            let dir = attrs.id;
            // `get_mut_read`: mutable only to fill the listing memo — this
            // is a read and must be billed as one.
            let entries = match inner.entries.get_mut_read(&dir) {
                Some(content) => content.listing(),
                None => Rc::new(Vec::new()),
            };
            (attrs, entries)
        };
        let scan_cost = self.cfg.costs.readdir_per_entry * entries.len().max(1) as u64;
        self.cpu.run(self.cfg.costs.kv_get + scan_cost).await;
        Some((attrs, entries))
    }

    /// Marks the server crashed: volatile state will be rebuilt by
    /// [`Server::recover`]. The caller should also mark the node down in the
    /// network so in-flight packets are dropped.
    pub fn crash(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.crashed = true;
        inner.unavailable = true;
    }

    /// Crashes the server *and* applies a torn-write fault to the WAL: the
    /// flushed prefix survives bit-exactly, while each unflushed record is
    /// independently kept, torn or dropped under `tear_seed` (see
    /// [`switchfs_kvstore::Wal::crash_apply`]). Recovery detects and
    /// truncates the damage. Returns what the crash did to the tail.
    pub fn crash_torn(&self, tear_seed: u64) -> switchfs_kvstore::TornTail {
        self.crash();
        self.durable.borrow_mut().wal.crash_apply(tear_seed)
    }

    /// True if the server is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.inner.borrow().crashed
    }

    /// Turns a fully drained server into the decommission tombstone: it
    /// stops all background work and from now on only answers client
    /// requests with a `WrongOwner` redirect carrying the current map. The
    /// caller must have migrated every shard away (and retired the server in
    /// the shared map) first.
    pub fn decommission(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.decommissioned = true;
        // Stop the proactive loop at its next wake-up; `restart_background`
        // refuses to revive a decommissioned server's loop.
        inner.shutdown = true;
    }

    /// True once the server was gracefully decommissioned.
    pub fn is_decommissioned(&self) -> bool {
        self.inner.borrow().decommissioned
    }

    /// Marks the server available again after recovery or reconfiguration.
    pub fn set_available(&self, available: bool) {
        self.inner.borrow_mut().unavailable = !available;
    }

    /// Pause serving client requests (used by stop-the-world
    /// reconfiguration, §5.5).
    pub fn set_unavailable(&self) {
        self.inner.borrow_mut().unavailable = true;
    }

    /// Asks the background proactive loop to stop at its next wake-up so the
    /// simulation can quiesce at the end of an experiment.
    pub fn stop_background(&self) {
        self.inner.borrow_mut().shutdown = true;
    }

    /// Restarts the background proactive loop after [`Server::stop_background`].
    /// A decommissioned server stays quiet: its tombstone answers requests
    /// without any background machinery.
    pub fn restart_background(&self) {
        let was_shutdown = {
            let mut inner = self.inner.borrow_mut();
            if inner.decommissioned {
                return;
            }
            let was = inner.shutdown;
            inner.shutdown = false;
            was
        };
        if was_shutdown && self.cfg.proactive.enabled {
            let me = self.clone();
            self.handle.spawn(async move { me.proactive_loop().await });
        }
    }

    /// Whether this server currently owns (stores the inode of) `key`.
    pub fn owns_inode(&self, key: &MetaKey) -> bool {
        self.inner.borrow().inodes.contains(key)
    }

    /// Setup-time seeding for a newly added server: copies another server's
    /// invalidation list directly, like preloading does for namespaces (the
    /// newcomer has served no traffic yet, so no protocol run is needed).
    pub fn seed_invalidation_from(&self, other: &Server) {
        let list: Vec<(DirId, MetaKey)> = other
            .inner
            .borrow()
            .invalidation
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        let mut inner = self.inner.borrow_mut();
        for (id, key) in list {
            inner.invalidation.insert(id, key);
        }
    }

    /// The cost model in effect (shared with benches).
    pub fn costs(&self) -> crate::costs::CostModel {
        self.cfg.costs
    }
}
