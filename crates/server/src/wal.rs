//! Durable server state: the WAL record format and the crash-surviving
//! state bundle.
//!
//! §5.4.2: a server keeps its key-value store, change-logs and invalidation
//! list in DRAM and recovers them from the write-ahead log after a crash.
//! [`DurableState`] is the part the cluster harness keeps alive across a
//! simulated crash; everything else is rebuilt by
//! [`crate::server::Server::recover`].

use switchfs_kvstore::{Checkpoint, Wal};
use switchfs_proto::message::{ClientResponse, TxnOp};
use switchfs_proto::{ChangeLogEntry, DirEntry, DirId, InodeAttrs, MetaKey, OpId, ServerId};

/// One mutation against the volatile key-value stores, replayable during
/// recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvEffect {
    /// Insert or overwrite an inode.
    PutInode(MetaKey, InodeAttrs),
    /// Remove an inode.
    DeleteInode(MetaKey),
    /// Insert or overwrite a directory entry.
    PutEntry(DirId, DirEntry),
    /// Remove a directory entry.
    DeleteEntry(DirId, String),
    /// Register a directory this server owns (id → key index).
    IndexDir(DirId, MetaKey),
    /// Remove a directory from the owner index.
    UnindexDir(DirId),
    /// Append a directory to the invalidation list (§5.2.3).
    Invalidate(DirId, MetaKey),
}

/// A durable two-phase-commit marker (§5.4.2): the record that makes a
/// participant's prepared state and a coordinator's commit decision survive
/// a crash, so recovery can resolve in-doubt transactions instead of
/// silently dropping them (the volatile-prepare hole the chaos checker
/// exposes as namespace divergence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnMarker {
    /// This server staged a transaction's mutations: a participant logs it
    /// before voting yes, and the coordinator logs its own local half just
    /// before the commit decision. A `Prepared` with no later [`TxnMarker::Resolved`]
    /// is an in-doubt transaction that recovery must resolve — by the
    /// durable decision for self-coordinated transactions, or by a
    /// [`switchfs_proto::message::ServerMsg::TxnDecisionQuery`] to the
    /// coordinator otherwise.
    Prepared {
        /// Transaction id.
        txn_id: u64,
        /// The coordinating server to query after a crash.
        coordinator: ServerId,
        /// The staged mutations, replayed into the prepared-transaction
        /// table.
        ops: Vec<TxnOp>,
    },
    /// The coordinator's durable commit/abort decision, logged *before* the
    /// local apply and the decision broadcast — the transaction's commit
    /// point. Rebuilt into the decision table so the coordinator answers
    /// recovery-time decision queries authoritatively (a transaction with no
    /// `Decided { commit: true }` record is presumed aborted).
    Decided {
        /// Transaction id.
        txn_id: u64,
        /// True for commit.
        commit: bool,
    },
    /// The staged mutations of `txn_id` were fully applied (commit) or
    /// dropped (abort) on this server; clears the matching
    /// [`TxnMarker::Prepared`] so recovery does not re-resolve it.
    Resolved {
        /// Transaction id.
        txn_id: u64,
    },
    /// Every participant acknowledged the decision of `txn_id`: nobody can
    /// ever query it again, so the coordinator drops its decision-table
    /// entry (bounding the table — and with it checkpoint size — by the
    /// in-flight window instead of the server's lifetime). A transaction
    /// with an unacknowledged participant is retained forever: that
    /// participant may still recover and ask.
    Forgotten {
        /// Transaction id.
        txn_id: u64,
    },
}

/// A durable shard-migration transition, following the [`TxnMarker`]
/// pattern: a `Started` with no later `Completed` is an interrupted
/// migration that recovery resolves against the cluster's current shard map
/// — if the shard already flipped to the target, the replayed local copy is
/// stale and must be dropped; if not, the source still owns the shard and
/// the cluster re-drives the migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationMarker {
    /// The source froze `shard` and began streaming it to `target`.
    Started {
        /// The migrating shard.
        shard: u32,
        /// The receiving server.
        target: ServerId,
    },
    /// The shard's state was installed at the target, the map flipped, and
    /// the source deleted its copy.
    Completed {
        /// The migrated shard.
        shard: u32,
    },
}

/// One WAL record: the committed effects of an operation plus, for
/// double-inode operations, the change-log entry that still has to reach the
/// parent directory's owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalOp {
    /// Id of the client operation (if the record stems from one).
    pub op_id: Option<OpId>,
    /// Mutations applied to this server's volatile stores.
    pub effects: Vec<KvEffect>,
    /// A deferred update to a (usually remote) parent directory:
    /// `(parent directory id, parent directory key, entry)`. The WAL record
    /// is marked *applied* once the entry has been applied by the directory
    /// owner, so recovery knows whether to rebuild it into the change-log.
    pub pending_entry: Option<(DirId, MetaKey, ChangeLogEntry)>,
    /// Ids of remote change-log entries this record applied (aggregation /
    /// push on the directory-owner side); used to rebuild the duplicate
    /// suppression set during recovery.
    pub applied_entry_ids: Vec<OpId>,
    /// Durable 2PC state transition carried by this record, if any.
    pub txn_marker: Option<TxnMarker>,
    /// A mutating operation's response, persisted so the duplicate-
    /// suppression cache survives a crash: a client that never received the
    /// reply retransmits after recovery and must get the original result
    /// back, not a re-execution (which would answer its own `create` with
    /// `Exists`). Modeled as piggybacked on the operation's WAL append
    /// (group commit), so it adds no extra simulated latency.
    pub completed: Option<ClientResponse>,
    /// Durable shard-migration transition carried by this record, if any.
    pub migration: Option<MigrationMarker>,
}

impl WalOp {
    /// A record with only local effects.
    pub fn local(op_id: Option<OpId>, effects: Vec<KvEffect>) -> Self {
        WalOp {
            op_id,
            effects,
            pending_entry: None,
            applied_entry_ids: Vec::new(),
            txn_marker: None,
            completed: None,
            migration: None,
        }
    }

    /// A record carrying only a 2PC marker.
    pub fn txn(marker: TxnMarker) -> Self {
        WalOp {
            op_id: None,
            effects: Vec::new(),
            pending_entry: None,
            applied_entry_ids: Vec::new(),
            txn_marker: Some(marker),
            completed: None,
            migration: None,
        }
    }

    /// A record carrying only a completed operation's cached response.
    pub fn completion(response: ClientResponse) -> Self {
        WalOp {
            op_id: None,
            effects: Vec::new(),
            pending_entry: None,
            applied_entry_ids: Vec::new(),
            txn_marker: None,
            completed: Some(response),
            migration: None,
        }
    }

    /// A record carrying only a shard-migration marker.
    pub fn migration(marker: MigrationMarker) -> Self {
        WalOp {
            op_id: None,
            effects: Vec::new(),
            pending_entry: None,
            applied_entry_ids: Vec::new(),
            txn_marker: None,
            completed: None,
            migration: Some(marker),
        }
    }

    /// Estimated persistent size, used for WAL byte accounting.
    pub fn wire_size(&self) -> u64 {
        64 + self.effects.len() as u64 * 96
            + self
                .pending_entry
                .as_ref()
                .map(|(_, _, e)| e.wire_size() as u64)
                .unwrap_or(0)
            + self.applied_entry_ids.len() as u64 * 12
            + match &self.txn_marker {
                Some(TxnMarker::Prepared { ops, .. }) => 24 + ops.len() as u64 * 96,
                Some(
                    TxnMarker::Decided { .. }
                    | TxnMarker::Resolved { .. }
                    | TxnMarker::Forgotten { .. },
                ) => 16,
                None => 0,
            }
            + if self.completed.is_some() { 48 } else { 0 }
            + if self.migration.is_some() { 16 } else { 0 }
    }
}

/// The state that survives a simulated server crash.
#[derive(Debug, Clone, Default)]
pub struct DurableState {
    /// The write-ahead log.
    pub wal: Wal<WalOp>,
    /// Optional checkpoint bounding replay (extension discussed in §7.7).
    pub checkpoint: Checkpoint<CheckpointData>,
}

/// Snapshot stored by a checkpoint: the fully materialized volatile state as
/// of a WAL LSN.
#[derive(Debug, Clone, Default)]
pub struct CheckpointData {
    /// All inodes.
    pub inodes: Vec<(MetaKey, InodeAttrs)>,
    /// All directory entries.
    pub entries: Vec<(DirId, DirEntry)>,
    /// The directory owner index.
    pub dir_index: Vec<(DirId, MetaKey)>,
    /// The invalidation list.
    pub invalidation: Vec<(DirId, MetaKey)>,
    /// Change-log entries still pending, with their directory key.
    pub pending: Vec<(DirId, MetaKey, ChangeLogEntry)>,
    /// Ids of remote entries applied but not yet confirmed discarded by
    /// their holders (bounded by the in-flight confirmation window).
    pub applied_entry_ids: Vec<OpId>,
    /// The bounded FIFO of retired (holder-confirmed) entry ids, in
    /// insertion order so a reload preserves the eviction order.
    pub retired_entry_ids: Vec<OpId>,
    /// In-doubt prepared transactions (`txn_id`, coordinator, staged ops):
    /// prepared state is durable (§5.4.2), so a checkpoint must carry it
    /// across WAL truncation.
    pub prepared_txns: Vec<(u64, ServerId, Vec<TxnOp>)>,
    /// Durable commit decisions this server made as a rename coordinator.
    pub decided_txns: Vec<(u64, bool)>,
    /// Cached responses of completed mutating operations (the duplicate-
    /// suppression cache): bounded by the per-client acked watermark, so the
    /// snapshot stays small, and carried across WAL truncation so a
    /// retransmission spanning a crash still gets the original result.
    pub completed_ops: Vec<ClientResponse>,
}

impl DurableState {
    /// Creates an empty durable state.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchfs_proto::{ChangeOp, ClientId, FileType, Permissions};

    fn sample_entry() -> ChangeLogEntry {
        ChangeLogEntry {
            entry_id: OpId {
                client: ClientId(1),
                seq: 1,
            },
            dir: DirId::ROOT,
            name: "f".into(),
            op: ChangeOp::Insert {
                file_type: FileType::File,
                mode: 0o644,
            },
            timestamp: 1,
            size_delta: 1,
        }
    }

    #[test]
    fn wal_records_survive_and_mark_applied() {
        let mut durable = DurableState::new();
        let key = MetaKey::new(DirId::ROOT, "f");
        let attrs = InodeAttrs::new_file(DirId::ROOT, 0, Permissions::default());
        let record = WalOp {
            op_id: Some(OpId {
                client: ClientId(1),
                seq: 1,
            }),
            effects: vec![KvEffect::PutInode(key.clone(), attrs)],
            pending_entry: Some((DirId::ROOT, MetaKey::new(DirId::ROOT, ""), sample_entry())),
            applied_entry_ids: vec![],
            txn_marker: None,
            completed: None,
            migration: None,
        };
        let size = record.wire_size();
        let lsn = durable.wal.append_sized(record, size);
        assert_eq!(durable.wal.unapplied().count(), 1);
        durable.wal.mark_applied(lsn);
        assert_eq!(durable.wal.unapplied().count(), 0);
    }

    #[test]
    fn wire_size_scales_with_contents() {
        let small = WalOp::local(None, vec![]);
        let big = WalOp {
            op_id: None,
            effects: vec![KvEffect::DeleteInode(MetaKey::new(DirId::ROOT, "x")); 4],
            pending_entry: Some((DirId::ROOT, MetaKey::new(DirId::ROOT, ""), sample_entry())),
            applied_entry_ids: vec![OpId::default(); 3],
            txn_marker: None,
            completed: None,
            migration: None,
        };
        assert!(big.wire_size() > small.wire_size());
        let prepared = WalOp::txn(TxnMarker::Prepared {
            txn_id: 1,
            coordinator: switchfs_proto::ServerId(0),
            ops: vec![
                switchfs_proto::message::TxnOp::DeleteInode {
                    key: MetaKey::new(DirId::ROOT, "x")
                };
                2
            ],
        });
        let decided = WalOp::txn(TxnMarker::Decided {
            txn_id: 1,
            commit: true,
        });
        assert!(prepared.wire_size() > decided.wire_size());
    }

    #[test]
    fn checkpoint_stores_snapshot() {
        let mut durable = DurableState::new();
        let record = WalOp::local(None, vec![]);
        let size = record.wire_size();
        durable.wal.append_sized(record, size);
        durable.checkpoint.store(1, CheckpointData::default());
        assert!(durable.checkpoint.is_present());
        assert_eq!(durable.checkpoint.lsn(), Some(1));
    }
}
