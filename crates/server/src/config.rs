//! Server configuration: identity, placement, update protocol and
//! directory-state tracking modes.

use std::cell::RefCell;
use std::rc::Rc;

use switchfs_obs::ObsHandle;
use switchfs_proto::{ServerId, SharedPlacement};
use switchfs_simnet::{NodeId, SimDuration};

use crate::costs::CostModel;

/// How directory updates of double-inode operations are performed; used by
/// the contribution breakdown of Fig. 14 and by the emulated baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Full SwitchFS: asynchronous updates with change-log compaction.
    AsyncCompacted,
    /// "+Async" in Fig. 14: asynchronous updates, but aggregation applies
    /// every change-log entry individually and serially.
    AsyncNoCompaction,
    /// Synchronous updates ("Baseline" in Fig. 14 and all emulated baseline
    /// systems): the parent directory is updated in place — locally when
    /// colocated, through a synchronous cross-server RPC otherwise — before
    /// the operation returns.
    Synchronous,
}

impl UpdateMode {
    /// True for the asynchronous (change-log based) modes.
    pub fn is_async(&self) -> bool {
        !matches!(self, UpdateMode::Synchronous)
    }
}

/// Where directory dirty state is tracked; used by the §7.3.3 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackingMode {
    /// In the programmable switch (the SwitchFS design).
    InNetwork,
    /// On a dedicated coordinator server reached by RPC (adds one RTT to
    /// every double-inode operation and directory read, Fig. 15).
    DedicatedServer(NodeId),
    /// On each directory's owner server (doubles the packets per
    /// double-inode operation and adds queueing, Fig. 16).
    OwnerServer,
}

/// Proactive change-log pushing and aggregation parameters (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProactiveConfig {
    /// Whether proactive pushing / aggregation is enabled at all (the paper
    /// enables it in every experiment).
    pub enabled: bool,
    /// Push a directory's change-log once its marshalled entries would fill
    /// this many bytes (one MTU in the paper; ≈29 entries).
    pub mtu_bytes: usize,
    /// Push a change-log if no new entry arrived for this long.
    pub idle_push_after: SimDuration,
    /// Owner side: start an aggregation if no push arrived for this long
    /// after the last one.
    pub owner_aggregate_after: SimDuration,
    /// How often the background task scans for push/aggregation work.
    pub scan_interval: SimDuration,
}

impl Default for ProactiveConfig {
    fn default() -> Self {
        ProactiveConfig {
            enabled: true,
            mtu_bytes: 2048,
            idle_push_after: SimDuration::micros(500),
            owner_aggregate_after: SimDuration::micros(800),
            scan_interval: SimDuration::micros(200),
        }
    }
}

/// Full configuration of one metadata server.
#[derive(Clone)]
pub struct ServerConfig {
    /// This server's identity.
    pub id: ServerId,
    /// This server's network node.
    pub node: NodeId,
    /// Number of cores (Fig. 2(d) / Fig. 14 vary this).
    pub cores: usize,
    /// Calibrated service times.
    pub costs: CostModel,
    /// Asynchronous update mode.
    pub update_mode: UpdateMode,
    /// Dirty-state tracking mode.
    pub tracking: TrackingMode,
    /// Proactive push / aggregation configuration.
    pub proactive: ProactiveConfig,
    /// Epoch-versioned shard map shared by the whole cluster. Live shard
    /// migration flips entries in place; every server sees the new owner the
    /// moment a shard is flipped.
    pub placement: SharedPlacement,
    /// Network node of every metadata server, indexed by `ServerId.0`.
    /// Shared and growable: `Cluster::add_server` appends to it, so fan-out
    /// paths (aggregation, invalidation broadcast) include new members
    /// immediately.
    pub server_nodes: Rc<RefCell<Vec<NodeId>>>,
    /// Cluster-wide observability handle. Disabled by default; recording
    /// never touches protocol state, so the replay digest is identical
    /// either way.
    pub obs: ObsHandle,
}

impl ServerConfig {
    /// The network node hosting `server`.
    pub fn node_of(&self, server: ServerId) -> NodeId {
        self.server_nodes.borrow()[server.0 as usize]
    }

    /// Number of metadata servers in the cluster.
    pub fn num_servers(&self) -> usize {
        self.server_nodes.borrow().len()
    }

    /// All *active* server ids other than this one (the aggregation /
    /// invalidation fan-out set). Decommissioned servers are excluded: they
    /// hold no change-logs and answer nothing, so including them would stall
    /// every aggregation for a retry budget.
    pub fn other_servers(&self) -> Vec<ServerId> {
        (0..self.num_servers() as u32)
            .map(ServerId)
            .filter(|s| *s != self.id && !self.placement.is_retired(*s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchfs_proto::PartitionPolicy;

    fn cfg(n: usize) -> ServerConfig {
        ServerConfig {
            id: ServerId(1),
            node: NodeId(101),
            cores: 4,
            costs: CostModel::default(),
            update_mode: UpdateMode::AsyncCompacted,
            tracking: TrackingMode::InNetwork,
            proactive: ProactiveConfig::default(),
            placement: SharedPlacement::initial(PartitionPolicy::PerFileHash, n),
            server_nodes: Rc::new(RefCell::new(
                (0..n as u32).map(|i| NodeId(100 + i)).collect(),
            )),
            obs: switchfs_obs::Obs::disabled(),
        }
    }

    #[test]
    fn other_servers_excludes_self() {
        let c = cfg(4);
        assert_eq!(c.num_servers(), 4);
        let others = c.other_servers();
        assert_eq!(others.len(), 3);
        assert!(!others.contains(&ServerId(1)));
        assert_eq!(c.node_of(ServerId(2)), NodeId(102));
    }

    #[test]
    fn proactive_defaults_are_enabled() {
        let p = ProactiveConfig::default();
        assert!(p.enabled);
        assert!(p.mtu_bytes > 0);
        assert!(p.owner_aggregate_after > p.idle_push_after);
    }
}
