//! A hand-rolled Rust lexer: just enough token structure for the lint rules.
//!
//! The environment is offline (no `syn`), and the rules only need identifier
//! sequences, punctuation and brace/paren nesting — so the lexer produces a
//! flat token stream with line numbers, swallows comments and literals
//! (recording `// switchfs-lint:` directives on the side), and distinguishes
//! lifetimes from character literals. It is deliberately forgiving: on
//! malformed input it keeps scanning rather than erroring, because a file
//! that does not parse will fail `cargo build` long before it reaches the
//! linter.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`let`, `await`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `;`, `{`, `<`, …). Multi-char
    /// operators arrive as consecutive tokens (`::` is two `:`).
    Punct,
    /// A string, byte-string or character literal (contents opaque).
    Literal,
    /// A numeric literal (contents opaque).
    Num,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Source text. For [`TokKind::Literal`] this is a placeholder, not the
    /// literal's contents — rules must never match inside strings.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A `// switchfs-lint: allow(rule, …) reason` directive found in a comment.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the comment sits on (a finding on this line or the next
    /// is covered).
    pub line: u32,
    /// The rule ids inside `allow(...)`.
    pub rules: Vec<String>,
    /// Free-text justification after the closing parenthesis. Required:
    /// an empty reason is itself reported.
    pub reason: String,
    /// False when the comment mentioned `switchfs-lint:` but did not parse
    /// as `allow(rule, …)`.
    pub well_formed: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The code tokens, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Suppression directives found in line comments.
    pub directives: Vec<Directive>,
}

/// Marker text that introduces a suppression directive inside a comment.
pub const DIRECTIVE_PREFIX: &str = "switchfs-lint:";

/// Lexes `source` into tokens and suppression directives.
pub fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if bytes[i + 1] == '/' {
                let start = i;
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if let Some(d) = parse_directive(&text, line) {
                    out.directives.push(d);
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                // Nested block comments, per the Rust grammar.
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }
        // Raw strings / raw identifiers / byte strings, all starting at an
        // `r` or `b` that could also open a plain identifier.
        if c == 'r' || c == 'b' {
            if let Some((len, newlines)) = raw_or_byte_string(&bytes[i..]) {
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: "\"…\"".into(),
                    line,
                });
                line += newlines;
                i += len;
                continue;
            }
            if c == 'r' && i + 1 < n && bytes[i + 1] == '#' {
                // Raw identifier `r#ident`.
                let start = i + 2;
                let mut j = start;
                while j < n && is_ident_char(bytes[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: bytes[start..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
        }
        // Plain strings.
        if c == '"' {
            let (len, newlines) = plain_string(&bytes[i..]);
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: "\"…\"".into(),
                line,
            });
            line += newlines;
            i += len;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            if i + 1 < n && bytes[i + 1] == '\\' {
                // Escaped char literal: skip to the closing quote.
                let mut j = i + 2;
                while j < n && bytes[j] != '\'' {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: "'…'".into(),
                    line,
                });
                i = j + 1;
                continue;
            }
            if i + 2 < n && bytes[i + 2] == '\'' {
                // One-char literal like 'a' (any single char between quotes).
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: "'…'".into(),
                    line,
                });
                i += 3;
                continue;
            }
            // Lifetime: consume the identifier, emit nothing (rules never
            // look at lifetimes).
            let mut j = i + 1;
            while j < n && is_ident_char(bytes[j]) {
                j += 1;
            }
            i = j.max(i + 1);
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_char(bytes[i])) {
                i += 1;
            }
            // Float continuation: `.` followed by a digit (leaves ranges
            // like `0..5` as three tokens).
            if i + 1 < n && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && is_ident_char(bytes[i]) {
                    i += 1;
                }
            }
            let text: String = bytes[start..i].iter().collect();
            out.tokens.push(Token {
                kind: TokKind::Num,
                text,
                line,
            });
            continue;
        }
        // Identifiers and keywords.
        if c == '_' || c.is_alphabetic() {
            let start = i;
            while i < n && is_ident_char(bytes[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: bytes[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Everything else: single-char punctuation.
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Recognizes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` at the start of `s`.
/// Returns `(consumed chars, newline count)`.
fn raw_or_byte_string(s: &[char]) -> Option<(usize, u32)> {
    let mut i = 0;
    if s[i] == 'b' {
        i += 1;
        if i < s.len() && s[i] == 'r' {
            i += 1;
        }
    } else if s[i] == 'r' {
        i += 1;
    } else {
        return None;
    }
    let raw = i >= 2 || (i == 1 && s[0] == 'r');
    let mut hashes = 0;
    while raw && i < s.len() && s[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= s.len() || s[i] != '"' {
        return None;
    }
    i += 1;
    let mut newlines = 0;
    if raw && (hashes > 0 || s[0] == 'r' || (s[0] == 'b' && s.get(1) == Some(&'r'))) {
        // Raw string: ends at `"` followed by `hashes` hashes, no escapes.
        while i < s.len() {
            if s[i] == '\n' {
                newlines += 1;
            }
            if s[i] == '"' {
                let mut h = 0;
                while h < hashes && i + 1 + h < s.len() && s[i + 1 + h] == '#' {
                    h += 1;
                }
                if h == hashes {
                    return Some((i + 1 + hashes, newlines));
                }
            }
            i += 1;
        }
        return Some((i, newlines));
    }
    // Byte string with escapes (b"…").
    while i < s.len() {
        match s[i] {
            '\\' => i += 2,
            '"' => return Some((i + 1, newlines)),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                i += 1;
            }
        }
    }
    Some((i, newlines))
}

/// Consumes a `"…"` string with escapes; returns `(consumed, newlines)`.
fn plain_string(s: &[char]) -> (usize, u32) {
    let mut i = 1;
    let mut newlines = 0;
    while i < s.len() {
        match s[i] {
            '\\' => i += 2,
            '"' => return (i + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                i += 1;
            }
        }
    }
    (i, newlines)
}

/// Parses one line comment into a [`Directive`] if it mentions the marker.
fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let at = comment.find(DIRECTIVE_PREFIX)?;
    let rest = comment[at + DIRECTIVE_PREFIX.len()..].trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Some(Directive {
            line,
            rules: Vec::new(),
            reason: String::new(),
            well_formed: false,
        });
    };
    let Some(close) = args.find(')') else {
        return Some(Directive {
            line,
            rules: Vec::new(),
            reason: String::new(),
            well_formed: false,
        });
    };
    let rules: Vec<String> = args[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = args[close + 1..].trim().to_string();
    let well_formed = !rules.is_empty();
    Some(Directive {
        line,
        rules,
        reason,
        well_formed,
    })
}

/// Removes `#[cfg(test)]`-gated items from a token stream: test modules and
/// test-only helpers never run inside the simulation, so the invariants the
/// rules enforce (determinism of the replayed schedule, guards across
/// awaits on the executor, persist ordering) do not apply there — and test
/// assertions legitimately use `std` collections for readability.
pub fn strip_cfg_test(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(&tokens, i) {
            // Skip this attribute, any further attributes, then one item.
            let mut j = skip_attr(&tokens, i);
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(&tokens, j);
            }
            i = skip_item(&tokens, j);
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// True when `tokens[i..]` starts `#[cfg(test)]`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
        && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
        && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
        && tokens.get(i + 6).is_some_and(|t| t.is_punct(']'))
}

/// Skips a `#[…]` attribute starting at `i`; returns the index past `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    debug_assert!(tokens[i].is_punct('#'));
    let mut j = i + 1;
    let mut depth = 0;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Skips one item starting at `i`: ends at the first `;` at depth zero, or
/// past the matching `}` of the first block opened at depth zero.
fn skip_item(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    let mut brace = 0i32;
    let mut paren = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace == 0 {
                return j + 1;
            }
        } else if t.is_punct(';') && brace == 0 && paren == 0 {
            return j + 1;
        }
        j += 1;
    }
    j
}
