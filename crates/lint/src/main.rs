//! CLI driver: `switchfs-lint [workspace-root]`.
//!
//! With no argument, ascends from the current directory to the workspace
//! `Cargo.toml` (so `cargo run -p switchfs-lint` works from anywhere in the
//! tree). Prints `file:line: [rule] message` per finding and exits nonzero
//! when any unsuppressed finding remains.

use std::path::PathBuf;
use std::process::ExitCode;

use switchfs_lint::{find_workspace_root, lint_workspace};

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("switchfs-lint: no workspace Cargo.toml found above {cwd:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("switchfs-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    eprintln!(
        "switchfs-lint: {} file(s) scanned, {} finding(s), {} suppressed",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
