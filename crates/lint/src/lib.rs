//! `switchfs-lint`: a workspace-aware static analyzer for the invariants
//! this codebase bets on but the compiler cannot check.
//!
//! The simulation's whole correctness story rests on three properties that
//! are invisible to `rustc` and `clippy`:
//!
//! - **bit-identical deterministic replay** — chaos failures reproduce from
//!   a seed only if no code path consults per-process state (randomly
//!   seeded hashers, wall clocks, OS entropy);
//! - **single-threaded `Rc<RefCell>` async servers** — a `RefCell` guard
//!   held across an `.await` is a latent `BorrowMutError` that only a rare
//!   interleaving will trigger;
//! - **WAL persist ordering at protocol barriers** — an ordering-critical
//!   record (2PC marker, migration marker, durable completion) must be
//!   flushed before its effects escape onto the network, or a torn-tail
//!   crash replays an asymmetric prefix.
//!
//! Each is a named rule producing `file:line` diagnostics; a fourth rule
//! (`event-coverage`) keeps the observability vocabulary honest by
//! requiring every `obs::EventKind` variant to be emitted somewhere outside
//! `crates/obs`. Findings are suppressible with a justified comment on the
//! preceding (or same) line:
//!
//! ```text
//! // switchfs-lint: allow(determinism) alias definition site, hasher is explicit
//! ```
//!
//! The analyzer is dependency-free (hand-rolled lexer + brace/scope
//! tracker — the build environment is offline, so no `syn`), and scans
//! every workspace crate's `src/` tree except `crates/compat` (offline
//! stand-ins for crates.io code) and `crates/lint` itself (rule fixtures
//! would trip the rules). `#[cfg(test)]` items and integration-test trees
//! are out of scope: they run on the host, not inside the simulation.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod rules;

use lexer::{lex, strip_cfg_test, Directive, Lexed};

/// Rule id: `RefCell` guards held across `.await`.
pub const RULE_BORROW: &str = "borrow-across-await";
/// Rule id: nondeterminism sources (default hashers, wall clocks, entropy).
pub const RULE_DETERMINISM: &str = "determinism";
/// Rule id: WAL flush ordering at protocol barriers.
pub const RULE_PERSIST: &str = "persist-ordering";
/// Rule id: every `EventKind` variant must be emitted outside `crates/obs`.
pub const RULE_EVENT_COVERAGE: &str = "event-coverage";
/// Rule id for problems with suppression directives themselves (malformed,
/// or missing the required justification). Not suppressible.
pub const RULE_DIRECTIVE: &str = "lint-directive";

/// All four code rules, in reporting order.
pub const ALL_RULES: &[&str] = &[
    RULE_BORROW,
    RULE_DETERMINISM,
    RULE_PERSIST,
    RULE_EVENT_COVERAGE,
];

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// A finding without a file (the driver fills it in).
    pub fn new(rule: &'static str, line: u32, message: String) -> Finding {
        Finding {
            file: String::new(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The outcome of linting a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified `allow(...)` directive.
    pub suppressed: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the workspace is clean (CI gate passes).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Which rules run for one file.
#[derive(Debug, Clone, Copy)]
pub struct RuleSet {
    /// Run [`RULE_BORROW`].
    pub borrow_across_await: bool,
    /// Run [`RULE_DETERMINISM`].
    pub determinism: bool,
    /// Run [`RULE_PERSIST`].
    pub persist_ordering: bool,
}

impl RuleSet {
    /// Everything on.
    pub fn all() -> RuleSet {
        RuleSet {
            borrow_across_await: true,
            determinism: true,
            persist_ordering: true,
        }
    }
}

/// Crates whose `src/` trees are never scanned: offline stand-ins for
/// crates.io dependencies (not our code), and the linter itself (its rule
/// fixtures intentionally trip the rules).
const EXCLUDED_CRATES: &[&str] = &["compat", "lint"];

/// Crates exempt from the determinism rule: `bench` measures *wall-clock*
/// run time of the whole sweep by design — it drives the simulator but is
/// not driven by it, so host-time reads there cannot perturb a replay.
const WALL_CLOCK_CRATES: &[&str] = &["bench"];

/// Lints a single file's source. `rules` selects the per-file rules;
/// event-coverage is workspace-level and handled by [`lint_workspace`].
/// Returned findings have empty `file` fields and are not yet
/// suppression-filtered — [`apply_suppressions`] does that.
pub fn lint_source(source: &str, rules: RuleSet) -> (Vec<Finding>, Vec<Directive>) {
    let Lexed { tokens, directives } = lex(source);
    let tokens = strip_cfg_test(tokens);
    let mut findings = Vec::new();
    if rules.borrow_across_await {
        rules::borrow_across_await(&tokens, &mut findings);
    }
    if rules.determinism {
        rules::determinism(&tokens, &mut findings);
    }
    if rules.persist_ordering {
        rules::persist_ordering(&tokens, &mut findings);
    }
    (findings, directives)
}

/// Splits `findings` into (kept, suppressed) using the file's directives,
/// and reports directive problems (malformed, missing reason) as findings.
///
/// A directive on line *N* covers findings on line *N* (trailing comment)
/// and line *N + 1* (comment on the preceding line), for the rules it
/// names.
pub fn apply_suppressions(
    findings: Vec<Finding>,
    directives: &[Directive],
) -> (Vec<Finding>, Vec<Finding>) {
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for d in directives {
        if !d.well_formed {
            kept.push(Finding::new(
                RULE_DIRECTIVE,
                d.line,
                format!(
                    "malformed suppression; expected `{} allow(<rule>, …) <reason>`",
                    lexer::DIRECTIVE_PREFIX
                ),
            ));
            continue;
        }
        for r in &d.rules {
            if !ALL_RULES.contains(&r.as_str()) {
                kept.push(Finding::new(
                    RULE_DIRECTIVE,
                    d.line,
                    format!("suppression names unknown rule `{r}`"),
                ));
            }
        }
        if d.reason.is_empty() {
            kept.push(Finding::new(
                RULE_DIRECTIVE,
                d.line,
                "suppression must carry a written justification after `allow(…)`".into(),
            ));
        }
    }
    for f in findings {
        let covered = directives.iter().any(|d| {
            d.well_formed
                && !d.reason.is_empty()
                && (d.line == f.line || d.line + 1 == f.line)
                && d.rules.iter().any(|r| r == f.rule)
        });
        if covered {
            suppressed.push(f);
        } else {
            kept.push(f);
        }
    }
    (kept, suppressed)
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// reporting.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The crates the analyzer walks: every `crates/<name>` with a `src/` tree
/// except [`EXCLUDED_CRATES`], plus the root umbrella crate's `src/`.
/// Returns `(crate name, src dir)` pairs, sorted by name.
pub fn workspace_targets(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut targets = Vec::new();
    let crates = root.join("crates");
    let mut names: Vec<String> = fs::read_dir(&crates)?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    names.sort();
    for name in names {
        if EXCLUDED_CRATES.contains(&name.as_str()) {
            continue;
        }
        let src = crates.join(&name).join("src");
        if src.is_dir() {
            targets.push((name, src));
        }
    }
    targets.push(("switchfs".to_string(), root.join("src")));
    Ok(targets)
}

/// Lints the whole workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut emitted: BTreeSet<String> = BTreeSet::new();
    let mut obs_variants = Vec::new();
    let mut obs_directives: Vec<(String, Vec<Directive>)> = Vec::new();

    for (crate_name, src) in workspace_targets(root)? {
        let mut files = Vec::new();
        rs_files(&src, &mut files)?;
        let rules = RuleSet {
            borrow_across_await: true,
            determinism: !WALL_CLOCK_CRATES.contains(&crate_name.as_str()),
            persist_ordering: true,
        };
        for path in files {
            let source = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            report.files_scanned += 1;
            let (mut findings, directives) = lint_source(&source, rules);
            let Lexed { tokens, .. } = lex(&source);
            let tokens = strip_cfg_test(tokens);
            if crate_name == "obs" {
                let variants = rules::event_kind_variants(&tokens);
                if !variants.is_empty() {
                    obs_variants = variants;
                    obs_directives.push((rel.clone(), directives.clone()));
                }
            } else {
                rules::event_kind_uses(&tokens, &mut emitted);
            }
            let (kept, suppressed) = apply_suppressions(std::mem::take(&mut findings), &directives);
            for mut f in kept {
                f.file = rel.clone();
                report.findings.push(f);
            }
            for mut f in suppressed {
                f.file = rel.clone();
                report.suppressed.push(f);
            }
        }
    }

    // Workspace-level rule: event coverage. Findings anchor at the variant
    // definition; suppressions therefore live in the obs source.
    let mut coverage = Vec::new();
    rules::event_coverage(&obs_variants, &emitted, &mut coverage);
    for (file, directives) in &obs_directives {
        let (kept, suppressed) = apply_suppressions(std::mem::take(&mut coverage), directives);
        coverage = Vec::new();
        for mut f in kept {
            // Directive-health findings for obs were already reported by the
            // per-file pass; keep only the coverage findings here.
            if f.rule != RULE_EVENT_COVERAGE {
                continue;
            }
            f.file = file.clone();
            report.findings.push(f);
        }
        for mut f in suppressed {
            f.file = file.clone();
            report.suppressed.push(f);
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Ascends from `start` to the directory whose `Cargo.toml` declares the
/// workspace.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
